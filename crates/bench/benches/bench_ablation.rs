//! Ablation benches for the design choices DESIGN.md calls out: they
//! measure both runtime (Criterion) and print the accuracy impact of
//! each choice, so `cargo bench` doubles as the ablation study:
//!
//! * forest size (number of trees),
//! * tree depth limit,
//! * split-candidate breadth (`max_features`),
//! * bootstrap on/off,
//! * feature families removed one at a time.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use features::{FeatureConfig, FeatureExtractor};
use forest::tree::TreeParams;
use forest::{train_test_split, ConfusionMatrix, Dataset, RandomForest, RandomForestParams};
use telemetry::{Census, Fleet, FleetConfig, RegionConfig};

fn study_dataset() -> Dataset {
    let fleet = Fleet::generate(FleetConfig::new(
        RegionConfig::region_1().scaled(0.15),
        2018,
    ));
    let census = Census::new(&fleet);
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    extractor.build_dataset(&census, None).0
}

fn holdout_accuracy(data: &Dataset, params: &RandomForestParams) -> f64 {
    let (train, test) = train_test_split(data, 0.25, 7);
    let model = RandomForest::fit(&train, params, 7);
    let preds: Vec<usize> = (0..test.len())
        .map(|i| model.predict_row(&test, i))
        .collect();
    let actual: Vec<usize> = (0..test.len()).map(|i| test.label(i)).collect();
    ConfusionMatrix::from_predictions(&preds, &actual).accuracy()
}

fn ablate_trees(c: &mut Criterion) {
    let data = study_dataset();
    let mut group = c.benchmark_group("ablation_trees");
    group.sample_size(10);
    for &n_trees in &[10usize, 40, 120] {
        let params = RandomForestParams {
            n_trees,
            ..RandomForestParams::default()
        };
        obs::info!(
            "ablation",
            "trees = {n_trees:>4}: holdout accuracy {:.3}",
            holdout_accuracy(&data, &params)
        );
        group.bench_with_input(BenchmarkId::new("fit", n_trees), &params, |b, params| {
            b.iter(|| RandomForest::fit(black_box(&data), params, 42))
        });
    }
    group.finish();
}

fn ablate_depth(c: &mut Criterion) {
    let data = study_dataset();
    let mut group = c.benchmark_group("ablation_depth");
    group.sample_size(10);
    for &max_depth in &[4usize, 10, 24] {
        let params = RandomForestParams {
            n_trees: 40,
            tree: TreeParams {
                max_depth,
                ..TreeParams::default()
            },
            ..RandomForestParams::default()
        };
        obs::info!(
            "ablation",
            "depth = {max_depth:>3}: holdout accuracy {:.3}",
            holdout_accuracy(&data, &params)
        );
        group.bench_with_input(BenchmarkId::new("fit", max_depth), &params, |b, params| {
            b.iter(|| RandomForest::fit(black_box(&data), params, 42))
        });
    }
    group.finish();
}

fn ablate_bootstrap(c: &mut Criterion) {
    let data = study_dataset();
    let mut group = c.benchmark_group("ablation_bootstrap");
    group.sample_size(10);
    for bootstrap in [true, false] {
        let params = RandomForestParams {
            n_trees: 40,
            bootstrap,
            ..RandomForestParams::default()
        };
        obs::info!(
            "ablation",
            "bootstrap = {bootstrap}: holdout accuracy {:.3}",
            holdout_accuracy(&data, &params)
        );
        group.bench_with_input(BenchmarkId::new("fit", bootstrap), &params, |b, params| {
            b.iter(|| RandomForest::fit(black_box(&data), params, 42))
        });
    }
    group.finish();
}

/// Predicate selecting which feature names a family keeps.
type FamilyFilter = Box<dyn Fn(&str) -> bool>;

fn ablate_feature_families(c: &mut Criterion) {
    // Dropping a family measures its contribution — the ablation behind
    // the paper's §5.4 importance ranking.
    let data = study_dataset();
    let families: Vec<(&str, FamilyFilter)> = vec![
        ("full", Box::new(|_: &str| true)),
        ("no-history", Box::new(|n: &str| !n.starts_with("hist_"))),
        (
            "no-names",
            Box::new(|n: &str| !(n.starts_with("server_") || n.starts_with("db_"))),
        ),
        ("no-time", Box::new(|n: &str| !n.starts_with("created_"))),
    ];
    let mut group = c.benchmark_group("ablation_families");
    group.sample_size(10);
    for (label, keep) in &families {
        let keep_idx: Vec<usize> = data
            .feature_names()
            .iter()
            .enumerate()
            .filter(|(_, n)| keep(n))
            .map(|(i, _)| i)
            .collect();
        let names: Vec<String> = keep_idx
            .iter()
            .map(|&i| data.feature_names()[i].clone())
            .collect();
        let mut subset = Dataset::new(names, 2);
        for r in 0..data.len() {
            let full = data.row(r);
            let row: Vec<f64> = keep_idx.iter().map(|&i| full[i]).collect();
            subset.push(row, data.label(r));
        }
        let params = RandomForestParams {
            n_trees: 40,
            ..RandomForestParams::default()
        };
        obs::info!(
            "ablation",
            "features = {label:<12}: holdout accuracy {:.3} ({} features)",
            holdout_accuracy(&subset, &params),
            subset.feature_count()
        );
        group.bench_function(BenchmarkId::new("fit", label), |b| {
            b.iter(|| RandomForest::fit(black_box(&subset), &params, 42))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_trees,
    ablate_depth,
    ablate_bootstrap,
    ablate_feature_families
);
criterion_main!(benches);
