//! Criterion micro-benches for the feature pipeline: per-family
//! extraction, whole-record extraction, history indexing, and dataset
//! construction.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use features::{name_features, FeatureConfig, FeatureExtractor, SubscriptionHistoryIndex};
use simtime::Duration;
use telemetry::{Census, Fleet, FleetConfig, RegionConfig};

fn fleet() -> Fleet {
    Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.2), 77))
}

fn bench_name_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("name_features");
    group.throughput(Throughput::Elements(1));
    for name in ["payroll-db", "d3adb33f-1a2b-4c5d-8e9f-0a1b2c3d4e5f"] {
        group.bench_function(name, |b| b.iter(|| name_features(black_box(name))));
    }
    group.finish();
}

fn bench_history_index(c: &mut Criterion) {
    let f = fleet();
    let mut group = c.benchmark_group("subscription_history");
    group.sample_size(20);
    group.bench_function("build_index", |b| {
        b.iter(|| SubscriptionHistoryIndex::build(black_box(&f)))
    });
    let index = SubscriptionHistoryIndex::build(&f);
    let db = &f.databases[f.databases.len() / 2];
    group.bench_function("history_features", |b| {
        b.iter(|| {
            black_box(&index).history_features(black_box(db), db.created_at + Duration::days(2))
        })
    });
    group.finish();
}

fn bench_extract(c: &mut Criterion) {
    let f = fleet();
    let census = Census::new(&f);
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    let db = &f.databases[100];
    c.bench_function("extract_one_record", |b| {
        b.iter(|| black_box(&extractor).extract(&census, black_box(db)))
    });
}

fn bench_build_dataset(c: &mut Criterion) {
    let f = fleet();
    let census = Census::new(&f);
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    let mut group = c.benchmark_group("build_dataset");
    group.sample_size(10);
    group.bench_function("whole_region", |b| {
        b.iter(|| black_box(&extractor).build_dataset(&census, None))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_name_features,
    bench_history_index,
    bench_extract,
    bench_build_dataset
);
criterion_main!(benches);
