//! Criterion micro-benches for the telemetry substrate: fleet
//! generation across scales, event-stream flattening, and census
//! queries.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use telemetry::{Census, EventStream, Fleet, FleetConfig, RegionConfig};

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_generate");
    group.sample_size(10);
    for &scale in &[0.05_f64, 0.2, 0.5] {
        group.bench_with_input(BenchmarkId::new("region1", scale), &scale, |b, &scale| {
            b.iter(|| {
                Fleet::generate(FleetConfig::new(
                    RegionConfig::region_1().scaled(black_box(scale)),
                    42,
                ))
            })
        });
    }
    group.finish();
}

fn bench_event_stream(c: &mut Criterion) {
    let fleet = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.1), 7));
    let mut group = c.benchmark_group("event_stream");
    group.sample_size(10);
    group.bench_function("of_fleet_0.1", |b| {
        b.iter(|| EventStream::of_fleet(black_box(&fleet)))
    });
    group.finish();
}

fn bench_census(c: &mut Criterion) {
    let fleet = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.2), 9));
    let census = Census::new(&fleet);
    c.bench_function("survival_pairs_2d", |b| {
        b.iter(|| black_box(&census).survival_pairs(2.0))
    });
    c.bench_function("prediction_population", |b| {
        b.iter(|| black_box(&census).prediction_population(2.0))
    });
    c.bench_function("ephemeral_only_stats", |b| {
        b.iter(|| black_box(&census).ephemeral_only_stats())
    });
}

criterion_group!(benches, bench_generate, bench_event_stream, bench_census);
criterion_main!(benches);
