//! Criterion micro-benches for the tree/forest learner: single-tree
//! fit, forest fit across sizes, prediction throughput, and metric
//! computation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use forest::tree::TreeParams;
use forest::{
    Dataset, DecisionTree, GbmParams, GradientBoosting, MaxFeatures, RandomForest,
    RandomForestParams,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A learnable synthetic dataset shaped like the study's: some strong
/// features, some weak, some noise.
fn dataset(n: usize, features: usize, seed: u64) -> Dataset {
    let names: Vec<String> = (0..features).map(|j| format!("f{j}")).collect();
    let mut data = Dataset::new(names, 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..n {
        let row: Vec<f64> = (0..features).map(|_| rng.gen::<f64>()).collect();
        let signal = row[0] * 2.0 + row[1] - row[2] * 0.5 + rng.gen::<f64>() * 0.4;
        data.push(row, (signal > 1.45) as usize);
    }
    data
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_tree");
    for &n in &[1_000usize, 5_000] {
        let data = dataset(n, 40, 1);
        let idx: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::new("fit", n), &data, |b, data| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(7);
                DecisionTree::fit(black_box(data), &idx, &TreeParams::default(), 7, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_forest_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_forest_fit");
    group.sample_size(10);
    for &(n, trees) in &[(2_000usize, 20usize), (5_000, 60)] {
        let data = dataset(n, 40, 2);
        let params = RandomForestParams {
            n_trees: trees,
            ..RandomForestParams::default()
        };
        group.bench_with_input(
            BenchmarkId::new("fit", format!("{n}x{trees}")),
            &data,
            |b, data| b.iter(|| RandomForest::fit(black_box(data), &params, 42)),
        );
    }
    group.finish();
}

fn bench_forest_predict(c: &mut Criterion) {
    let data = dataset(5_000, 40, 3);
    let model = RandomForest::fit(&data, &RandomForestParams::default(), 11);
    let mut group = c.benchmark_group("random_forest_predict");
    group.throughput(Throughput::Elements(1));
    group.bench_function("predict_proba", |b| {
        let row = data.row(17);
        b.iter(|| black_box(&model).predict_proba(black_box(&row)))
    });
    group.finish();
}

fn bench_importances(c: &mut Criterion) {
    let data = dataset(3_000, 60, 4);
    let model = RandomForest::fit(&data, &RandomForestParams::default(), 13);
    c.bench_function("feature_importances_60f", |b| {
        b.iter(|| black_box(&model).feature_importances())
    });
}

fn bench_max_features(c: &mut Criterion) {
    // How split-candidate breadth affects training cost.
    let data = dataset(2_000, 60, 5);
    let mut group = c.benchmark_group("max_features");
    group.sample_size(10);
    for (label, mf) in [
        ("sqrt", MaxFeatures::Sqrt),
        ("log2", MaxFeatures::Log2),
        ("all", MaxFeatures::All),
    ] {
        let params = RandomForestParams {
            n_trees: 20,
            max_features: mf,
            ..RandomForestParams::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| RandomForest::fit(black_box(&data), &params, 21))
        });
    }
    group.finish();
}

fn bench_gbm(c: &mut Criterion) {
    let data = dataset(2_000, 40, 6);
    let mut group = c.benchmark_group("gradient_boosting");
    group.sample_size(10);
    for &rounds in &[50usize, 150] {
        let params = GbmParams {
            n_rounds: rounds,
            ..GbmParams::default()
        };
        group.bench_with_input(BenchmarkId::new("fit", rounds), &params, |b, params| {
            b.iter(|| GradientBoosting::fit(black_box(&data), params, 42))
        });
    }
    let model = GradientBoosting::fit(&data, &GbmParams::default(), 42);
    group.bench_function("predict_proba", |b| {
        let row = data.row(11);
        b.iter(|| black_box(&model).predict_positive_proba(black_box(&row)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tree,
    bench_forest_fit,
    bench_forest_predict,
    bench_importances,
    bench_max_features,
    bench_gbm
);
criterion_main!(benches);
