//! Criterion benches for the model-selection path: zero-copy
//! cross-validation, grid search over the (candidate × fold) work
//! queue, and the view-based forest fit the folds use.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use forest::tree::TreeParams;
use forest::{cross_val_accuracy, Dataset, GridSearch, RandomForest, RandomForestParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize, features: usize, seed: u64) -> Dataset {
    let names: Vec<String> = (0..features).map(|j| format!("f{j}")).collect();
    let mut data = Dataset::new(names, 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..n {
        let row: Vec<f64> = (0..features).map(|_| rng.gen::<f64>()).collect();
        let signal = row[0] * 2.0 + row[1] - row[2] * 0.5 + rng.gen::<f64>() * 0.4;
        data.push(row, (signal > 1.45) as usize);
    }
    data
}

fn bench_cross_val(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_val_accuracy");
    group.sample_size(10);
    for &n in &[1_000usize, 3_000] {
        let data = dataset(n, 30, 1);
        let params = RandomForestParams {
            n_trees: 20,
            ..RandomForestParams::default()
        };
        group.bench_with_input(BenchmarkId::new("k5", n), &data, |b, data| {
            b.iter(|| cross_val_accuracy(black_box(data), &params, 5, 42))
        });
    }
    group.finish();
}

fn bench_cross_val_obs(c: &mut Criterion) {
    // The observability acceptance surface: the same cross-validation
    // loop with all obs probes off (no registry installed — one relaxed
    // atomic load per probe) versus with a registry recording spans,
    // counters, and events. The two timings bound the instrumentation
    // overhead; DESIGN.md §9 records the budget (<1% disabled).
    let data = dataset(2_000, 30, 4);
    let params = RandomForestParams {
        n_trees: 20,
        ..RandomForestParams::default()
    };
    let mut group = c.benchmark_group("cross_val_obs");
    group.sample_size(10);
    group.bench_function("disabled", |b| {
        b.iter(|| cross_val_accuracy(black_box(&data), &params, 5, 42))
    });
    group.bench_function("enabled", |b| {
        let registry = obs::Registry::new();
        let _guard = registry.install();
        b.iter(|| cross_val_accuracy(black_box(&data), &params, 5, 42))
    });
    group.finish();
}

fn bench_grid_search(c: &mut Criterion) {
    let data = dataset(2_000, 30, 2);
    let candidates = vec![
        RandomForestParams {
            n_trees: 10,
            tree: TreeParams {
                max_depth: 8,
                ..TreeParams::default()
            },
            ..RandomForestParams::default()
        },
        RandomForestParams {
            n_trees: 20,
            ..RandomForestParams::default()
        },
    ];
    let mut group = c.benchmark_group("grid_search");
    group.sample_size(10);
    group.bench_function("2cand_k3", |b| {
        b.iter(|| GridSearch::new(candidates.clone(), 3).run(black_box(&data), 42))
    });
    group.finish();
}

fn bench_view_fit(c: &mut Criterion) {
    // The per-fold cost: fit on a borrowed 80% view vs a materialized
    // copy of the same rows.
    let data = dataset(3_000, 30, 3);
    let rows: Vec<usize> = (0..data.len()).filter(|i| i % 5 != 0).collect();
    let params = RandomForestParams {
        n_trees: 20,
        ..RandomForestParams::default()
    };
    let mut group = c.benchmark_group("fold_fit");
    group.sample_size(10);
    group.bench_function("view", |b| {
        b.iter(|| RandomForest::fit_view(&black_box(&data).view(&rows), &params, 42))
    });
    group.bench_function("materialized", |b| {
        b.iter(|| {
            let subset = black_box(&data).select(&rows);
            RandomForest::fit(&subset, &params, 42)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cross_val,
    bench_cross_val_obs,
    bench_grid_search,
    bench_view_fit
);
criterion_main!(benches);
