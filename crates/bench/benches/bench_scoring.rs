//! Criterion benches for the serving layer: batch-scoring throughput
//! (recursive baseline vs the branchless cache-blocked kernel, with
//! and without an amortized layout build) and the model format's
//! render/parse round trip.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use forest::{Dataset, ForestKernel, RandomForest, RandomForestParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serve::{score_batch, score_batch_recursive, score_batch_with, ModelMeta, SavedModel};

fn dataset(n: usize, features: usize, seed: u64) -> Dataset {
    let names: Vec<String> = (0..features).map(|j| format!("f{j}")).collect();
    let mut data = Dataset::new(names, 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..n {
        let row: Vec<f64> = (0..features).map(|_| rng.gen::<f64>()).collect();
        let signal = row[0] * 2.0 + row[1] - row[2] * 0.5 + rng.gen::<f64>() * 0.4;
        data.push(row, (signal > 1.45) as usize);
    }
    data
}

fn fitted(data: &Dataset) -> RandomForest {
    let params = RandomForestParams {
        n_trees: 40,
        ..RandomForestParams::default()
    };
    RandomForest::fit(data, &params, 42)
}

fn bench_score_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("score_throughput");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let data = dataset(n, 30, 1);
        let model = fitted(&data);
        let kernel = ForestKernel::from_forest(&model);
        let q = data.class_fraction(1);
        group.throughput(Throughput::Elements(n as u64));
        // The frozen recursive reference: pointer-chasing tree walks.
        group.bench_with_input(BenchmarkId::new("recursive", n), &data, |b, data| {
            b.iter(|| score_batch_recursive(black_box(&model), black_box(data), q))
        });
        // The default path, layout build included (cold model).
        group.bench_with_input(BenchmarkId::new("kernel_cold", n), &data, |b, data| {
            b.iter(|| score_batch(black_box(&model), black_box(data), q))
        });
        // The serving steady state: layout built once, reused per batch.
        group.bench_with_input(BenchmarkId::new("kernel_prepared", n), &data, |b, data| {
            b.iter(|| score_batch_with(black_box(&kernel), black_box(data), q))
        });
    }
    group.finish();
}

fn bench_model_format(c: &mut Criterion) {
    let data = dataset(2_000, 30, 2);
    let model = SavedModel::new(
        fitted(&data),
        ModelMeta {
            positive_fraction: data.class_fraction(1),
            seed: 42,
            params: RandomForestParams {
                n_trees: 40,
                ..RandomForestParams::default()
            },
            grid: None,
        },
    );
    let text = model.render();
    let mut group = c.benchmark_group("model_format");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("render", |b| b.iter(|| black_box(&model).render()));
    group.bench_function("parse", |b| {
        b.iter(|| SavedModel::parse(black_box(&text)).expect("own render parses"))
    });
    group.finish();
}

criterion_group!(benches, bench_score_throughput, bench_model_format);
criterion_main!(benches);
