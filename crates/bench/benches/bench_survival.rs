//! Criterion micro-benches for the survival-analysis estimators: KM
//! fit, survival lookup, Nelson–Aalen, two-sample and k-sample
//! log-rank, and censored parametric fits.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use survival::{
    logrank_test, logrank_test_k, weighted_logrank_test, ExponentialFit, KaplanMeier,
    LogRankWeight, NelsonAalen, SurvivalData, WeibullFit,
};

fn sample(n: usize, mean: f64, censor: f64, seed: u64) -> SurvivalData {
    let mut rng = SmallRng::seed_from_u64(seed);
    SurvivalData::from_pairs(
        &(0..n)
            .map(|_| {
                let t: f64 = -(1.0 - rng.gen::<f64>()).ln() * mean;
                if t <= censor {
                    (t, true)
                } else {
                    (censor, false)
                }
            })
            .collect::<Vec<_>>(),
    )
}

fn bench_km(c: &mut Criterion) {
    let mut group = c.benchmark_group("kaplan_meier");
    for &n in &[1_000usize, 10_000, 100_000] {
        let data = sample(n, 30.0, 150.0, 1);
        group.bench_with_input(BenchmarkId::new("fit", n), &data, |b, data| {
            b.iter(|| KaplanMeier::fit(black_box(data)))
        });
    }
    let data = sample(100_000, 30.0, 150.0, 2);
    let km = KaplanMeier::fit(&data);
    group.bench_function("survival_at_100k", |b| {
        b.iter(|| black_box(&km).survival_at(black_box(42.5)))
    });
    group.bench_function("sample_curve_100k", |b| {
        b.iter(|| black_box(&km).sample_curve(150.0, 76))
    });
    group.finish();
}

fn bench_nelson_aalen(c: &mut Criterion) {
    let data = sample(10_000, 30.0, 150.0, 3);
    c.bench_function("nelson_aalen_fit_10k", |b| {
        b.iter(|| NelsonAalen::fit(black_box(&data)))
    });
}

fn bench_logrank(c: &mut Criterion) {
    let mut group = c.benchmark_group("logrank");
    for &n in &[1_000usize, 10_000, 50_000] {
        let a = sample(n, 20.0, 150.0, 4);
        let b_ = sample(n, 40.0, 150.0, 5);
        group.bench_with_input(BenchmarkId::new("two_sample", n), &(a, b_), |b, (x, y)| {
            b.iter(|| logrank_test(black_box(x), black_box(y)))
        });
    }
    let a = sample(10_000, 20.0, 150.0, 6);
    let b_ = sample(10_000, 30.0, 150.0, 7);
    let c_ = sample(10_000, 40.0, 150.0, 8);
    group.bench_function("k_sample_3x10k", |b| {
        b.iter(|| logrank_test_k(black_box(&[&a, &b_, &c_])))
    });
    group.bench_function("weighted_fh_10k", |b| {
        b.iter(|| {
            weighted_logrank_test(
                black_box(&a),
                black_box(&b_),
                LogRankWeight::FlemingHarrington { p: 1.0, q: 0.0 },
            )
        })
    });
    group.finish();
}

fn bench_parametric(c: &mut Criterion) {
    let data = sample(10_000, 25.0, 120.0, 9);
    c.bench_function("exponential_fit_10k", |b| {
        b.iter(|| ExponentialFit::fit(black_box(&data)))
    });
    c.bench_function("weibull_fit_10k", |b| {
        b.iter(|| WeibullFit::fit(black_box(&data)))
    });
}

criterion_group!(
    benches,
    bench_km,
    bench_nelson_aalen,
    bench_logrank,
    bench_parametric
);
criterion_main!(benches);
