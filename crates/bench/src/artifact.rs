//! Shared scaffolding for two-section benchmark artifacts.
//!
//! Every artifact the workspace's bench binaries emit follows the same
//! envelope, established by `run_trace.json` and repeated since:
//!
//! ```text
//! {
//!   "schema": "<family>/v<N>",
//!   "binary": "<emitting binary>",
//!   "deterministic": { ... },     // byte-identical across runs,
//!                                 // thread counts, shard layouts
//!   "nondeterministic": { ... }   // wall clock, throughput, layout
//! }
//! ```
//!
//! The writers and validators used to each carry their own copy of the
//! envelope assembly and the `expect_*` structural helpers; this
//! module is the single shared copy. `bench::fleet` and
//! `bench::policyart` build on it; schema-check binaries use the same
//! helpers to enforce exact key order, so a writer and its validator
//! can never drift apart on the envelope.

use obs::jsonv::{self, JsonV};
use std::io;
use std::path::{Path, PathBuf};

/// Assembles the standard four-key artifact envelope.
pub fn envelope(
    schema: &str,
    binary: &str,
    deterministic: JsonV,
    nondeterministic: JsonV,
) -> JsonV {
    JsonV::obj(vec![
        ("schema", JsonV::Str(schema.to_string())),
        ("binary", JsonV::Str(binary.to_string())),
        ("deterministic", deterministic),
        ("nondeterministic", nondeterministic),
    ])
}

/// Writes a rendered artifact under `dir/file`, creating `dir` if
/// needed. Returns the written path.
pub fn write_artifact(dir: &Path, file: &str, text: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file);
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Parses an artifact text, checks the envelope (exact top-level key
/// order, the expected schema id, a non-empty binary label), and
/// returns the parsed root for section-specific validation.
pub fn validate_envelope(text: &str, schema: &str) -> Result<JsonV, String> {
    let root = jsonv::parse(text)?;
    let fields = expect_obj(&root, "artifact")?;
    expect_keys(
        fields,
        &["schema", "binary", "deterministic", "nondeterministic"],
        "artifact",
    )?;
    match root.get("schema") {
        Some(JsonV::Str(s)) if s == schema => {}
        other => return Err(format!("schema must be {schema:?}, found {other:?}")),
    }
    match root.get("binary") {
        Some(JsonV::Str(s)) if !s.is_empty() => {}
        other => {
            return Err(format!(
                "binary must be a non-empty string, found {other:?}"
            ))
        }
    }
    Ok(root)
}

/// Extracts the rendered deterministic section of an artifact text —
/// the byte string CI compares across shard layouts and thread counts.
pub fn deterministic_section_of(text: &str) -> Result<String, String> {
    let root = jsonv::parse(text)?;
    let det = root
        .get("deterministic")
        .ok_or("artifact has no deterministic section")?;
    Ok(det.render())
}

/// Requires an object value; returns its fields.
pub fn expect_obj<'a>(value: &'a JsonV, what: &str) -> Result<&'a [(String, JsonV)], String> {
    match value {
        JsonV::Obj(fields) => Ok(fields),
        other => Err(format!("{what} must be an object, found {other:?}")),
    }
}

/// Requires exactly `keys`, in order — key *order* is part of every
/// artifact's byte-determinism contract, so validators reject
/// reorderings, not just missing keys.
pub fn expect_keys(fields: &[(String, JsonV)], keys: &[&str], what: &str) -> Result<(), String> {
    let found: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if found != keys {
        return Err(format!("{what} must have keys {keys:?}, found {found:?}"));
    }
    Ok(())
}

/// Requires an unsigned integer value.
pub fn expect_uint(value: &JsonV, what: &str) -> Result<u64, String> {
    match value {
        JsonV::UInt(v) => Ok(*v),
        other => Err(format!(
            "{what} must be an unsigned integer, found {other:?}"
        )),
    }
}

/// Requires a float value.
pub fn expect_float(value: &JsonV, what: &str) -> Result<f64, String> {
    match value {
        JsonV::Float(v) => Ok(*v),
        other => Err(format!("{what} must be a float, found {other:?}")),
    }
}

/// Requires a non-empty string value.
pub fn expect_str<'a>(value: &'a JsonV, what: &str) -> Result<&'a str, String> {
    match value {
        JsonV::Str(s) if !s.is_empty() => Ok(s),
        other => Err(format!(
            "{what} must be a non-empty string, found {other:?}"
        )),
    }
}

/// Requires an array value; returns its items.
pub fn expect_arr<'a>(value: &'a JsonV, what: &str) -> Result<&'a [JsonV], String> {
    match value {
        JsonV::Arr(items) => Ok(items),
        other => Err(format!("{what} must be an array, found {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        envelope(
            "survdb-sample/v1",
            "samplebench",
            JsonV::obj(vec![("count", JsonV::UInt(3))]),
            JsonV::obj(vec![("elapsed_ms", JsonV::Float(1.5))]),
        )
        .render()
    }

    #[test]
    fn envelope_roundtrips_through_validation() {
        let text = sample();
        let root = validate_envelope(&text, "survdb-sample/v1").expect("valid");
        let det = root.get("deterministic").unwrap();
        assert_eq!(expect_uint(det.get("count").unwrap(), "count").unwrap(), 3);
        assert_eq!(deterministic_section_of(&text).unwrap(), det.render());
    }

    #[test]
    fn validation_rejects_envelope_drift() {
        let text = sample();
        assert!(validate_envelope(&text, "survdb-other/v1").is_err());
        assert!(
            validate_envelope(&text.replace("\"binary\"", "\"tool\""), "survdb-sample/v1").is_err()
        );
        assert!(validate_envelope("{}", "survdb-sample/v1").is_err());
        // Key order is enforced, not just presence.
        let reordered = envelope(
            "survdb-sample/v1",
            "samplebench",
            JsonV::obj(vec![("count", JsonV::UInt(3))]),
            JsonV::obj(vec![]),
        )
        .render()
        .replacen("\"schema\"", "\"zchema\"", 1);
        assert!(validate_envelope(&reordered, "survdb-sample/v1").is_err());
    }

    #[test]
    fn expect_helpers_report_types() {
        assert!(expect_uint(&JsonV::Float(1.0), "x").is_err());
        assert!(expect_float(&JsonV::UInt(1), "x").is_err());
        assert!(expect_str(&JsonV::Str(String::new()), "x").is_err());
        assert!(expect_arr(&JsonV::Null, "x").is_err());
        assert!(expect_obj(&JsonV::Arr(vec![]), "x").is_err());
        assert!(expect_keys(
            &[
                ("a".to_string(), JsonV::Null),
                ("b".to_string(), JsonV::Null)
            ],
            &["b", "a"],
            "x"
        )
        .is_err());
    }
}
