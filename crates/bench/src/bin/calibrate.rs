//! Generator calibration probe (development tool).
//!
//! Prints, per region and creation edition: the long-lived fraction `q`
//! among labeled non-ephemeral databases (DESIGN.md §5 targets
//! Basic ≈ 0.68, Standard ≈ 0.55, Premium ≈ 0.35), population sizes,
//! the whole-population KM plateau at day 130, and Observation 3.1–3.3
//! quantities.

use survival::{KaplanMeier, SurvivalData};
use telemetry::{Census, Edition, Fleet, FleetConfig, LifespanClass, RegionConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);

    for (name, region) in [
        ("Region-1", RegionConfig::region_1()),
        ("Region-2", RegionConfig::region_2()),
        ("Region-3", RegionConfig::region_3()),
    ] {
        let fleet = Fleet::generate(FleetConfig::new(region.scaled(scale), 20_180_610));
        let census = Census::new(&fleet);
        println!(
            "== {name}: {} dbs, {} subs",
            fleet.databases.len(),
            fleet.subscriptions.len()
        );

        let (sub_share, db_share) = census.ephemeral_only_stats();
        println!(
            "   obs3.1: ephemeral-only subs {:.1}% owning {:.1}% of dbs",
            sub_share * 100.0,
            db_share * 100.0
        );

        for edition in Edition::ALL {
            let mut short = 0usize;
            let mut long = 0usize;
            let mut eph = 0usize;
            let mut unknown = 0usize;
            for (_, db) in census.edition_records(edition) {
                match census.classify(db) {
                    Some(LifespanClass::Ephemeral) => eph += 1,
                    Some(LifespanClass::ShortLived) => short += 1,
                    Some(LifespanClass::LongLived) => long += 1,
                    None => unknown += 1,
                }
            }
            let q = long as f64 / (short + long).max(1) as f64;
            println!(
                "   {edition:<8} eph {eph:>6} short {short:>6} long {long:>6} unknown {unknown:>5}  q = {q:.3}  change-rate {:.3}",
                census.edition_change_rate(edition)
            );
        }

        let km = KaplanMeier::fit(&SurvivalData::from_pairs(&census.survival_pairs(2.0)));
        println!(
            "   KM(2d min): S(30) = {:.3}, S(60) = {:.3}, S(110) = {:.3}, S(125) = {:.3}, S(130) = {:.3}",
            km.survival_at(30.0),
            km.survival_at(60.0),
            km.survival_at(110.0),
            km.survival_at(125.0),
            km.survival_at(130.0),
        );
    }
}
