//! `chaossweep` — protocol-chaos sweep against a live scoring daemon.
//!
//! ```text
//! cargo run -p bench --release --bin chaossweep -- [flags]
//!
//! flags: --requests N   exchanges per (class, rate) cell (default 32)
//!        --scale F      population scale for the fixture fleet (default 0.1)
//!        --seed N       master seed (default 2018)
//!        --workers N    daemon worker threads (default 2)
//!        --queue N      daemon admission-queue capacity (default 64)
//!        --out DIR      artifact directory (default artifacts/)
//! ```
//!
//! The sweep spawns the daemon in-process, then drives every chaos
//! class (`survd::chaos`) at rates 0.5 and 1.0 — plus one clean cell —
//! sequentially, one fresh connection per exchange. For each exchange
//! it asserts the daemon's *typed* reaction contract: clean and
//! slow-loris exchanges answer 200 with bodies **bitwise identical**
//! to offline `serve::score_rows` output and the expected hot-swap
//! generation; truncated frames 400, oversized frames 413, stalled
//! reads 408, garbage 400, malformed JSON 400; mid-body resets are
//! unanswerable by design. Between cells it drills the hot-swap path:
//! a re-rendered copy of the live model must be admitted (generation
//! increments, scores unchanged), a corrupted candidate must be
//! refused with 422 while the old generation keeps serving.
//!
//! Because injection decisions derive from (seed, ordinal, class) and
//! the sweep is closed-loop sequential, every outcome count is
//! deterministic: the artifact's deterministic section is byte-stable
//! across runs and across worker counts. On success it writes
//! `artifacts/resilience.json` (`survdb-resilience/v1`); any contract
//! violation exits nonzero.

use bench::model_source::{fixture_dataset, obtain_model, ModelSpec};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use survd::chaos::{self, ChaosClass, ChaosPlan, Expect, Outcome};
use survd::{
    BatchPolicy, CellOutcome, Client, ReloadOutcome, ResilienceConfig, RowScore, ServerConfig,
};

struct Options {
    requests: usize,
    scale: f64,
    seed: u64,
    workers: usize,
    queue: usize,
    out: PathBuf,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        requests: 32,
        scale: 0.1,
        seed: 2018,
        workers: 2,
        queue: 64,
        out: PathBuf::from("artifacts"),
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--requests" => {
                options.requests = value()?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?;
                i += 2;
            }
            "--scale" => {
                options.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                i += 2;
            }
            "--seed" => {
                options.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                i += 2;
            }
            "--workers" => {
                options.workers = value()?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                i += 2;
            }
            "--queue" => {
                options.queue = value()?.parse().map_err(|e| format!("bad --queue: {e}"))?;
                i += 2;
            }
            "--out" => {
                options.out = PathBuf::from(value()?);
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if options.requests == 0 || options.workers == 0 {
        return Err("--requests and --workers must be nonzero".to_string());
    }
    Ok(options)
}

/// How long the driver waits for each response: must comfortably cover
/// the server's stall budget (`max_stall_reads` × idle timeout).
const READ_TIMEOUT_MS: u64 = 5_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("chaossweep", "{e}");
            obs::error!(
                "chaossweep",
                "usage: chaossweep [--requests N] [--scale F] [--seed N] [--workers N] \
                 [--queue N] [--out DIR]"
            );
            std::process::exit(2);
        }
    };

    let registry = Arc::new(obs::Registry::with_stderr_level(obs::Level::Info));
    let _guard = registry.install();

    println!(
        "[chaossweep] building corpus fleet (scale {}, seed {})",
        options.scale, options.seed
    );
    let data = fixture_dataset(options.scale, options.seed);
    let spec = ModelSpec {
        load_from: None,
        seed: options.seed,
        tune: false,
        save_dir: options.out.clone(),
    };
    let model = match obtain_model(&data, &spec) {
        Ok(m) => m,
        Err(e) => {
            obs::error!("chaossweep", "{e}");
            std::process::exit(1);
        }
    };

    let corpus: Vec<Vec<f64>> = (0..data.len()).map(|i| data.row(i)).collect();
    let rows_per_request = 3usize;
    let offline = serve::score_rows(&model.forest, &corpus, model.meta.positive_fraction);
    let expected: Vec<RowScore> = offline.rows.iter().map(RowScore::from_scored).collect();
    let expected_threshold = model.threshold();

    // Tight stall budget so the stalled-read cells resolve fast:
    // 12 × 25 ms ≈ 300 ms per stalled exchange.
    let http = survd::http::HttpLimits {
        max_stall_reads: 12,
        ..survd::http::HttpLimits::default()
    };
    let max_body = http.max_body_bytes;
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: options.workers,
        queue_capacity: options.queue,
        batch: BatchPolicy {
            max_rows: 64,
            max_wait_ms: 1,
        },
        http,
        idle_timeout_ms: 25,
        ..ServerConfig::default()
    };
    let handle = match survd::start(model.clone(), config, Some(Arc::clone(&registry))) {
        Ok(h) => h,
        Err(e) => {
            obs::error!("chaossweep", "cannot start daemon: {e}");
            std::process::exit(1);
        }
    };
    let addr = handle.addr();
    println!(
        "[chaossweep] daemon on {addr} ({} workers, queue {})",
        options.workers, options.queue
    );

    // The sweep grid: one clean cell, then every class at two rates.
    let mut grid: Vec<(Option<ChaosClass>, f64)> = vec![(None, 0.0)];
    for class in ChaosClass::ALL {
        for rate in [0.5, 1.0] {
            grid.push((Some(class), rate));
        }
    }

    let started = Instant::now();
    let mut cells: Vec<CellOutcome> = Vec::with_capacity(grid.len());
    let mut reload = ReloadOutcome {
        attempted: 0,
        admitted: 0,
        rejected: 0,
        generations: 1,
    };
    let mut violations = 0u64;
    let mut expected_generation = 1u64;

    for (cell_index, &(class, rate)) in grid.iter().enumerate() {
        let plan = match class {
            None => ChaosPlan::none(options.seed),
            Some(c) => ChaosPlan::single(c, rate, options.seed),
        };
        plan.validate();
        let mut cell = CellOutcome {
            class: class.map_or("none".to_string(), |c| c.name().to_string()),
            rate,
            sent: options.requests as u64,
            ok: 0,
            shed: 0,
            faulted: 0,
            degraded: 0,
            mismatches: 0,
        };
        for ordinal in 0..options.requests as u64 {
            let indices: Vec<usize> = (0..rows_per_request)
                .map(|j| (ordinal as usize * rows_per_request + j) % corpus.len())
                .collect();
            let rows: Vec<Vec<f64>> = indices.iter().map(|&idx| corpus[idx].clone()).collect();
            let body = survd::render_score_request(&rows);
            let action = plan.action(ordinal);
            let expect = chaos::expected(action);
            let outcome = chaos::drive(addr, &plan, ordinal, &body, max_body + 1, READ_TIMEOUT_MS);
            match outcome {
                Outcome::Response { status: 200, body } => {
                    cell.ok += 1;
                    if expect != Expect::Status(200) {
                        obs::error!(
                            "chaossweep",
                            "{} ordinal {ordinal}: got 200, expected {expect:?}",
                            cell.class
                        );
                        violations += 1;
                    }
                    let want: Vec<RowScore> =
                        indices.iter().map(|&idx| expected[idx].clone()).collect();
                    match survd::parse_score_response(&body) {
                        Ok(parsed)
                            if parsed.threshold == expected_threshold
                                && parsed.results == want
                                && parsed.generation == expected_generation => {}
                        Ok(parsed) => {
                            obs::error!(
                                "chaossweep",
                                "{} ordinal {ordinal}: 200 body diverged \
                                 (generation {} vs {expected_generation})",
                                cell.class,
                                parsed.generation
                            );
                            cell.mismatches += 1;
                        }
                        Err(e) => {
                            obs::error!(
                                "chaossweep",
                                "{} ordinal {ordinal}: unparseable 200 body: {e}",
                                cell.class
                            );
                            cell.mismatches += 1;
                        }
                    }
                }
                Outcome::Response { status: 429, .. } => cell.shed += 1,
                Outcome::Response { status: 503, .. } => cell.degraded += 1,
                Outcome::Response { status, .. } => {
                    cell.faulted += 1;
                    if expect != Expect::Status(status) {
                        obs::error!(
                            "chaossweep",
                            "{} ordinal {ordinal}: got {status}, expected {expect:?}",
                            cell.class
                        );
                        violations += 1;
                    }
                }
                Outcome::NoResponse => {
                    cell.faulted += 1;
                    if expect != Expect::NoResponse {
                        obs::error!(
                            "chaossweep",
                            "{} ordinal {ordinal}: no response, expected {expect:?}",
                            cell.class
                        );
                        violations += 1;
                    }
                }
                Outcome::Transport(e) => {
                    cell.faulted += 1;
                    obs::error!(
                        "chaossweep",
                        "{} ordinal {ordinal}: transport failure: {e}",
                        cell.class
                    );
                    violations += 1;
                }
            }
        }
        println!(
            "[chaossweep] cell {:>2} {:<16} rate {:.2}: {} ok / {} faulted / {} shed / {} degraded / {} mismatches",
            cell_index, cell.class, rate, cell.ok, cell.faulted, cell.shed, cell.degraded, cell.mismatches
        );
        cells.push(cell);

        // Hot-swap drill every few cells: one valid candidate (a
        // re-render of the live model — same scores, next generation)
        // and one corrupted candidate that must be refused while the
        // old generation keeps serving.
        if (cell_index + 1) % 5 == 0 {
            let rendered = model.render();
            match drill_reload(addr, &rendered, true) {
                Ok(()) => {
                    reload.attempted += 1;
                    reload.admitted += 1;
                    expected_generation += 1;
                }
                Err(e) => {
                    reload.attempted += 1;
                    obs::error!("chaossweep", "valid reload refused: {e}");
                    violations += 1;
                }
            }
            let corrupt = rendered.replace("survdb-model/v1", "survdb-model/v9");
            match drill_reload(addr, &corrupt, false) {
                Ok(()) => {
                    reload.attempted += 1;
                    reload.rejected += 1;
                }
                Err(e) => {
                    reload.attempted += 1;
                    obs::error!("chaossweep", "corrupt reload mishandled: {e}");
                    violations += 1;
                }
            }
        }
    }
    reload.generations = handle.generation();
    if reload.generations != expected_generation {
        obs::error!(
            "chaossweep",
            "daemon reports generation {}, sweep expected {expected_generation}",
            reload.generations
        );
        violations += 1;
    }

    let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
    let stats = handle.shutdown();
    println!(
        "[chaossweep] daemon drained: {} ok, {} bad requests, {} reloads ok, {} rejected",
        stats.score_ok, stats.bad_requests, stats.reloads_ok, stats.reloads_rejected
    );
    if stats.reloads_ok != reload.admitted || stats.reloads_rejected != reload.rejected {
        obs::error!(
            "chaossweep",
            "daemon reload counters ({} ok, {} rejected) disagree with the sweep ({}, {})",
            stats.reloads_ok,
            stats.reloads_rejected,
            reload.admitted,
            reload.rejected
        );
        violations += 1;
    }

    let run_config = ResilienceConfig {
        requests_per_cell: options.requests,
        seed: options.seed,
        workers: options.workers,
        queue_capacity: options.queue,
    };
    let text = survd::render_resilience(
        "chaossweep",
        &run_config,
        &model,
        &cells,
        &reload,
        elapsed_ms,
    );
    if let Err(e) = survd::validate_resilience(&text) {
        obs::error!("chaossweep", "artifact failed its own schema: {e}");
        violations += 1;
    }
    match survd::write_resilience(
        &options.out,
        "chaossweep",
        &run_config,
        &model,
        &cells,
        &reload,
        elapsed_ms,
    ) {
        Ok(path) => println!("[chaossweep] wrote {}", path.display()),
        Err(e) => {
            obs::error!("chaossweep", "cannot write resilience artifact: {e}");
            std::process::exit(1);
        }
    }

    bench::finish_trace(&registry, "chaossweep", &options.out);

    if violations > 0 {
        obs::error!("chaossweep", "{violations} contract violations");
        std::process::exit(1);
    }
    let total_ok: u64 = cells.iter().map(|c| c.ok).sum();
    println!(
        "[chaossweep] every typed reaction matched its contract; {} bodies bitwise-verified \
         across {} generations",
        total_ok, reload.generations
    );
}

/// Posts one reload candidate and checks the daemon's verdict:
/// `expect_admit` → 200, otherwise → 422. A clean probe request after
/// the verdict must still answer 200 (the daemon keeps serving either
/// way).
fn drill_reload(
    addr: std::net::SocketAddr,
    candidate: &str,
    expect_admit: bool,
) -> Result<(), String> {
    let mut client = Client::connect(addr, Some(std::time::Duration::from_secs(10)))
        .map_err(|e| format!("connect: {e}"))?;
    let response = client
        .request("POST", "/reload", candidate.as_bytes())
        .map_err(|e| format!("reload request: {e}"))?;
    let want = if expect_admit { 200 } else { 422 };
    if response.status != want {
        return Err(format!(
            "candidate answered {}, expected {want}",
            response.status
        ));
    }
    Ok(())
}
