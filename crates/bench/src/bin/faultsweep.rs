//! `faultsweep` — the end-to-end degradation sweep.
//!
//! ```text
//! cargo run -p bench --release --bin faultsweep -- \
//!     [--scale F] [--seed N] [--rates R1,R2,...] [--out PATH]
//! ```
//!
//! Injects every fault class at a ladder of rates into a region-1
//! fleet's telemetry, recovers records through the lenient ingest
//! path, re-runs the §5 classification protocol on each recovered
//! population, and writes accuracy / precision / recall deltas against
//! the clean baseline to `artifacts/robustness.json`. The output is
//! byte-deterministic in `(scale, seed, rates)`.

use std::fs;
use std::path::Path;
use survdb::degradation::{run_degradation_sweep, DegradationConfig};

struct Options {
    scale: f64,
    seed: u64,
    rates: Vec<f64>,
    out: String,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let defaults = DegradationConfig::default();
    let mut options = Options {
        scale: defaults.scale,
        seed: defaults.seed,
        rates: defaults.fault_rates,
        out: "artifacts/robustness.json".to_string(),
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if !matches!(flag, "--scale" | "--seed" | "--rates" | "--out") {
            return Err(format!("unknown flag {flag}"));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag {
            "--scale" => {
                options.scale = value.parse().map_err(|e| format!("bad --scale: {e}"))?;
                if !(options.scale > 0.0 && options.scale.is_finite()) {
                    return Err(format!("--scale must be positive, got {}", options.scale));
                }
            }
            "--seed" => options.seed = value.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--rates" => {
                options.rates = value
                    .split(',')
                    .map(|r| {
                        r.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("bad rate {r}: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if options.rates.is_empty() {
                    return Err("--rates needs at least one rate".to_string());
                }
                if let Some(bad) = options.rates.iter().find(|r| !(0.0..=1.0).contains(*r)) {
                    return Err(format!("rate {bad} out of range [0, 1]"));
                }
            }
            "--out" => options.out = value.clone(),
            _ => unreachable!("flag list checked above"),
        }
        i += 2;
    }
    Ok(options)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("faultsweep", "{e}");
            obs::error!(
                "faultsweep",
                "usage: faultsweep [--scale F] [--seed N] [--rates R1,R2,...] [--out PATH]"
            );
            std::process::exit(2);
        }
    };

    // Record spans/counters/events for the whole run; Info events keep
    // echoing to stderr as the un-instrumented binary's prints did.
    let registry = obs::Registry::with_stderr_level(obs::Level::Info);
    let _trace = registry.install();

    let config = DegradationConfig {
        scale: options.scale,
        seed: options.seed,
        fault_rates: options.rates,
        ..DegradationConfig::default()
    };
    obs::info!(
        "faultsweep",
        "scale {} seed {} — {} classes x {} rates",
        config.scale,
        config.seed,
        config.classes.len(),
        config.fault_rates.len()
    );

    let report = match run_degradation_sweep(&config) {
        Ok(r) => r,
        Err(e) => {
            obs::error!("faultsweep", "{e}");
            std::process::exit(1);
        }
    };

    for cell in &report.cells {
        let delta = cell
            .delta
            .map_or("skipped (population too small)".to_string(), |d| {
                format!(
                    "Δacc {:+.3} Δprec {:+.3} Δrec {:+.3}",
                    d.accuracy, d.precision, d.recall
                )
            });
        obs::info!(
            "faultsweep",
            "  {:>18} @ {:<4} recovered {:>5} quarantined {:>4}  {delta}",
            cell.class.to_string(),
            cell.rate,
            cell.ingest.databases_recovered,
            cell.ingest.databases_quarantined,
        );
    }

    let json = report.to_json();
    if let Some(dir) = Path::new(&options.out).parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir).expect("create output directory");
        }
    }
    fs::write(&options.out, &json).expect("write robustness report");
    obs::info!(
        "faultsweep",
        "baseline acc {:.3} — wrote {}",
        report.baseline.accuracy,
        options.out
    );

    let artifact_dir = Path::new(&options.out)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
        .unwrap_or_else(|| Path::new("."))
        .to_path_buf();
    bench::finish_trace(&registry, "faultsweep", &artifact_dir);
}
