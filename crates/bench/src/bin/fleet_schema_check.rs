//! `fleet-schema-check` — validates the structure of a `fleet.json`
//! so producer drift fails the build.
//!
//! ```text
//! cargo run -p bench --bin fleet-schema-check -- [PATH ...]
//! ```
//!
//! Each PATH (default `artifacts/fleet.json`) must parse and satisfy
//! the `survdb-fleet/v1` schema (see `bench::fleet`): exact key order,
//! the counting identity `generated = recovered + quarantined +
//! vanished` per shard / per region / in total, and shard-to-region
//! sum consistency. When more than one PATH is given, every file's
//! *deterministic* section must additionally be byte-identical to the
//! first's — CI passes runs with different shard counts and visit
//! orders to hold the streaming pipeline's invariance contract. Exits
//! nonzero on the first violation.

use bench::fleet::{deterministic_section_of, validate_fleet, FLEET_SCHEMA};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths = if args.is_empty() {
        vec!["artifacts/fleet.json".to_string()]
    } else {
        args
    };

    let mut reference: Option<(String, String)> = None;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                obs::error!("schema-check", "cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = validate_fleet(&text) {
            obs::error!("schema-check", "{path}: {e}");
            return ExitCode::FAILURE;
        }
        let section = match deterministic_section_of(&text) {
            Ok(s) => s,
            Err(e) => {
                obs::error!("schema-check", "{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match &reference {
            None => reference = Some((path.clone(), section)),
            Some((first_path, first_section)) => {
                if section != *first_section {
                    obs::error!(
                        "schema-check",
                        "{path}: deterministic section differs from {first_path} — \
                         the streamed pipeline is not shard-layout invariant"
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("[schema-check] {path}: valid {FLEET_SCHEMA}");
    }
    if paths.len() > 1 {
        println!(
            "[schema-check] deterministic sections byte-identical across {} files",
            paths.len()
        );
    }
    ExitCode::SUCCESS
}
