//! `fleetbench` — million-database streaming fleet simulation.
//!
//! ```text
//! cargo run -p bench --release --bin fleetbench -- \
//!     [--scale F] [--seed N] [--shards N] [--chunk N] \
//!     [--order forward|backward] [--fault F] [--out DIR]
//! ```
//!
//! Drives the sharded streaming pipeline (`telemetry::stream`) over
//! all three regions: per-subscription generation → optional fault
//! injection → chunked lenient ingest → per-shard featurization. Raw
//! telemetry never outlives one chunk and shard fleets are dropped as
//! soon as their rows are counted, so memory stays bounded by the
//! largest shard no matter how many million databases `--scale` asks
//! for (scale ~60 crosses one million).
//!
//! Writes `DIR/fleet.json` (schema `survdb-fleet/v1`): the
//! deterministic section is byte-identical across shard counts and
//! visit orders — CI holds that contract with `fleet-schema-check`.

use bench::fleet::{
    run_fleetbench, write_fleet, FleetBenchOptions, FleetReport, VisitOrder, FLEET_FILE,
};
use std::path::PathBuf;

fn parse(args: &[String]) -> Result<FleetBenchOptions, String> {
    let mut options = FleetBenchOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag {
            "--scale" => options.scale = value.parse().map_err(|e| format!("bad --scale: {e}"))?,
            "--seed" => options.seed = value.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--shards" => {
                options.shards = value.parse().map_err(|e| format!("bad --shards: {e}"))?
            }
            "--chunk" => {
                options.chunk_subscriptions =
                    value.parse().map_err(|e| format!("bad --chunk: {e}"))?
            }
            "--order" => {
                options.visit_order = match value.as_str() {
                    "forward" => VisitOrder::Forward,
                    "backward" => VisitOrder::Backward,
                    other => return Err(format!("unknown visit order {other}")),
                }
            }
            "--fault" => {
                options.fault_rate = value.parse().map_err(|e| format!("bad --fault: {e}"))?
            }
            "--out" => options.artifact_dir = PathBuf::from(value),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if options.scale.is_nan() || options.scale <= 0.0 {
        return Err(format!("--scale {} must be positive", options.scale));
    }
    if !(0.0..=1.0).contains(&options.fault_rate) {
        return Err(format!("--fault {} outside [0, 1]", options.fault_rate));
    }
    if options.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if options.chunk_subscriptions == 0 {
        return Err("--chunk must be at least 1".into());
    }
    Ok(options)
}

fn print_summary(report: &FleetReport) {
    println!("\n================ Fleet summary (fleetbench)\n");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "region", "subs", "generated", "recovered", "quar", "vanish", "rows"
    );
    for r in &report.regions {
        println!(
            "{:<10} {:>8} {:>10} {:>10} {:>8} {:>8} {:>10}",
            r.region,
            r.subscriptions,
            r.generated,
            r.recovered,
            r.quarantined,
            r.vanished,
            r.dataset_rows
        );
    }
    let generated: usize = report.regions.iter().map(|r| r.generated).sum();
    let rows: usize = report.regions.iter().map(|r| r.dataset_rows).sum();
    println!(
        "\ntotal: {generated} databases, {rows} rows in {:.1} s \
         ({:.0} databases/s, {:.0} rows/s), peak RSS {} kB",
        report.elapsed_ms / 1000.0,
        report.databases_per_second(),
        report.rows_per_second(),
        report.peak_rss_kb
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("fleetbench", "{e}");
            obs::error!(
                "fleetbench",
                "usage: fleetbench [--scale F] [--seed N] [--shards N] [--chunk N] \
                 [--order forward|backward] [--fault F] [--out DIR]"
            );
            std::process::exit(2);
        }
    };

    let registry = obs::Registry::with_stderr_level(obs::Level::Info);
    let _trace = registry.install();
    obs::info!(
        "fleetbench",
        "scale {} seed {} shards {} chunk {} order {} fault {}",
        options.scale,
        options.seed,
        options.shards,
        options.chunk_subscriptions,
        options.visit_order.label(),
        options.fault_rate
    );

    let report = run_fleetbench(&options);
    print_summary(&report);

    match write_fleet(&options.artifact_dir, "fleetbench", &report) {
        Ok(path) => println!("\n[fleetbench] wrote {}", path.display()),
        Err(e) => {
            obs::error!(
                "fleetbench",
                "cannot write {}: {e}",
                options.artifact_dir.join(FLEET_FILE).display()
            );
            std::process::exit(1);
        }
    }
    bench::finish_trace(&registry, "fleetbench", &options.artifact_dir);
}
