//! `fleetgen` — generate and export a synthetic fleet dataset.
//!
//! ```text
//! cargo run -p bench --release --bin fleetgen -- \
//!     [--region 1|2|3] [--scale F] [--seed N] [--shards N] \
//!     [--jsonl PATH] [--csv PATH] [--events PATH]
//! ```
//!
//! Writes the database records as JSON Lines (lossless; can be read
//! back with `telemetry::read_records_jsonl`), a flat CSV summary for
//! dataframes, and/or the raw telemetry event stream as text.
//!
//! Export is streamed: the region is generated shard by shard (whole
//! subscriptions, `--shards` of them) and each shard's records are
//! written and dropped before the next is generated, so arbitrarily
//! large `--scale` values export in bounded memory. Because the
//! generator is pure per subscription, the concatenated record output
//! (jsonl/csv) is byte-identical to a whole-fleet export at any shard
//! count; the events export is time-ordered within each shard.

use std::fs::File;
use std::io::{BufWriter, Write};
use telemetry::{
    write_records_jsonl, write_summary_csv_header, write_summary_csv_rows, EventStream,
    FleetConfig, RegionConfig, RegionId, ShardPlan,
};

struct Options {
    region: RegionId,
    scale: f64,
    seed: u64,
    shards: usize,
    jsonl: Option<String>,
    csv: Option<String>,
    events: Option<String>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        region: RegionId::Region1,
        scale: 0.1,
        seed: 42,
        shards: 8,
        jsonl: None,
        csv: None,
        events: None,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag {
            "--region" => {
                options.region = match value.as_str() {
                    "1" => RegionId::Region1,
                    "2" => RegionId::Region2,
                    "3" => RegionId::Region3,
                    other => return Err(format!("unknown region {other}")),
                }
            }
            "--scale" => options.scale = value.parse().map_err(|e| format!("bad --scale: {e}"))?,
            "--seed" => options.seed = value.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--shards" => {
                options.shards = value.parse().map_err(|e| format!("bad --shards: {e}"))?
            }
            "--jsonl" => options.jsonl = Some(value.clone()),
            "--csv" => options.csv = Some(value.clone()),
            "--events" => options.events = Some(value.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if options.jsonl.is_none() && options.csv.is_none() && options.events.is_none() {
        return Err("nothing to do: pass --jsonl, --csv, and/or --events".into());
    }
    Ok(options)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("fleetgen", "{e}");
            obs::error!(
                "fleetgen",
                "usage: fleetgen [--region 1|2|3] [--scale F] [--seed N] [--shards N] \
                 [--jsonl PATH] [--csv PATH] [--events PATH]"
            );
            std::process::exit(2);
        }
    };

    let builder = FleetConfig::builder(RegionConfig::canonical(options.region))
        .scale(options.scale)
        .seed(options.seed)
        .shards(options.shards.max(1));
    let config = builder.config();
    let plan: ShardPlan = builder.shard_plan();
    let window_end = simtime::Timestamp::from_date(config.region.window_end());

    let mut jsonl = options
        .jsonl
        .as_ref()
        .map(|path| BufWriter::new(File::create(path).expect("create jsonl file")));
    let mut csv = options.csv.as_ref().map(|path| {
        let mut file = BufWriter::new(File::create(path).expect("create csv file"));
        write_summary_csv_header(&mut file).expect("write csv header");
        file
    });
    let mut events_out = options
        .events
        .as_ref()
        .map(|path| BufWriter::new(File::create(path).expect("create events file")));

    let mut subscriptions = 0usize;
    let mut databases = 0usize;
    let mut events = 0usize;
    for shard in 0..plan.shard_count() {
        let fleet = telemetry::Fleet::generate_range(config.clone(), plan.range(shard));
        subscriptions += fleet.subscriptions.len();
        databases += fleet.databases.len();
        if let Some(out) = &mut jsonl {
            write_records_jsonl(&fleet.databases, out).expect("write jsonl");
        }
        if let Some(out) = &mut csv {
            write_summary_csv_rows(&fleet.databases, window_end, out).expect("write csv");
        }
        if let Some(out) = &mut events_out {
            let stream = EventStream::of_fleet(&fleet);
            for (at, event) in stream.events() {
                writeln!(out, "{at}\t{event:?}").expect("write event");
            }
            events += stream.len();
        }
        // The shard fleet drops here; memory stays bounded by one shard.
    }

    obs::info!(
        "fleetgen",
        "generated {}: {} subscriptions, {} databases ({} shards)",
        options.region,
        subscriptions,
        databases,
        plan.shard_count()
    );
    for (path, label) in [
        (&options.jsonl, "jsonl"),
        (&options.csv, "csv"),
        (&options.events, "events"),
    ] {
        if let Some(path) = path {
            if label == "events" {
                obs::info!("fleetgen", "wrote {path} ({events} events)");
            } else {
                obs::info!("fleetgen", "wrote {path}");
            }
        }
    }
}
