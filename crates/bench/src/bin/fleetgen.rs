//! `fleetgen` — generate and export a synthetic fleet dataset.
//!
//! ```text
//! cargo run -p bench --release --bin fleetgen -- \
//!     [--region 1|2|3] [--scale F] [--seed N] \
//!     [--jsonl PATH] [--csv PATH] [--events PATH]
//! ```
//!
//! Writes the database records as JSON Lines (lossless; can be read
//! back with `telemetry::read_records_jsonl`), a flat CSV summary for
//! dataframes, and/or the raw telemetry event stream as text.

use std::fs::File;
use std::io::{BufWriter, Write};
use telemetry::{
    write_records_jsonl, write_summary_csv, EventStream, Fleet, FleetConfig, RegionConfig, RegionId,
};

struct Options {
    region: RegionId,
    scale: f64,
    seed: u64,
    jsonl: Option<String>,
    csv: Option<String>,
    events: Option<String>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        region: RegionId::Region1,
        scale: 0.1,
        seed: 42,
        jsonl: None,
        csv: None,
        events: None,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag {
            "--region" => {
                options.region = match value.as_str() {
                    "1" => RegionId::Region1,
                    "2" => RegionId::Region2,
                    "3" => RegionId::Region3,
                    other => return Err(format!("unknown region {other}")),
                }
            }
            "--scale" => options.scale = value.parse().map_err(|e| format!("bad --scale: {e}"))?,
            "--seed" => options.seed = value.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--jsonl" => options.jsonl = Some(value.clone()),
            "--csv" => options.csv = Some(value.clone()),
            "--events" => options.events = Some(value.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if options.jsonl.is_none() && options.csv.is_none() && options.events.is_none() {
        return Err("nothing to do: pass --jsonl, --csv, and/or --events".into());
    }
    Ok(options)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("fleetgen", "{e}");
            obs::error!(
                "fleetgen",
                "usage: fleetgen [--region 1|2|3] [--scale F] [--seed N] \
                 [--jsonl PATH] [--csv PATH] [--events PATH]"
            );
            std::process::exit(2);
        }
    };

    let fleet = Fleet::generate(FleetConfig::new(
        RegionConfig::canonical(options.region).scaled(options.scale),
        options.seed,
    ));
    obs::info!(
        "fleetgen",
        "generated {}: {} subscriptions, {} databases",
        options.region,
        fleet.subscriptions.len(),
        fleet.databases.len()
    );

    if let Some(path) = &options.jsonl {
        let file = BufWriter::new(File::create(path).expect("create jsonl file"));
        write_records_jsonl(&fleet.databases, file).expect("write jsonl");
        obs::info!("fleetgen", "wrote {path}");
    }
    if let Some(path) = &options.csv {
        let file = BufWriter::new(File::create(path).expect("create csv file"));
        write_summary_csv(&fleet.databases, fleet.window_end(), file).expect("write csv");
        obs::info!("fleetgen", "wrote {path}");
    }
    if let Some(path) = &options.events {
        let mut file = BufWriter::new(File::create(path).expect("create events file"));
        let stream = EventStream::of_fleet(&fleet);
        for (at, event) in stream.events() {
            writeln!(file, "{at}\t{event:?}").expect("write event");
        }
        obs::info!("fleetgen", "wrote {path} ({} events)", stream.len());
    }
}
