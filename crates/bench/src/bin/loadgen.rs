//! `loadgen` — closed-loop load generator for the scoring daemon.
//!
//! ```text
//! cargo run -p bench --release --bin loadgen -- [flags]
//!
//! flags: --requests N        total requests to issue (default 200)
//!        --connections N     concurrent closed-loop clients (default 4)
//!        --rows N            feature rows per request (default 4)
//!        --scale F           population scale for the fixture fleet (default 0.25)
//!        --seed N            master seed (default 2018)
//!        --model PATH        load an existing model instead of training one
//!        --tune              when training, grid-search the hyper-parameters
//!        --workers N         daemon worker threads (default 4)
//!        --queue N           daemon admission-queue capacity (default 128)
//!        --batch-rows N      daemon micro-batch row threshold (default 64)
//!        --batch-wait-ms N   daemon micro-batch flush deadline (default 2)
//!        --retry-429 N       retry shed (429) responses up to N times with
//!                            seeded full-jitter backoff (default 0: off, so
//!                            shed accounting stays exact)
//!        --out DIR           artifact directory (default artifacts/)
//! ```
//!
//! The generator spawns the daemon in-process on a loopback port,
//! builds a deterministic request corpus from the fixture fleet's
//! feature rows (request `i` carries corpus rows `(i*R + j) % len`),
//! and drives it closed-loop: each connection issues its next request
//! only after the previous response lands. Every 200 response is
//! verified **bitwise** against offline `serve::score_rows` output —
//! any probability mismatch, shed, or transport error fails the run
//! with a nonzero exit. On success it writes
//! `artifacts/serving.json` (`survdb-serving/v1`): deterministic
//! counts + score histogram, wall-clock latency/throughput under
//! `nondeterministic`.

use bench::model_source::{fixture_dataset, obtain_model, ModelSpec};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use survd::{
    BatchPolicy, Client, RowScore, ServerConfig, ServingCorpus, ServingCounts, ServingRunConfig,
    ServingTiming,
};

struct Options {
    requests: usize,
    connections: usize,
    rows_per_request: usize,
    scale: f64,
    seed: u64,
    model: Option<PathBuf>,
    tune: bool,
    workers: usize,
    queue: usize,
    batch_rows: usize,
    batch_wait_ms: u64,
    retry_429: u32,
    out: PathBuf,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        requests: 200,
        connections: 4,
        rows_per_request: 4,
        scale: 0.25,
        seed: 2018,
        model: None,
        tune: false,
        workers: 4,
        queue: 128,
        batch_rows: 64,
        batch_wait_ms: 2,
        retry_429: 0,
        out: PathBuf::from("artifacts"),
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--requests" => {
                options.requests = value()?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?;
                i += 2;
            }
            "--connections" => {
                options.connections = value()?
                    .parse()
                    .map_err(|e| format!("bad --connections: {e}"))?;
                i += 2;
            }
            "--rows" => {
                options.rows_per_request =
                    value()?.parse().map_err(|e| format!("bad --rows: {e}"))?;
                i += 2;
            }
            "--scale" => {
                options.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                i += 2;
            }
            "--seed" => {
                options.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                i += 2;
            }
            "--model" => {
                options.model = Some(PathBuf::from(value()?));
                i += 2;
            }
            "--tune" => {
                options.tune = true;
                i += 1;
            }
            "--workers" => {
                options.workers = value()?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                i += 2;
            }
            "--queue" => {
                options.queue = value()?.parse().map_err(|e| format!("bad --queue: {e}"))?;
                i += 2;
            }
            "--batch-rows" => {
                options.batch_rows = value()?
                    .parse()
                    .map_err(|e| format!("bad --batch-rows: {e}"))?;
                i += 2;
            }
            "--batch-wait-ms" => {
                options.batch_wait_ms = value()?
                    .parse()
                    .map_err(|e| format!("bad --batch-wait-ms: {e}"))?;
                i += 2;
            }
            "--retry-429" => {
                options.retry_429 = value()?
                    .parse()
                    .map_err(|e| format!("bad --retry-429: {e}"))?;
                i += 2;
            }
            "--out" => {
                options.out = PathBuf::from(value()?);
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if options.requests == 0 || options.connections == 0 || options.rows_per_request == 0 {
        return Err("--requests, --connections, and --rows must be nonzero".to_string());
    }
    Ok(options)
}

/// What one closed-loop connection observed.
#[derive(Default)]
struct ConnectionOutcome {
    ok: u64,
    shed: u64,
    error: u64,
    mismatches: u64,
    retries: u64,
    histogram: [u64; 10],
    latencies_ms: Vec<f64>,
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("loadgen", "{e}");
            obs::error!(
                "loadgen",
                "usage: loadgen [--requests N] [--connections N] [--rows N] [--scale F] \
                 [--seed N] [--model PATH] [--tune] [--workers N] [--queue N] \
                 [--batch-rows N] [--batch-wait-ms N] [--retry-429 N] [--out DIR]"
            );
            std::process::exit(2);
        }
    };

    let registry = Arc::new(obs::Registry::with_stderr_level(obs::Level::Info));
    let _guard = registry.install();

    println!(
        "[loadgen] building corpus fleet (scale {}, seed {})",
        options.scale, options.seed
    );
    let data = fixture_dataset(options.scale, options.seed);
    let spec = ModelSpec {
        load_from: options.model.clone(),
        seed: options.seed,
        tune: options.tune,
        save_dir: options.out.clone(),
    };
    let model = match obtain_model(&data, &spec) {
        Ok(m) => m,
        Err(e) => {
            obs::error!("loadgen", "{e}");
            std::process::exit(1);
        }
    };

    // The deterministic corpus: every feature row of the fixture fleet,
    // in dataset order. Request i carries rows (i*R + j) % len.
    let corpus: Vec<Vec<f64>> = (0..data.len()).map(|i| data.row(i)).collect();
    println!(
        "[loadgen] corpus: {} rows x {} features",
        corpus.len(),
        data.feature_count()
    );

    // Offline ground truth, computed once: the daemon must reproduce
    // these probabilities bitwise no matter how requests coalesce.
    let offline = serve::score_rows(&model.forest, &corpus, model.meta.positive_fraction);
    let expected: Vec<RowScore> = offline.rows.iter().map(RowScore::from_scored).collect();
    let expected_threshold = model.threshold();

    // Drift reference: prefer the training-time score histogram in
    // scoring.json (what a production daemon would be seeded from);
    // fall back to the offline summary of this very corpus, which
    // makes the expected divergence exactly zero.
    let scoring_path = options.out.join(serve::SCORING_FILE);
    let drift_reference = std::fs::read_to_string(&scoring_path)
        .ok()
        .and_then(|text| serve::training_score_histogram(&text).ok())
        .inspect(|_| {
            println!(
                "[loadgen] drift reference: training histogram from {}",
                scoring_path.display()
            );
        })
        .unwrap_or_else(|| {
            println!("[loadgen] drift reference: offline corpus histogram");
            offline.summary().histogram
        });

    let serving_model = model.clone();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: options.workers,
        queue_capacity: options.queue,
        batch: BatchPolicy {
            max_rows: options.batch_rows,
            max_wait_ms: options.batch_wait_ms,
        },
        drift_reference: Some(drift_reference),
        ..ServerConfig::default()
    };
    let latency_config = config.clone();
    let handle = match survd::start(serving_model, config, Some(Arc::clone(&registry))) {
        Ok(h) => h,
        Err(e) => {
            obs::error!("loadgen", "cannot start daemon: {e}");
            std::process::exit(1);
        }
    };
    let addr = handle.addr();
    println!(
        "[loadgen] daemon on {addr} ({} workers, queue {}, batch {} rows / {} ms)",
        options.workers, options.queue, options.batch_rows, options.batch_wait_ms
    );
    println!(
        "[loadgen] issuing {} requests x {} rows over {} connections ...",
        options.requests, options.rows_per_request, options.connections
    );

    let corpus = Arc::new(corpus);
    let expected = Arc::new(expected);
    let started = Instant::now();
    let mut threads = Vec::with_capacity(options.connections);
    for c in 0..options.connections {
        let corpus = Arc::clone(&corpus);
        let expected = Arc::clone(&expected);
        let requests = options.requests;
        let connections = options.connections;
        let rows_per_request = options.rows_per_request;
        let retry_policy = (options.retry_429 > 0).then_some(survd::RetryPolicy {
            max_retries: options.retry_429,
            base_delay_ms: 5,
            max_delay_ms: 200,
            seed: options.seed ^ c as u64,
        });
        let thread = std::thread::Builder::new()
            .name(format!("loadgen-{c}"))
            .spawn(move || {
                let mut outcome = ConnectionOutcome::default();
                let mut sleeper = survd::ThreadSleeper;
                let mut client = match Client::connect(addr, Some(Duration::from_secs(30))) {
                    Ok(client) => client,
                    Err(e) => {
                        obs::error!("loadgen", "connection {c}: connect failed: {e}");
                        outcome.error = ((requests + connections - 1 - c) / connections) as u64;
                        return outcome;
                    }
                };
                for i in (c..requests).step_by(connections) {
                    let indices: Vec<usize> = (0..rows_per_request)
                        .map(|j| (i * rows_per_request + j) % corpus.len())
                        .collect();
                    let rows: Vec<Vec<f64>> =
                        indices.iter().map(|&idx| corpus[idx].clone()).collect();
                    let body = survd::render_score_request(&rows);
                    let sent = Instant::now();
                    // Shed responses are retried only when asked
                    // (--retry-429); the default keeps shed accounting
                    // exact for the determinism tests.
                    let response = match &retry_policy {
                        Some(policy) => {
                            match survd::retry::score_with_retries(
                                &mut client,
                                &body,
                                policy,
                                &mut sleeper,
                            ) {
                                Ok(retried) => {
                                    outcome.retries += u64::from(retried.retries);
                                    retried.response
                                }
                                Err(e) => {
                                    obs::error!("loadgen", "request {i}: {e}");
                                    outcome.error += 1;
                                    continue;
                                }
                            }
                        }
                        None => match client.score(&body) {
                            Ok(r) => r,
                            Err(e) => {
                                obs::error!("loadgen", "request {i}: {e}");
                                outcome.error += 1;
                                continue;
                            }
                        },
                    };
                    let latency_ms = sent.elapsed().as_secs_f64() * 1000.0;
                    match response.status {
                        200 => {
                            let text = match response.text() {
                                Ok(t) => t,
                                Err(_) => {
                                    obs::error!("loadgen", "request {i}: non-UTF-8 body");
                                    outcome.error += 1;
                                    continue;
                                }
                            };
                            match survd::parse_score_response(text) {
                                Ok(parsed) => {
                                    outcome.ok += 1;
                                    outcome.latencies_ms.push(latency_ms);
                                    let want: Vec<RowScore> =
                                        indices.iter().map(|&idx| expected[idx].clone()).collect();
                                    // Bitwise: f64 == via shortest-roundtrip JSON.
                                    if parsed.threshold != expected_threshold
                                        || parsed.results != want
                                    {
                                        obs::error!(
                                            "loadgen",
                                            "request {i}: response diverged from offline scoring"
                                        );
                                        outcome.mismatches += 1;
                                    }
                                    for r in &parsed.results {
                                        outcome.histogram[serve::histogram_bucket(r.positive)] += 1;
                                    }
                                }
                                Err(e) => {
                                    obs::error!("loadgen", "request {i}: bad response: {e}");
                                    outcome.error += 1;
                                }
                            }
                        }
                        429 => outcome.shed += 1,
                        status => {
                            obs::error!("loadgen", "request {i}: HTTP {status}");
                            outcome.error += 1;
                        }
                    }
                }
                outcome
            })
            .expect("spawn loadgen connection");
        threads.push(thread);
    }

    let mut counts = ServingCounts {
        requests_sent: options.requests as u64,
        responses_ok: 0,
        responses_shed: 0,
        responses_error: 0,
        rows_scored: 0,
        score_histogram: [0; 10],
    };
    let mut mismatches = 0u64;
    let mut retries_429 = 0u64;
    let mut latencies: Vec<f64> = Vec::with_capacity(options.requests);
    for thread in threads {
        let outcome = thread.join().expect("loadgen connection panicked");
        counts.responses_ok += outcome.ok;
        counts.responses_shed += outcome.shed;
        counts.responses_error += outcome.error;
        mismatches += outcome.mismatches;
        retries_429 += outcome.retries;
        for (total, bucket) in counts.score_histogram.iter_mut().zip(outcome.histogram) {
            *total += bucket;
        }
        latencies.extend(outcome.latencies_ms);
    }
    let elapsed = started.elapsed().as_secs_f64();
    counts.rows_scored = counts.score_histogram.iter().sum();

    let drift_monitor = handle.drift_monitor();
    let stats = handle.shutdown();
    println!(
        "[loadgen] daemon drained: {} ok, {} shed, {} rows in {} batches (queue peak {})",
        stats.score_ok, stats.score_shed, stats.rows_scored, stats.batches, stats.queue_peak
    );

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let timing = ServingTiming {
        elapsed_ms: elapsed * 1000.0,
        requests_per_second: if elapsed > 0.0 {
            counts.responses_ok as f64 / elapsed
        } else {
            0.0
        },
        rows_per_second: if elapsed > 0.0 {
            counts.rows_scored as f64 / elapsed
        } else {
            0.0
        },
        retries_429,
        latency_p50_ms: percentile(&latencies, 0.50),
        latency_p95_ms: percentile(&latencies, 0.95),
        latency_p99_ms: percentile(&latencies, 0.99),
        latency_max_ms: latencies.last().copied().unwrap_or(0.0),
        latency_mean_ms: mean,
    };

    // Lifecycle observability: the per-stage sketches the daemon fed
    // through the shared registry, the drift monitor's final
    // histograms, and the client-side latency percentiles.
    let stage_sketches = survd::stage_sketches(&registry.snapshot());
    let drift = drift_monitor
        .expect("loadgen always seeds a drift reference")
        .snapshot();
    let latency_run = survd::LatencyRun {
        connections: options.connections as u64,
        rows_per_request: options.rows_per_request as u64,
        requests_sent: counts.requests_sent,
        responses_ok: counts.responses_ok,
        rows_scored: counts.rows_scored,
    };
    let client_latency = survd::ClientLatency {
        p50: timing.latency_p50_ms,
        p95: timing.latency_p95_ms,
        p99: timing.latency_p99_ms,
        max: timing.latency_max_ms,
        mean: timing.latency_mean_ms,
    };

    println!();
    print!("{}", survdb::report::serving_block(&counts, &timing));
    println!();
    print!(
        "{}",
        survdb::report::latency_block(&latency_run, &stage_sketches, &drift)
    );

    let run_config = ServingRunConfig {
        connections: options.connections,
        requests: options.requests,
        rows_per_request: options.rows_per_request,
        workers: options.workers,
        queue_capacity: options.queue,
        batch_max_rows: options.batch_rows,
        batch_max_wait_ms: options.batch_wait_ms,
    };
    let corpus_info = ServingCorpus {
        rows: corpus.len(),
        seed: options.seed,
    };
    match survd::write_serving(
        &options.out,
        "loadgen",
        &run_config,
        &corpus_info,
        &model,
        &counts,
        &timing,
    ) {
        Ok(path) => println!("\n[loadgen] wrote {}", path.display()),
        Err(e) => {
            obs::error!("loadgen", "cannot write serving artifact: {e}");
            std::process::exit(1);
        }
    }
    match survd::write_latency(
        &options.out,
        "loadgen",
        &latency_config,
        &latency_run,
        &stage_sketches,
        &drift,
        &client_latency,
    ) {
        Ok(path) => println!("[loadgen] wrote {}", path.display()),
        Err(e) => {
            obs::error!("loadgen", "cannot write latency artifact: {e}");
            std::process::exit(1);
        }
    }

    bench::finish_trace(&registry, "loadgen", &options.out);

    let mut failed = false;
    if counts.responses_ok != counts.requests_sent {
        obs::error!(
            "loadgen",
            "{} of {} requests did not get a 200 ({} shed, {} errors)",
            counts.requests_sent - counts.responses_ok,
            counts.requests_sent,
            counts.responses_shed,
            counts.responses_error
        );
        failed = true;
    }
    if mismatches > 0 {
        obs::error!(
            "loadgen",
            "{mismatches} responses diverged bitwise from offline scoring"
        );
        failed = true;
    }
    if stats.score_ok != counts.responses_ok {
        obs::error!(
            "loadgen",
            "daemon counted {} ok responses, clients saw {}",
            stats.score_ok,
            counts.responses_ok
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "[loadgen] all {} responses bitwise-identical to offline scoring",
        counts.responses_ok
    );
}
