//! `policy-schema-check` — validates the structure of a `policy.json`
//! so producer drift fails the build.
//!
//! ```text
//! cargo run -p bench --bin policy-schema-check -- [PATH ...]
//! ```
//!
//! Each PATH (default `artifacts/policy.json`) must parse and satisfy
//! the `survdb-policy/v1` schema (see `bench::policyart`): exact key
//! order, the counting identities (per-action counts sum to the row
//! total, the (region, edition) table sums to the per-action counts),
//! sweep-frontier consistency, recomputed deltas, and the
//! incentive-cliff best-threshold-beats-both-baselines criterion.
//! When more than one PATH is given, every file's *deterministic*
//! section must additionally be byte-identical to the first's — CI
//! passes runs with different shard counts to hold the decision
//! layer's shard-invariance contract. Exits nonzero on the first
//! violation.

use bench::policyart::{deterministic_policy_section, validate_policy, POLICY_SCHEMA};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths = if args.is_empty() {
        vec!["artifacts/policy.json".to_string()]
    } else {
        args
    };

    let mut reference: Option<(String, String)> = None;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                obs::error!("schema-check", "cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = validate_policy(&text) {
            obs::error!("schema-check", "{path}: {e}");
            return ExitCode::FAILURE;
        }
        let section = match deterministic_policy_section(&text) {
            Ok(s) => s,
            Err(e) => {
                obs::error!("schema-check", "{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match &reference {
            None => reference = Some((path.clone(), section)),
            Some((first_path, first_section)) => {
                if section != *first_section {
                    obs::error!(
                        "schema-check",
                        "{path}: deterministic section differs from {first_path} — \
                         the decision layer is not shard-layout invariant"
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("[schema-check] {path}: valid {POLICY_SCHEMA}");
    }
    if paths.len() > 1 {
        println!(
            "[schema-check] deterministic sections byte-identical across {} files",
            paths.len()
        );
    }
    ExitCode::SUCCESS
}
