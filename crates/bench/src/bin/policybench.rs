//! `policybench` — fleet-scale what-if runs of the provisioning
//! decision layer.
//!
//! ```text
//! cargo run -p bench --release --bin policybench -- [flags]
//!
//! flags: --scale F     population scale for every cohort (default 0.25)
//!        --seed N      master seed (default 2018)
//!        --shards N    subscription shards per region (default 4;
//!                      must not change the deterministic section)
//!        --grid N      threshold-grid resolution (default 11)
//!        --model PATH  load an existing model instead of training one
//!        --out DIR     artifact directory (default artifacts/)
//! ```
//!
//! For every what-if cohort (baseline, incentive-cliff mass churn,
//! seasonal SLO scaling, regional migration wave) the binary generates
//! the scenario fleet shard by shard, scores each (region, edition)
//! subgroup with the persisted forest, decides every row under the
//! canonical [`bench::policyart::canonical_spec`], and accumulates the
//! decision summary plus the cost-vs-threshold sweep in integer units.
//! On success it writes `artifacts/policy.json` (`survdb-policy/v1`)
//! and self-validates it; any validation failure — including the
//! headline requirement that the best sweep threshold beat both naive
//! baselines on the incentive-cliff cohort — exits nonzero.

use bench::model_source::{fixture_dataset, obtain_model, ModelSpec};
use bench::policyart::{
    cohort_table, parse_policy_options, run_policybench, validate_policy, write_policy,
};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_policy_options(&args) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("policybench", "{e}");
            obs::error!(
                "policybench",
                "usage: policybench [--scale F] [--seed N] [--shards N] [--grid N] \
                 [--model PATH] [--out DIR]"
            );
            std::process::exit(2);
        }
    };

    let registry = Arc::new(obs::Registry::with_stderr_level(obs::Level::Info));
    let _guard = registry.install();

    println!(
        "[policybench] obtaining model (scale {}, seed {})",
        options.scale, options.seed
    );
    let data = fixture_dataset(options.scale, options.seed);
    let spec = ModelSpec {
        load_from: options.model.clone(),
        seed: options.seed,
        tune: false,
        save_dir: options.artifact_dir.clone(),
    };
    let model = match obtain_model(&data, &spec) {
        Ok(m) => m,
        Err(e) => {
            obs::error!("policybench", "{e}");
            std::process::exit(1);
        }
    };

    println!(
        "[policybench] deciding 4 cohorts x 3 regions ({} shards, {}-point grid)",
        options.shards, options.grid_points
    );
    let report = run_policybench(&options, &model);

    println!();
    print!("{}", cohort_table(&report));

    match write_policy(&options.artifact_dir, &report) {
        Ok(path) => {
            let text = std::fs::read_to_string(&path).expect("just-written artifact is readable");
            if let Err(e) = validate_policy(&text) {
                obs::error!("policybench", "self-validation failed: {e}");
                std::process::exit(1);
            }
            println!("\n[policybench] wrote {} (validated)", path.display());
        }
        Err(e) => {
            obs::error!("policybench", "cannot write policy artifact: {e}");
            std::process::exit(1);
        }
    }

    bench::finish_trace(&registry, "policybench", &options.artifact_dir);
}
