//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p bench --release --bin repro -- <id> [flags]
//!
//! ids:   fig1 fig2 fig3 fig5 fig6 fig7 fig8 fig9 tab1 tab2
//!        obs factors prov sweep calib models segments all
//! flags: --scale F   population scale (default 0.5)
//!        --seed N    master seed
//!        --grid off|light|full
//!        --reps N    repetitions per subgroup (default 5)
//!        --out DIR   artifact directory (default artifacts/)
//! ```
//!
//! Each command prints the paper-style series/rows and writes
//! `artifacts/<id>.json`.

use bench::{parse_options, Harness};
use rand::SeedableRng;
use std::collections::BTreeMap;
use survdb::experiment::{Experiment, ExperimentConfig, GridPreset};
use survdb::json::{Json, ToJson};
use survdb::observations::ObservationReport;
use survdb::provisioning::{
    simulate, PlacementPolicy, PredictedLongevity, ProvisioningConfig, ProvisioningOutcome,
};
use survdb::report::{ascii_km_chart, ascii_km_series, p_value_cell, score_row, subgroup_block};
use survival::{KaplanMeier, SurvivalData};
use telemetry::{Census, Edition, RegionId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        obs::error!("repro", "usage: repro <fig1|fig2|fig3|fig5|fig6|fig7|fig8|fig9|tab1|tab2|obs|factors|prov|sweep|calib|models|segments|all> [flags]");
        std::process::exit(2);
    };
    let options = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("repro", "{e}");
            std::process::exit(2);
        }
    };

    // Record spans/counters/events for the whole run; Info events keep
    // echoing to stderr as the un-instrumented binary's prints did.
    let registry = obs::Registry::with_stderr_level(obs::Level::Info);
    let _trace = registry.install();
    let artifact_dir = options.artifact_dir.clone();

    let mut harness = Harness::new(options);
    match command.as_str() {
        "fig1" => fig1(&mut harness),
        "fig2" => fig2(&mut harness),
        "fig3" => fig3(&mut harness),
        "fig5" => fig5(&mut harness),
        "fig6" => fig6(&mut harness),
        "fig7" => fig7(&mut harness),
        "fig8" => fig8(&mut harness),
        "fig9" => fig9(&mut harness),
        "tab1" => tab1(&mut harness),
        "tab2" => tab2(&mut harness),
        "obs" => obs(&mut harness),
        "factors" => factors(&mut harness),
        "prov" => prov(&mut harness),
        "sweep" => sweep(&mut harness),
        "calib" => calib(&mut harness),
        "models" => models(&mut harness),
        "segments" => segments(&mut harness),
        "all" => {
            fig1(&mut harness);
            fig2(&mut harness);
            fig3(&mut harness);
            fig5(&mut harness);
            fig6(&mut harness);
            fig7(&mut harness);
            fig8(&mut harness);
            fig9(&mut harness);
            tab1(&mut harness);
            tab2(&mut harness);
            obs(&mut harness);
            factors(&mut harness);
            prov(&mut harness);
            sweep(&mut harness);
            calib(&mut harness);
            models(&mut harness);
            segments(&mut harness);
        }
        other => {
            obs::error!("repro", "unknown experiment id {other}");
            std::process::exit(2);
        }
    }

    bench::finish_trace(&registry, "repro", &artifact_dir);
}

struct CurveArtifact {
    label: String,
    n: usize,
    points: Vec<(f64, f64)>,
}

impl ToJson for CurveArtifact {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.to_json_value()),
            ("n", self.n.to_json_value()),
            ("points", self.points.to_json_value()),
        ])
    }
}

fn km_points(
    census: &Census<'_>,
    min_days: f64,
    pred: impl FnMut(&telemetry::DatabaseRecord) -> bool,
) -> (usize, Vec<(f64, f64)>) {
    let pairs = census.survival_pairs_where(min_days, pred);
    let km = KaplanMeier::fit(&SurvivalData::from_pairs(&pairs));
    (pairs.len(), km.sample_curve(150.0, 76))
}

/// Figure 1: whole-population KM curve, Region-1, 2-day minimum.
fn fig1(h: &mut Harness) {
    println!("\n================ Figure 1: Kaplan-Meier survival curve (singleton, 2-day minimum, Region-1)\n");
    let census = h.study().census(RegionId::Region1);
    let (n, points) = km_points(&census, 2.0, |_| true);
    println!("{}", ascii_km_chart(&[("all databases", &points)], 76, 16));
    println!("  n = {n}");
    for &t in &[10.0, 30.0, 60.0, 90.0, 110.0, 120.0, 125.0, 130.0, 150.0] {
        let s = points
            .iter()
            .take_while(|(pt, _)| *pt <= t)
            .last()
            .map(|(_, s)| *s)
            .unwrap_or(1.0);
        println!("  S({t:>5.0}) = {s:.3}");
    }
    println!("\n  paper shape: decays to a plateau ~0.4 by day 130 with a drop near day 120");
    h.write_artifact(
        "fig1",
        &CurveArtifact {
            label: "region1-all".into(),
            n,
            points,
        },
    );
}

/// Figure 2: KM curves of one subgroup split by predicted class.
fn fig2(h: &mut Harness) {
    println!(
        "\n================ Figure 2: KM curves of predicted groupings (Region-1, Standard)\n"
    );
    let result = h
        .subgroup(RegionId::Region1, Some(Edition::Standard))
        .clone();
    let g = &result.whole_grouping;
    println!(
        "{}",
        ascii_km_series(&[&g.long_curve, &g.short_curve], 76, 16)
    );
    println!(
        "  ideal: orange (predicted <= 30d, n = {}) dies by day 30; blue (predicted > 30d, n = {}) stays at 1.0 until day 30",
        g.short_curve.n, g.long_curve.n
    );
    println!("  log-rank p = {}", p_value_cell(g.logrank_p));
    h.write_artifact("fig2", g);
}

/// Figure 3: KM per edition × always/changed, three regions.
fn fig3(h: &mut Harness) {
    println!(
        "\n================ Figure 3: KM curves by edition, sub-categorized by edition change\n"
    );
    let mut artifact: BTreeMap<String, Vec<CurveArtifact>> = BTreeMap::new();
    for region in RegionId::ALL {
        let census = h.study().census(region);
        println!("--- {region}");
        let mut curves = Vec::new();
        for edition in Edition::ALL {
            let (n_a, always) = km_points(&census, 2.0, |db| {
                db.creation_edition() == edition && !db.changed_edition()
            });
            let (n_c, changed) = km_points(&census, 2.0, |db| {
                db.creation_edition() == edition && db.changed_edition()
            });
            let s60 = |pts: &[(f64, f64)]| {
                pts.iter()
                    .take_while(|(t, _)| *t <= 60.0)
                    .last()
                    .map(|(_, s)| *s)
                    .unwrap_or(1.0)
            };
            println!(
                "  {edition:<8} always: n = {n_a:>6}, S(60) = {:.3}   changed: n = {n_c:>5}, S(60) = {:.3}",
                s60(&always),
                s60(&changed)
            );
            curves.push(CurveArtifact {
                label: format!("{edition}-always"),
                n: n_a,
                points: always,
            });
            curves.push(CurveArtifact {
                label: format!("{edition}-changed"),
                n: n_c,
                points: changed,
            });
        }
        // One chart per region: the three "always" curves.
        let chart_curves: Vec<(&str, &[(f64, f64)])> = curves
            .iter()
            .filter(|c| c.label.ends_with("always"))
            .map(|c| (c.label.as_str(), c.points.as_slice()))
            .collect();
        println!("{}", ascii_km_chart(&chart_curves, 76, 14));
        artifact.insert(region.to_string(), curves);
    }
    println!("  paper shape: Basic decays slowest, Premium fastest (Obs 3.2); 'changed' differs from 'always'");
    h.write_artifact("fig3", &artifact);
}

/// Figure 5: accuracy/precision/recall, forest vs baseline, 9 panels.
fn fig5(h: &mut Harness) {
    println!("\n================ Figure 5: whole-population prediction scores (forest vs weighted-random baseline)\n");
    let panels = h.nine_panels();
    for r in &panels {
        println!("{}", subgroup_block(r));
    }
    println!("  paper averages: Basic .81/.83/.92 (baseline .56/.68/.68), Standard .81/.79/.88 (.51/.55/.56), Premium .80/.75/.66 (.55/.35/.35)");
    // Edition-level means, as the paper reports them.
    for edition in Edition::ALL {
        let subset: Vec<_> = panels
            .iter()
            .filter(|r| r.edition == edition.to_string())
            .collect();
        let mean = |f: &dyn Fn(&survdb::experiment::SubgroupResult) -> f64| {
            subset.iter().map(|r| f(r)).sum::<f64>() / subset.len() as f64
        };
        println!(
            "  {edition:<8} mean: forest acc {:.2} prec {:.2} rec {:.2} | baseline acc {:.2} prec {:.2} rec {:.2}",
            mean(&|r| r.forest.accuracy),
            mean(&|r| r.forest.precision),
            mean(&|r| r.forest.recall),
            mean(&|r| r.baseline.accuracy),
            mean(&|r| r.baseline.precision),
            mean(&|r| r.baseline.recall),
        );
    }
    h.write_artifact("fig5", &panels);
}

/// Figure 6: KM curves of whole-population predicted groupings.
fn fig6(h: &mut Harness) {
    println!("\n================ Figure 6: KM curves for whole-population classified groupings\n");
    let panels = h.nine_panels();
    for r in &panels {
        let g = &r.whole_grouping;
        println!(
            "--- {} / {}: log-rank p = {} (baseline grouping p = {})",
            r.region,
            r.edition,
            p_value_cell(g.logrank_p),
            p_value_cell(r.baseline_grouping.logrank_p)
        );
        println!(
            "{}",
            ascii_km_series(&[&g.long_curve, &g.short_curve], 66, 11)
        );
    }
    println!("  paper: all forest groupings p < 1e-7; baseline groupings p > 0.05");
    let artifact: Vec<_> = panels
        .iter()
        .map(|r| {
            (
                r.region.clone(),
                r.edition.clone(),
                r.whole_grouping.clone(),
            )
        })
        .collect();
    h.write_artifact("fig6", &artifact);
}

/// Figure 7: confident/uncertain score partition.
fn fig7(h: &mut Harness) {
    println!("\n================ Figure 7: scores with confident / uncertain partitioning\n");
    let panels = h.nine_panels();
    for r in &panels {
        println!(
            "--- {} / {} (t = {:.3}, coverage {:.0}%)",
            r.region,
            r.edition,
            r.confidence_threshold,
            r.confident_fraction * 100.0
        );
        println!("{}", score_row("  all (forest)", &r.forest));
        println!("{}", score_row("  confident", &r.confident));
        println!("{}", score_row("  uncertain", &r.uncertain));
        println!("{}", score_row("  baseline", &r.baseline));
    }
    println!("\n  paper: confident predictions reach ~0.92 accuracy in best cases; Standard gains least (balanced classes => low threshold)");
    h.write_artifact("fig7", &panels);
}

/// Figure 8: KM curves of confident groupings.
fn fig8(h: &mut Harness) {
    println!("\n================ Figure 8: KM curves for confident classified groupings\n");
    let panels = h.nine_panels();
    for r in &panels {
        let g = &r.confident_grouping;
        println!(
            "--- {} / {}: log-rank p = {}",
            r.region,
            r.edition,
            p_value_cell(g.logrank_p)
        );
        println!(
            "{}",
            ascii_km_series(&[&g.long_curve, &g.short_curve], 66, 11)
        );
    }
    println!("  paper: confident groupings separate cleanly, p < 1e-7");
    let artifact: Vec<_> = panels
        .iter()
        .map(|r| {
            (
                r.region.clone(),
                r.edition.clone(),
                r.confident_grouping.clone(),
            )
        })
        .collect();
    h.write_artifact("fig8", &artifact);
}

/// Figure 9: KM curves of uncertain groupings.
fn fig9(h: &mut Harness) {
    println!("\n================ Figure 9: KM curves for uncertain classified groupings\n");
    let panels = h.nine_panels();
    for r in &panels {
        let g = &r.uncertain_grouping;
        println!(
            "--- {} / {}: log-rank p = {}",
            r.region,
            r.edition,
            p_value_cell(g.logrank_p)
        );
        println!(
            "{}",
            ascii_km_series(&[&g.long_curve, &g.short_curve], 66, 11)
        );
    }
    println!("  paper: uncertain groupings' curves sit close together; separation often insignificant (Table 2)");
    let artifact: Vec<_> = panels
        .iter()
        .map(|r| {
            (
                r.region.clone(),
                r.edition.clone(),
                r.uncertain_grouping.clone(),
            )
        })
        .collect();
    h.write_artifact("fig9", &artifact);
}

/// Table 1: percentage of confident vs uncertain predictions.
fn tab1(h: &mut Harness) {
    println!("\n================ Table 1: percentage of confident and uncertain predictions\n");
    println!(
        "  {:<10} {:<10} {:>10} {:>10}",
        "Edition", "Region", "Confident", "Uncertain"
    );
    let panels = h.nine_panels();
    let mut artifact = Vec::new();
    for r in &panels {
        println!(
            "  {:<10} {:<10} {:>9.0}% {:>9.0}%",
            r.edition,
            r.region,
            r.confident_fraction * 100.0,
            (1.0 - r.confident_fraction) * 100.0
        );
        artifact.push((r.edition.clone(), r.region.clone(), r.confident_fraction));
    }
    println!("\n  paper: Basic 58-68% confident, Standard 82-97%, Premium 69-73%");
    h.write_artifact("tab1", &artifact);
}

/// Table 2: log-rank p-values over uncertain groupings.
fn tab2(h: &mut Harness) {
    println!("\n================ Table 2: p-values of log-rank tests over uncertain classified groupings\n");
    println!("  {:<10} {:<10} {:>12}", "Edition", "Region", "P-value");
    let panels = h.nine_panels();
    let mut artifact = Vec::new();
    for r in &panels {
        println!(
            "  {:<10} {:<10} {:>12}",
            r.edition,
            r.region,
            p_value_cell(r.uncertain_grouping.logrank_p)
        );
        artifact.push((
            r.edition.clone(),
            r.region.clone(),
            r.uncertain_grouping.logrank_p,
        ));
    }
    println!("\n  paper: Basic < 1e-7 everywhere; Standard R1 0.93 / R2 0.01 / R3 0.38; Premium R1 0.005 / R2 0.008 / R3 0.37");
    h.write_artifact("tab2", &artifact);
}

/// Observations 3.1-3.3.
fn obs(h: &mut Harness) {
    println!("\n================ Observations 3.1-3.3\n");
    let mut artifact = Vec::new();
    for region in RegionId::ALL {
        let census = h.study().census(region);
        let report = ObservationReport::compute(&census);
        println!("--- {region}");
        println!(
            "  3.1: {:.1}% of subscriptions create only ephemeral databases, owning {:.1}% of all databases",
            report.ephemeral_only_subscription_share * 100.0,
            report.ephemeral_only_database_share * 100.0
        );
        println!(
            "  3.2: per-edition survival differs (k-sample log-rank p = {}):",
            p_value_cell(report.edition_logrank_p)
        );
        for e in &report.edition_survival {
            println!(
                "       {:<8} n = {:>6}  S(30) = {:.3}  S(60) = {:.3}  S(120) = {:.3}   always/changed S(60): {:.3} / {:.3}",
                e.edition, e.n, e.s30, e.s60, e.s120, e.always_s60, e.changed_s60
            );
        }
        println!("  3.3: edition-change rates:");
        for (edition, rate) in &report.edition_change_rates {
            println!("       {edition:<8} {:.1}%", rate * 100.0);
        }
        println!("  all observations hold: {}", report.all_hold());
        artifact.push(report);
    }
    h.write_artifact("obs", &artifact);
}

/// Feature-family bucket for §5.4 aggregation.
fn family(name: &str) -> &'static str {
    if name.starts_with("hist_") {
        "subscription-history"
    } else if name.starts_with("sub_type") {
        "subscription-type"
    } else if name.starts_with("server_") || name.starts_with("db_") {
        "names"
    } else if name.starts_with("created_") {
        "creation-time"
    } else if name.starts_with("size_") {
        "size"
    } else if name.starts_with("util_") {
        "utilization"
    } else {
        "edition/slo"
    }
}

fn ranked_to_owned(pairs: &[(String, f64)]) -> Vec<(String, f64)> {
    pairs.to_vec()
}

/// The family with the largest summed importance.
fn ranked_family_top(pairs: &[(String, f64)]) -> String {
    let mut families: BTreeMap<&str, f64> = BTreeMap::new();
    for (name, importance) in pairs {
        *families.entry(family(name)).or_insert(0.0) += importance;
    }
    families
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|(f, _)| f.to_string())
        .unwrap_or_default()
}

/// §5.4: feature-importance ranking and the n-gram ablation.
fn factors(h: &mut Harness) {
    println!("\n================ §5.4: predictive factors (gini importance) and n-gram ablation\n");
    let result = h
        .subgroup(RegionId::Region1, Some(Edition::Standard))
        .clone();
    println!("--- top 15 features (Region-1 / Standard):");
    for (name, importance) in result.importances.iter().take(15) {
        println!("  {name:<28} {importance:.4}");
    }

    // Family-level aggregation, the paper's actual claim.
    let mut families: BTreeMap<&str, f64> = BTreeMap::new();
    for (name, importance) in &result.importances {
        *families.entry(family(name)).or_insert(0.0) += importance;
    }
    let mut ranked: Vec<(&str, f64)> = families.into_iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("\n--- feature-family importance:");
    for (fam, importance) in &ranked {
        println!("  {fam:<24} {importance:.4}");
    }
    println!("\n  paper ranking: subscription-history > names > creation-time");

    // N-gram ablation: same subgroup, with character-3-gram features.
    // Permutation-importance cross-check: gini importance is biased
    // toward high-cardinality features; if both measures agree on the
    // family ranking, the §5.4 conclusion is robust.
    println!("\n--- permutation-importance cross-check (held-out, Region-1 / Standard):");
    {
        let study = h.study().clone();
        let census = study.census(RegionId::Region1);
        let extractor =
            features::FeatureExtractor::new(&census, features::FeatureConfig::default());
        let (dataset, _) = extractor.build_dataset(&census, Some(Edition::Standard));
        let (train, test) = forest::train_test_split(&dataset, 0.3, h.options().seed);
        let model = forest::RandomForest::fit(
            &train,
            &forest::RandomForestParams::default(),
            h.options().seed,
        );
        let ranked = forest::ranked_permutation_importance(&model, &test, 3, h.options().seed);
        let mut perm_families: BTreeMap<&str, f64> = BTreeMap::new();
        for (name, importance) in &ranked {
            *perm_families.entry(family(name)).or_insert(0.0) += importance.max(0.0);
        }
        let mut perm_ranked: Vec<(&str, f64)> = perm_families.into_iter().collect();
        perm_ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        for (fam, importance) in &perm_ranked {
            println!("  {fam:<24} {importance:.4}");
        }
        let gini_top = ranked_family_top(&ranked_to_owned(&result.importances));
        let perm_top = perm_ranked
            .first()
            .map(|(f, _)| f.to_string())
            .unwrap_or_default();
        println!(
            "  top family by gini: {gini_top}; by permutation: {perm_top}{}",
            if gini_top == perm_top {
                "  (agreement)"
            } else {
                ""
            }
        );
    }

    println!("\n--- n-gram ablation (Region-1 / Standard):");
    let census = h.study().census(RegionId::Region1);
    let config = ExperimentConfig {
        repetitions: h.options().repetitions.min(3),
        grid: GridPreset::Off,
        seed: h.options().seed,
        ngrams: Some((3, 30)),
        ..ExperimentConfig::default()
    };
    let with_ngrams = Experiment::new(config).run(&census, Some(Edition::Standard));
    println!(
        "  without n-grams: acc {:.3}   with n-grams: acc {:.3}",
        result.forest.accuracy, with_ngrams.forest.accuracy
    );
    println!("  paper: \"we did not see any improvement in accuracy when using features based on n-grams\"");

    // What would the withheld utilization telemetry add? (The paper's
    // §4.2 feature list excludes it for business/privacy reasons.)
    println!("\n--- utilization-feature ablation (Region-1 / Standard, extension):");
    let config = ExperimentConfig {
        repetitions: h.options().repetitions.min(3),
        grid: GridPreset::Off,
        seed: h.options().seed,
        include_utilization: true,
        ..ExperimentConfig::default()
    };
    let with_util = Experiment::new(config).run(&census, Some(Edition::Standard));
    println!(
        "  paper feature set: acc {:.3}   + utilization features: acc {:.3}",
        result.forest.accuracy, with_util.forest.accuracy
    );

    struct FactorsArtifact {
        importances: Vec<(String, f64)>,
        families: Vec<(String, f64)>,
        accuracy_without_ngrams: f64,
        accuracy_with_ngrams: f64,
    }
    impl ToJson for FactorsArtifact {
        fn to_json_value(&self) -> Json {
            Json::obj(vec![
                ("importances", self.importances.to_json_value()),
                ("families", self.families.to_json_value()),
                (
                    "accuracy_without_ngrams",
                    self.accuracy_without_ngrams.to_json_value(),
                ),
                (
                    "accuracy_with_ngrams",
                    self.accuracy_with_ngrams.to_json_value(),
                ),
            ])
        }
    }
    h.write_artifact(
        "factors",
        &FactorsArtifact {
            importances: result.importances.clone(),
            families: ranked.iter().map(|(f, v)| (f.to_string(), *v)).collect(),
            accuracy_without_ngrams: result.forest.accuracy,
            accuracy_with_ngrams: with_ngrams.forest.accuracy,
        },
    );
}

/// §3.1: longevity-guided provisioning simulation.
fn prov(h: &mut Harness) {
    println!("\n================ §3.1: longevity-guided resource provisioning\n");
    // Train on Region-2, deploy the policy on Region-1 predictions.
    let result = h.subgroup(RegionId::Region1, None).clone();
    let threshold = result.confidence_threshold;

    // Out-of-sample predictions: retrain on the full Region-1
    // population is what the cached experiment already did; here we use
    // the census + a fresh model to bucket every placeable database.
    let study = h.study().clone();
    let census = study.census(RegionId::Region1);
    let extractor = features::FeatureExtractor::new(&census, features::FeatureConfig::default());
    let (dataset, _) = extractor.build_dataset(&census, None);
    let model = forest::RandomForest::fit(
        &dataset,
        &forest::RandomForestParams::default(),
        h.options().seed,
    );
    let population = census.prediction_population(2.0);
    let predictions: std::collections::HashMap<usize, PredictedLongevity> = population
        .iter()
        .map(|&idx| {
            let db = &census.fleet().databases[idx];
            let p = model.predict_positive_proba(&extractor.extract(&census, db));
            (idx, PredictedLongevity::from_probability(p, threshold))
        })
        .collect();

    // Oracle predictions (ground truth) bound the achievable benefit.
    let oracle: std::collections::HashMap<usize, PredictedLongevity> = population
        .iter()
        .map(|&idx| {
            let db = &census.fleet().databases[idx];
            let pred = if census.is_long_lived(db) {
                PredictedLongevity::Long
            } else {
                PredictedLongevity::Short
            };
            (idx, pred)
        })
        .collect();

    let config = ProvisioningConfig::default();
    let agnostic = simulate(&census, &predictions, PlacementPolicy::Agnostic, &config);
    let guided = simulate(
        &census,
        &predictions,
        PlacementPolicy::LongevityGuided,
        &config,
    );
    let guided_oracle = simulate(&census, &oracle, PlacementPolicy::LongevityGuided, &config);

    let row = |o: &ProvisioningOutcome| {
        format!(
            "placed {:>6}  clusters {:>4}  disruptions {:>6} (wasted {:>5})  moves {:>5} (wasted {:>4})",
            o.placed, o.clusters_opened, o.disruptions, o.wasted_disruptions, o.moves, o.wasted_moves
        )
    };
    println!("  agnostic       : {}", row(&agnostic));
    println!("  guided (model) : {}", row(&guided));
    println!("  guided (oracle): {}", row(&guided_oracle));
    let saved = |a: usize, g: usize| {
        if a == 0 {
            0.0
        } else {
            100.0 * (a as f64 - g as f64) / a as f64
        }
    };
    println!(
        "\n  guided policy avoids {:.0}% of wasted update disruptions and {:.0}% of wasted load-balancer moves",
        saved(agnostic.wasted_disruptions, guided.wasted_disruptions),
        saved(agnostic.wasted_moves, guided.wasted_moves)
    );
    println!("  (the oracle row is the upper bound a perfect classifier would reach)");
    h.write_artifact("prov", &vec![agnostic, guided, guided_oracle]);
}

/// Extension (§5.1: "We also experimented with different values for x
/// and y"): a sweep over the observation prefix `x` and the class
/// boundary `y` on the Region-1 whole population.
fn sweep(h: &mut Harness) {
    println!("\n================ x/y sweep: accuracy of the (x, y) prediction task (Region-1, whole population)\n");
    let study = h.study().clone();
    let census = study.census(RegionId::Region1);
    let reps = h.options().repetitions.min(3);
    let seed = h.options().seed;

    struct SweepPoint {
        x_days: f64,
        y_days: f64,
        population: usize,
        positive_fraction: f64,
        forest_accuracy: f64,
        baseline_accuracy: f64,
    }
    impl ToJson for SweepPoint {
        fn to_json_value(&self) -> Json {
            Json::obj(vec![
                ("x_days", self.x_days.to_json_value()),
                ("y_days", self.y_days.to_json_value()),
                ("population", self.population.to_json_value()),
                ("positive_fraction", self.positive_fraction.to_json_value()),
                ("forest_accuracy", self.forest_accuracy.to_json_value()),
                ("baseline_accuracy", self.baseline_accuracy.to_json_value()),
            ])
        }
    }
    let mut artifact: Vec<SweepPoint> = Vec::new();

    println!(
        "  {:>6} {:>6} {:>8} {:>6} {:>12} {:>12}",
        "x", "y", "n", "q", "forest acc", "baseline acc"
    );
    for &(x, y) in &[
        (1.0, 30.0),
        (2.0, 30.0),
        (4.0, 30.0),
        (7.0, 30.0),
        (2.0, 14.0),
        (2.0, 60.0),
    ] {
        let config = ExperimentConfig {
            x_days: x,
            y_days: y,
            repetitions: reps,
            grid: GridPreset::Off,
            seed,
            ..ExperimentConfig::default()
        };
        let result = Experiment::new(config).run(&census, None);
        println!(
            "  {x:>6.0} {y:>6.0} {:>8} {:>6.3} {:>12.3} {:>12.3}",
            result.population,
            result.positive_fraction,
            result.forest.accuracy,
            result.baseline.accuracy
        );
        artifact.push(SweepPoint {
            x_days: x,
            y_days: y,
            population: result.population,
            positive_fraction: result.positive_fraction,
            forest_accuracy: result.forest.accuracy,
            baseline_accuracy: result.baseline.accuracy,
        });
    }
    println!("\n  expectation: longer observation prefixes (x) help; very early boundaries (y = 14) are easier than y = 30");

    // Window-length sensitivity (extension): how much of the study
    // depends on the five-month trace? Shorter windows censor more of
    // the population (smaller labeled share, no visible 120-day cliff).
    println!("\n--- observation-window sensitivity (Region-1):");
    println!(
        "  {:>8} {:>9} {:>9} {:>8} {:>8}",
        "window", "dbs", "labeled", "q", "S(cliff)"
    );
    struct WindowPoint {
        window_days: u32,
        databases: usize,
        labeled: usize,
        positive_fraction: f64,
        survival_at_130: f64,
    }
    impl ToJson for WindowPoint {
        fn to_json_value(&self) -> Json {
            Json::obj(vec![
                ("window_days", self.window_days.to_json_value()),
                ("databases", self.databases.to_json_value()),
                ("labeled", self.labeled.to_json_value()),
                ("positive_fraction", self.positive_fraction.to_json_value()),
                ("survival_at_130", self.survival_at_130.to_json_value()),
            ])
        }
    }
    let mut window_artifact = Vec::new();
    for &window_days in &[92u32, 153, 214] {
        let mut region = telemetry::RegionConfig::region_1().scaled(h.options().scale);
        region.window_days = window_days;
        let fleet =
            telemetry::Fleet::generate(telemetry::FleetConfig::new(region, h.options().seed));
        let census = telemetry::Census::new(&fleet);
        let labeled = census.prediction_population(2.0);
        let positives = labeled
            .iter()
            .filter(|&&i| census.is_long_lived(&fleet.databases[i]))
            .count();
        let q = positives as f64 / labeled.len().max(1) as f64;
        let km = survival::KaplanMeier::fit(&survival::SurvivalData::from_pairs(
            &census.survival_pairs(2.0),
        ));
        let s130 = km.survival_at(130.0);
        println!(
            "  {window_days:>7}d {:>9} {:>9} {q:>8.3} {s130:>8.3}",
            census.study_population_size(),
            labeled.len()
        );
        window_artifact.push(WindowPoint {
            window_days,
            databases: census.study_population_size(),
            labeled: labeled.len(),
            positive_fraction: q,
            survival_at_130: s130,
        });
    }
    println!("  a 3-month window cannot see the ~120-day incentive cliff at all (S(130) stays near its last observed level)");
    h.write_artifact("sweep_window", &window_artifact);
    h.write_artifact("sweep", &artifact);
}

/// Extension: are the forest's probabilities calibrated enough to act
/// as confidence levels (§5.3's premise)? Reliability diagram + Brier
/// score on a held-out set.
fn calib(h: &mut Harness) {
    println!(
        "\n================ probability calibration of the forest (Region-1, whole population)\n"
    );
    let study = h.study().clone();
    let census = study.census(RegionId::Region1);
    let extractor = features::FeatureExtractor::new(&census, features::FeatureConfig::default());
    let (dataset, _) = extractor.build_dataset(&census, None);
    let (train, test) = forest::train_test_split(&dataset, 0.25, h.options().seed);
    let model = forest::RandomForest::fit(
        &train,
        &forest::RandomForestParams::default(),
        h.options().seed,
    );
    let probs: Vec<f64> = (0..test.len())
        .map(|i| model.predict_positive_proba_row(&test, i))
        .collect();
    let labels: Vec<usize> = (0..test.len()).map(|i| test.label(i)).collect();
    let diagram = forest::ReliabilityDiagram::build(&probs, &labels, 10);

    println!(
        "  {:>10} {:>10} {:>10} {:>8}",
        "bin", "predicted", "observed", "count"
    );
    for bin in diagram.bins() {
        if bin.count == 0 {
            continue;
        }
        println!(
            "  {:>4.1}-{:<4.1} {:>10.3} {:>10.3} {:>8}",
            bin.lo,
            bin.lo + 0.1,
            bin.mean_predicted,
            bin.observed_frequency,
            bin.count
        );
    }
    println!(
        "\n  Brier score {:.4} (0.25 = uninformative constant 0.5); expected calibration error {:.4}",
        diagram.brier_score(),
        diagram.expected_calibration_error()
    );
    println!("  paper premise (§5.3, citing Zadrozny & Elkan): forest probabilities are usable as confidence levels without recalibration");

    struct CalibArtifact {
        brier: f64,
        ece: f64,
        bins: Vec<(f64, f64, f64, usize)>,
    }
    impl ToJson for CalibArtifact {
        fn to_json_value(&self) -> Json {
            Json::obj(vec![
                ("brier", self.brier.to_json_value()),
                ("ece", self.ece.to_json_value()),
                ("bins", self.bins.to_json_value()),
            ])
        }
    }
    h.write_artifact(
        "calib",
        &CalibArtifact {
            brier: diagram.brier_score(),
            ece: diagram.expected_calibration_error(),
            bins: diagram
                .bins()
                .iter()
                .map(|b| (b.lo, b.mean_predicted, b.observed_frequency, b.count))
                .collect(),
        },
    );
}

/// Extension: model-family comparison the paper deliberately skipped
/// (§6: "The goal of our work was not to compare different
/// approaches"). Random forest vs gradient boosting vs a single tree vs
/// the weighted-random baseline, on one held-out split.
fn models(h: &mut Harness) {
    println!(
        "\n================ model-family comparison (Region-1, whole population, extension)\n"
    );
    let study = h.study().clone();
    let census = study.census(RegionId::Region1);
    let extractor = features::FeatureExtractor::new(&census, features::FeatureConfig::default());
    let (dataset, _) = extractor.build_dataset(&census, None);
    let (train, test) = forest::train_test_split(&dataset, 0.25, h.options().seed);
    let actual: Vec<usize> = (0..test.len()).map(|i| test.label(i)).collect();
    let seed = h.options().seed;

    let score = |preds: &[usize], probs: Option<&[f64]>| {
        let m = forest::ConfusionMatrix::from_predictions(preds, &actual);
        let auc = probs.map(|p| forest::roc_auc(p, &actual));
        (m.scores(), auc)
    };

    struct ModelRow {
        model: String,
        accuracy: f64,
        precision: f64,
        recall: f64,
        auc: Option<f64>,
    }
    impl ToJson for ModelRow {
        fn to_json_value(&self) -> Json {
            Json::obj(vec![
                ("model", self.model.to_json_value()),
                ("accuracy", self.accuracy.to_json_value()),
                ("precision", self.precision.to_json_value()),
                ("recall", self.recall.to_json_value()),
                ("auc", self.auc.to_json_value()),
            ])
        }
    }
    let mut artifact: Vec<ModelRow> = Vec::new();
    let mut report = |name: &str, scores: forest::ClassificationScores, auc: Option<f64>| {
        println!(
            "  {name:<18} acc {:.3}  prec {:.3}  rec {:.3}  auc {}",
            scores.accuracy,
            scores.precision,
            scores.recall,
            auc.map_or("   -".to_string(), |a| format!("{a:.3}")),
        );
        artifact.push(ModelRow {
            model: name.to_string(),
            accuracy: scores.accuracy,
            precision: scores.precision,
            recall: scores.recall,
            auc,
        });
    };

    // Random forest.
    let rf = forest::RandomForest::fit(&train, &forest::RandomForestParams::default(), seed);
    let rf_probs: Vec<f64> = (0..test.len())
        .map(|i| rf.predict_positive_proba_row(&test, i))
        .collect();
    let rf_preds: Vec<usize> = rf_probs.iter().map(|&p| (p > 0.5) as usize).collect();
    let (s, auc) = score(&rf_preds, Some(&rf_probs));
    report("random forest", s, auc);

    // Gradient boosting.
    let gbm = forest::GradientBoosting::fit(&train, &forest::GbmParams::default(), seed);
    let gbm_probs: Vec<f64> = (0..test.len())
        .map(|i| gbm.predict_positive_proba(&test.row(i)))
        .collect();
    let gbm_preds: Vec<usize> = gbm_probs.iter().map(|&p| (p > 0.5) as usize).collect();
    let (s, auc) = score(&gbm_preds, Some(&gbm_probs));
    report("gradient boosting", s, auc);

    // Single CART tree (the ensemble ablated to one member).
    let single = forest::RandomForestParams {
        n_trees: 1,
        bootstrap: false,
        max_features: forest::MaxFeatures::All,
        ..forest::RandomForestParams::default()
    };
    let tree = forest::RandomForest::fit(&train, &single, seed);
    let tree_preds: Vec<usize> = (0..test.len())
        .map(|i| tree.predict_row(&test, i))
        .collect();
    let (s, _) = score(&tree_preds, None);
    report("single tree", s, None);

    // Weighted-random baseline.
    let baseline = forest::WeightedRandomClassifier::fit(&train);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let baseline_preds = baseline.predict_many(test.len(), &mut rng);
    let (s, _) = score(&baseline_preds, None);
    report("weighted random", s, None);

    println!("\n  expectation: both ensembles land close together, well above a single tree and the baseline");
    h.write_artifact("models", &artifact);
}

/// §7's actionable conclusion: segment subscriptions from their first
/// half-window of history and validate the segments on the second half.
fn segments(h: &mut Harness) {
    println!(
        "\n================ subscription segmentation (§7 conclusion, out-of-time validated)\n"
    );
    use survdb::segments::{segment_report, SegmentConfig};
    let mut artifact = Vec::new();
    for region in RegionId::ALL {
        let census = h.study().census(region);
        let cutoff = census.fleet().window_start() + simtime::Duration::days(76);
        let report = segment_report(&census, cutoff, &SegmentConfig::default());
        println!("--- {region} (segments assigned at day 76 of the window)");
        let mut sizes: Vec<(&String, &usize)> = report.segment_sizes.iter().collect();
        sizes.sort_by(|a, b| b.1.cmp(a.1));
        for (segment, count) in sizes {
            println!("  {segment:<18} {count:>6} subscriptions");
        }
        println!(
            "  out-of-time: {} post-cutoff databases; naive segment rule accuracy {}; cycler precision {}",
            report.evaluated,
            report
                .out_of_time_accuracy
                .map_or("-".into(), |a| format!("{a:.3}")),
            report
                .cycler_precision
                .map_or("-".into(), |p| format!("{p:.3}")),
        );
        artifact.push(report);
    }
    println!("\n  paper: \"by simply looking at historical data, we can identify customers that follow this pattern\" (Obs 3.1 / §7)");
    h.write_artifact("segments", &artifact);
}
