//! `scored` — loads (or trains and saves) a `survdb-model/v1` forest,
//! streams feature rows through the batched scoring engine, and writes
//! `artifacts/scoring.json`.
//!
//! ```text
//! cargo run -p bench --release --bin scored -- [flags]
//!
//! flags: --scale F      population scale for the scoring fleet (default 0.25)
//!        --seed N       master seed (default 2018)
//!        --out DIR      artifact directory (default artifacts/)
//!        --model PATH   load an existing model instead of training one
//!        --tune         when training, grid-search the hyper-parameters
//!                       and persist the provenance (default: single fit)
//! ```
//!
//! Without `--model`, the binary trains on the fixture fleet, saves the
//! model to `OUT/model.json`, reloads it from disk, and scores with the
//! **loaded** copy — `bench::model_source` asserts that the loaded
//! forest reproduces the in-memory predictions bitwise and that
//! save→load→save is byte-identical. The deterministic section of
//! `scoring.json` is byte-stable across thread counts; throughput
//! lives in the nondeterministic section.

use bench::model_source::{fixture_dataset, obtain_model, ModelSpec};
use serve::{score_batch_recursive, score_batch_with, ScoreBench, ScoringTiming};
use std::path::PathBuf;
use std::time::Instant;

fn rate(rows: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        rows as f64 / secs
    } else {
        0.0
    }
}

struct Options {
    scale: f64,
    seed: u64,
    out: PathBuf,
    model: Option<PathBuf>,
    tune: bool,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        scale: 0.25,
        seed: 2018,
        out: PathBuf::from("artifacts"),
        model: None,
        tune: false,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--scale" => {
                options.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                i += 2;
            }
            "--seed" => {
                options.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                i += 2;
            }
            "--out" => {
                options.out = PathBuf::from(value()?);
                i += 2;
            }
            "--model" => {
                options.model = Some(PathBuf::from(value()?));
                i += 2;
            }
            "--tune" => {
                options.tune = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(options)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("scored", "{e}");
            obs::error!(
                "scored",
                "usage: scored [--scale F] [--seed N] [--out DIR] [--model PATH] [--tune]"
            );
            std::process::exit(2);
        }
    };

    let registry = obs::Registry::with_stderr_level(obs::Level::Info);
    let _trace = registry.install();

    println!(
        "[scored] building scoring dataset (scale {}, seed {})",
        options.scale, options.seed
    );
    let data = fixture_dataset(options.scale, options.seed);

    let spec = ModelSpec {
        load_from: options.model.clone(),
        seed: options.seed,
        tune: options.tune,
        save_dir: options.out.clone(),
    };
    let model = match obtain_model(&data, &spec) {
        Ok(m) => {
            println!(
                "[scored] model ready ({} trees, {} features)",
                m.forest.tree_count(),
                m.forest.feature_names().len()
            );
            m
        }
        Err(e) => {
            obs::error!("scored", "{e}");
            std::process::exit(1);
        }
    };

    let kernel = model.kernel();
    let q = model.meta.positive_fraction;

    // Blocked kernel — the default scoring path and the artifact's
    // headline result.
    let batch = score_batch_with(&kernel, &data, q);
    let summary = batch.summary();

    // Recursive reference — the bitwise parity gate: any divergence
    // is a hard failure.
    let recursive = score_batch_recursive(&model.forest, &data, q);
    if recursive != batch {
        let mismatches = recursive
            .rows
            .iter()
            .zip(&batch.rows)
            .filter(|(a, b)| a != b)
            .count();
        obs::error!(
            "scored",
            "kernel parity FAILED: {mismatches} of {} rows differ from the recursive path",
            batch.rows.len()
        );
        std::process::exit(1);
    }

    // Branchless per-row kernel — also held to bitwise parity.
    let rows: Vec<Vec<f64>> = (0..data.len()).map(|i| data.row(i)).collect();
    let cc = kernel.class_count();
    let mut branchless_probs = vec![0.0; rows.len() * cc];
    for (i, row) in rows.iter().enumerate() {
        kernel.predict_proba_into(row, &mut branchless_probs[i * cc..(i + 1) * cc]);
    }
    for (i, scored) in batch.rows.iter().enumerate() {
        if branchless_probs[i * cc..(i + 1) * cc] != *scored.probabilities {
            obs::error!(
                "scored",
                "kernel parity FAILED: branchless path diverges at row {i}"
            );
            std::process::exit(1);
        }
    }
    println!(
        "[scored] kernel parity OK: {} rows bitwise-identical across recursive, branchless, and blocked paths",
        batch.rows.len()
    );

    // Quantized variant: opt-in elsewhere, but every vote must agree
    // with the exact kernel on the bench corpus.
    let quantized = kernel.quantize();
    let vote_flips = rows
        .iter()
        .zip(&batch.rows)
        .filter(|(row, scored)| {
            let p = quantized.predict_proba(row);
            ((p[1] > 0.5) as usize) != scored.predicted
        })
        .count();
    if vote_flips > 0 {
        obs::error!(
            "scored",
            "quantized kernel flipped {vote_flips} of {} votes on the bench corpus",
            batch.rows.len()
        );
        std::process::exit(1);
    }
    println!(
        "[scored] quantized kernel vote agreement OK ({} rows)",
        batch.rows.len()
    );

    println!();
    print!("{}", survdb::report::scoring_block(&summary));

    // Timing: per-path back-to-back best-of-N (consecutive
    // iterations, minimum kept — the steady-state discipline Criterion
    // uses). Each path is measured against its own warm cache: the
    // blocked kernel's claim *is* cache residency, so interleaving it
    // with the recursive walk's evictions would measure the
    // interleaving, not the paths. The parity-checked calls above
    // double as warmup, and results are deterministic (verified
    // bitwise once above), so the timing loops only keep the clock
    // readings.
    // Round counts scale inversely with per-round cost: the kernel
    // paths are milliseconds per round, so they take enough rounds
    // that one scheduler hiccup cannot poison the minimum.
    const FAST_ROUNDS: usize = 16;
    const RECURSIVE_ROUNDS: usize = 4;
    let mut elapsed = f64::INFINITY;
    let mut recursive_elapsed = f64::INFINITY;
    let mut branchless_elapsed = f64::INFINITY;
    for _ in 0..FAST_ROUNDS {
        let started = Instant::now();
        let timed = score_batch_with(&kernel, &data, q);
        elapsed = elapsed.min(started.elapsed().as_secs_f64());
        assert_eq!(timed.rows.len(), batch.rows.len());
    }
    for _ in 0..FAST_ROUNDS {
        let started = Instant::now();
        for (i, row) in rows.iter().enumerate() {
            kernel.predict_proba_into(row, &mut branchless_probs[i * cc..(i + 1) * cc]);
        }
        branchless_elapsed = branchless_elapsed.min(started.elapsed().as_secs_f64());
    }
    for _ in 0..RECURSIVE_ROUNDS {
        let started = Instant::now();
        let timed = score_batch_recursive(&model.forest, &data, q);
        recursive_elapsed = recursive_elapsed.min(started.elapsed().as_secs_f64());
        assert_eq!(timed.rows.len(), batch.rows.len());
    }

    let scorebench = ScoreBench {
        rows: summary.rows,
        recursive_rows_per_second: rate(summary.rows, recursive_elapsed),
        branchless_rows_per_second: rate(summary.rows, branchless_elapsed),
        blocked_rows_per_second: rate(summary.rows, elapsed),
    };
    println!(
        "\n[scored] scorebench: recursive {:.0} rows/s, branchless {:.0} rows/s ({:.2}x), blocked {:.0} rows/s ({:.2}x)",
        scorebench.recursive_rows_per_second,
        scorebench.branchless_rows_per_second,
        scorebench.branchless_speedup(),
        scorebench.blocked_rows_per_second,
        scorebench.blocked_speedup(),
    );

    let timing = ScoringTiming {
        thread_limit: forest::parallel::thread_limit(),
        elapsed_ms: elapsed * 1000.0,
        rows_per_second: rate(summary.rows, elapsed),
        scorebench,
    };
    match serve::write_scoring(&options.out, "scored", &model, &summary, &timing) {
        Ok(path) => println!("\n[scored] wrote {}", path.display()),
        Err(e) => {
            obs::error!("scored", "cannot write scoring artifact: {e}");
            std::process::exit(1);
        }
    }

    bench::finish_trace(&registry, "scored", &options.out);
}
