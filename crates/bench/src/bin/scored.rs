//! `scored` — loads (or trains and saves) a `survdb-model/v1` forest,
//! streams feature rows through the batched scoring engine, and writes
//! `artifacts/scoring.json`.
//!
//! ```text
//! cargo run -p bench --release --bin scored -- [flags]
//!
//! flags: --scale F      population scale for the scoring fleet (default 0.25)
//!        --seed N       master seed (default 2018)
//!        --out DIR      artifact directory (default artifacts/)
//!        --model PATH   load an existing model instead of training one
//!        --tune         when training, grid-search the hyper-parameters
//!                       and persist the provenance (default: single fit)
//! ```
//!
//! Without `--model`, the binary trains on the fixture fleet, saves the
//! model to `OUT/model.json`, reloads it from disk, and scores with the
//! **loaded** copy — `bench::model_source` asserts that the loaded
//! forest reproduces the in-memory predictions bitwise and that
//! save→load→save is byte-identical. The deterministic section of
//! `scoring.json` is byte-stable across thread counts; throughput
//! lives in the nondeterministic section.

use bench::model_source::{fixture_dataset, obtain_model, ModelSpec};
use serve::{score_batch, ScoringTiming};
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    scale: f64,
    seed: u64,
    out: PathBuf,
    model: Option<PathBuf>,
    tune: bool,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        scale: 0.25,
        seed: 2018,
        out: PathBuf::from("artifacts"),
        model: None,
        tune: false,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--scale" => {
                options.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                i += 2;
            }
            "--seed" => {
                options.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                i += 2;
            }
            "--out" => {
                options.out = PathBuf::from(value()?);
                i += 2;
            }
            "--model" => {
                options.model = Some(PathBuf::from(value()?));
                i += 2;
            }
            "--tune" => {
                options.tune = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(options)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("scored", "{e}");
            obs::error!(
                "scored",
                "usage: scored [--scale F] [--seed N] [--out DIR] [--model PATH] [--tune]"
            );
            std::process::exit(2);
        }
    };

    let registry = obs::Registry::with_stderr_level(obs::Level::Info);
    let _trace = registry.install();

    println!(
        "[scored] building scoring dataset (scale {}, seed {})",
        options.scale, options.seed
    );
    let data = fixture_dataset(options.scale, options.seed);

    let spec = ModelSpec {
        load_from: options.model.clone(),
        seed: options.seed,
        tune: options.tune,
        save_dir: options.out.clone(),
    };
    let model = match obtain_model(&data, &spec) {
        Ok(m) => {
            println!(
                "[scored] model ready ({} trees, {} features)",
                m.forest.tree_count(),
                m.forest.feature_names().len()
            );
            m
        }
        Err(e) => {
            obs::error!("scored", "{e}");
            std::process::exit(1);
        }
    };

    let started = Instant::now();
    let batch = score_batch(&model.forest, &data, model.meta.positive_fraction);
    let elapsed = started.elapsed().as_secs_f64();
    let summary = batch.summary();

    println!();
    print!("{}", survdb::report::scoring_block(&summary));

    let timing = ScoringTiming {
        thread_limit: forest::parallel::thread_limit(),
        elapsed_ms: elapsed * 1000.0,
        rows_per_second: if elapsed > 0.0 {
            summary.rows as f64 / elapsed
        } else {
            0.0
        },
    };
    match serve::write_scoring(&options.out, "scored", &model, &summary, &timing) {
        Ok(path) => println!("\n[scored] wrote {}", path.display()),
        Err(e) => {
            obs::error!("scored", "cannot write scoring artifact: {e}");
            std::process::exit(1);
        }
    }

    bench::finish_trace(&registry, "scored", &options.out);
}
