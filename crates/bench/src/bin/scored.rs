//! `scored` — loads (or trains and saves) a `survdb-model/v1` forest,
//! streams feature rows through the batched scoring engine, and writes
//! `artifacts/scoring.json`.
//!
//! ```text
//! cargo run -p bench --release --bin scored -- [flags]
//!
//! flags: --scale F      population scale for the scoring fleet (default 0.25)
//!        --seed N       master seed (default 2018)
//!        --out DIR      artifact directory (default artifacts/)
//!        --model PATH   load an existing model instead of training one
//!        --tune         when training, grid-search the hyper-parameters
//!                       and persist the provenance (default: single fit)
//! ```
//!
//! Without `--model`, the binary trains on the fixture fleet, saves the
//! model to `OUT/model.json`, reloads it from disk, and scores with the
//! **loaded** copy — asserting first that the loaded forest reproduces
//! the in-memory predictions bitwise and that save→load→save is
//! byte-identical. The deterministic section of `scoring.json` is
//! byte-stable across thread counts; throughput lives in the
//! nondeterministic section.

use features::{FeatureConfig, FeatureExtractor};
use forest::tree::TreeParams;
use forest::{Dataset, GridSearch, MaxFeatures, RandomForest, RandomForestParams};
use serve::{score_batch, GridProvenance, ModelMeta, SavedModel, ScoringTiming, MODEL_FILE};
use std::path::PathBuf;
use std::time::Instant;
use telemetry::{Census, Fleet, FleetConfig, RegionConfig};

struct Options {
    scale: f64,
    seed: u64,
    out: PathBuf,
    model: Option<PathBuf>,
    tune: bool,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        scale: 0.25,
        seed: 2018,
        out: PathBuf::from("artifacts"),
        model: None,
        tune: false,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--scale" => {
                options.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                i += 2;
            }
            "--seed" => {
                options.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                i += 2;
            }
            "--out" => {
                options.out = PathBuf::from(value()?);
                i += 2;
            }
            "--model" => {
                options.model = Some(PathBuf::from(value()?));
                i += 2;
            }
            "--tune" => {
                options.tune = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(options)
}

fn scoring_dataset(scale: f64, seed: u64) -> Dataset {
    let fleet = Fleet::generate(FleetConfig::new(
        RegionConfig::region_1().scaled(scale),
        seed,
    ));
    let census = Census::new(&fleet);
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    extractor.build_dataset(&census, None).0
}

fn tuning_candidates() -> Vec<RandomForestParams> {
    let mut out = Vec::new();
    for &n_trees in &[20usize, 40] {
        for &max_depth in &[8usize, 24] {
            out.push(RandomForestParams {
                n_trees,
                tree: TreeParams {
                    max_depth,
                    ..TreeParams::default()
                },
                max_features: MaxFeatures::Sqrt,
                bootstrap: true,
            });
        }
    }
    out
}

/// Trains on `data`, saves to `OUT/model.json`, reloads from disk, and
/// verifies the loaded copy against the in-memory one bitwise. Returns
/// the loaded model.
fn train_and_persist(data: &Dataset, options: &Options) -> SavedModel {
    let (params, grid) = if options.tune {
        println!(
            "[scored] tuning over {} candidates ...",
            tuning_candidates().len()
        );
        let result = GridSearch::new(tuning_candidates(), 5).run(data, options.seed);
        (
            result.best_params,
            Some(GridProvenance::from_result(&result)),
        )
    } else {
        (RandomForestParams::default(), None)
    };
    println!(
        "[scored] training {} trees on {} examples x {} features",
        params.n_trees,
        data.len(),
        data.feature_count()
    );
    let forest = RandomForest::fit(data, &params, options.seed);
    let saved = SavedModel {
        forest,
        meta: ModelMeta {
            positive_fraction: data.class_fraction(1),
            seed: options.seed,
            params,
            grid,
        },
    };

    let path = options.out.join(MODEL_FILE);
    if let Err(e) = saved.save(&path) {
        obs::error!("scored", "cannot save model to {}: {e}", path.display());
        std::process::exit(1);
    }
    let loaded = match SavedModel::load(&path) {
        Ok(m) => m,
        Err(e) => {
            obs::error!("scored", "cannot reload {}: {e}", path.display());
            std::process::exit(1);
        }
    };

    // The tentpole guarantee: persistence is lossless.
    for i in 0..data.len() {
        assert_eq!(
            loaded.forest.predict_proba_row(data, i),
            saved.forest.predict_proba_row(data, i),
            "loaded model diverged from the in-memory forest on row {i}"
        );
    }
    assert_eq!(
        loaded.render(),
        saved.render(),
        "save-load-save is not byte-identical"
    );
    println!(
        "[scored] wrote {} and verified the reload bitwise on {} rows",
        path.display(),
        data.len()
    );
    loaded
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("scored", "{e}");
            obs::error!(
                "scored",
                "usage: scored [--scale F] [--seed N] [--out DIR] [--model PATH] [--tune]"
            );
            std::process::exit(2);
        }
    };

    let registry = obs::Registry::with_stderr_level(obs::Level::Info);
    let _trace = registry.install();

    println!(
        "[scored] building scoring dataset (scale {}, seed {})",
        options.scale, options.seed
    );
    let data = scoring_dataset(options.scale, options.seed);

    let model = match &options.model {
        Some(path) => match SavedModel::load(path) {
            Ok(m) => {
                println!(
                    "[scored] loaded {} ({} trees, {} features)",
                    path.display(),
                    m.forest.tree_count(),
                    m.forest.feature_names().len()
                );
                m
            }
            Err(e) => {
                obs::error!("scored", "cannot load {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        None => train_and_persist(&data, &options),
    };

    if model.forest.feature_names() != data.feature_names() {
        obs::error!(
            "scored",
            "model was trained on a different feature schema than this fleet produces"
        );
        std::process::exit(1);
    }

    let started = Instant::now();
    let batch = score_batch(&model.forest, &data, model.meta.positive_fraction);
    let elapsed = started.elapsed().as_secs_f64();
    let summary = batch.summary();

    println!();
    print!("{}", survdb::report::scoring_block(&summary));

    let timing = ScoringTiming {
        thread_limit: forest::parallel::thread_limit(),
        elapsed_ms: elapsed * 1000.0,
        rows_per_second: if elapsed > 0.0 {
            summary.rows as f64 / elapsed
        } else {
            0.0
        },
    };
    match serve::write_scoring(&options.out, "scored", &model, &summary, &timing) {
        Ok(path) => println!("\n[scored] wrote {}", path.display()),
        Err(e) => {
            obs::error!("scored", "cannot write scoring artifact: {e}");
            std::process::exit(1);
        }
    }

    bench::finish_trace(&registry, "scored", &options.out);
}
