//! `survd` — runs the online scoring daemon against the fixture-fleet
//! model.
//!
//! ```text
//! cargo run -p bench --release --bin survd -- [flags]
//!
//! flags: --addr A:P         bind address (default 127.0.0.1:7979)
//!        --scale F          population scale for the training fleet (default 0.25)
//!        --seed N           master seed (default 2018)
//!        --model PATH       load an existing model instead of training one
//!        --tune             when training, grid-search the hyper-parameters
//!        --workers N        connection workers (default 4)
//!        --queue N          admission-queue capacity (default 128)
//!        --batch-rows N     micro-batch row threshold (default 64)
//!        --batch-wait-ms N  micro-batch flush deadline (default 2)
//!        --deadline-ms N    request deadline; admitted work older than
//!                           this sheds with 503 (default 0 = off)
//!        --out DIR          model/artifact directory (default artifacts/)
//! ```
//!
//! The daemon sources its model through `bench::model_source` (the
//! same train-or-load path as `scored`), installs an `obs::Registry`
//! that `GET /metrics` renders, and serves until stdin closes or a
//! line is entered — the container-friendly SIGTERM equivalent — then
//! drains gracefully: every admitted request is scored and answered
//! before the process exits.

use bench::model_source::{fixture_dataset, obtain_model, ModelSpec};
use std::io::BufRead;
use std::path::PathBuf;
use std::sync::Arc;
use survd::{BatchPolicy, ServerConfig};

struct Options {
    addr: String,
    scale: f64,
    seed: u64,
    model: Option<PathBuf>,
    tune: bool,
    workers: usize,
    queue: usize,
    batch_rows: usize,
    batch_wait_ms: u64,
    deadline_ms: u64,
    out: PathBuf,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7979".to_string(),
        scale: 0.25,
        seed: 2018,
        model: None,
        tune: false,
        workers: 4,
        queue: 128,
        batch_rows: 64,
        batch_wait_ms: 2,
        deadline_ms: 0,
        out: PathBuf::from("artifacts"),
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--addr" => {
                options.addr = value()?.clone();
                i += 2;
            }
            "--scale" => {
                options.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                i += 2;
            }
            "--seed" => {
                options.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                i += 2;
            }
            "--model" => {
                options.model = Some(PathBuf::from(value()?));
                i += 2;
            }
            "--tune" => {
                options.tune = true;
                i += 1;
            }
            "--workers" => {
                options.workers = value()?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                i += 2;
            }
            "--queue" => {
                options.queue = value()?.parse().map_err(|e| format!("bad --queue: {e}"))?;
                i += 2;
            }
            "--batch-rows" => {
                options.batch_rows = value()?
                    .parse()
                    .map_err(|e| format!("bad --batch-rows: {e}"))?;
                i += 2;
            }
            "--batch-wait-ms" => {
                options.batch_wait_ms = value()?
                    .parse()
                    .map_err(|e| format!("bad --batch-wait-ms: {e}"))?;
                i += 2;
            }
            "--deadline-ms" => {
                options.deadline_ms = value()?
                    .parse()
                    .map_err(|e| format!("bad --deadline-ms: {e}"))?;
                i += 2;
            }
            "--out" => {
                options.out = PathBuf::from(value()?);
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(options)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("survd", "{e}");
            obs::error!(
                "survd",
                "usage: survd [--addr A:P] [--scale F] [--seed N] [--model PATH] [--tune] \
                 [--workers N] [--queue N] [--batch-rows N] [--batch-wait-ms N] \
                 [--deadline-ms N] [--out DIR]"
            );
            std::process::exit(2);
        }
    };

    let registry = Arc::new(obs::Registry::with_stderr_level(obs::Level::Info));
    let _guard = registry.install();

    println!(
        "[survd] building training dataset (scale {}, seed {})",
        options.scale, options.seed
    );
    let data = fixture_dataset(options.scale, options.seed);
    let spec = ModelSpec {
        load_from: options.model.clone(),
        seed: options.seed,
        tune: options.tune,
        save_dir: options.out.clone(),
    };
    let model = match obtain_model(&data, &spec) {
        Ok(m) => m,
        Err(e) => {
            obs::error!("survd", "{e}");
            std::process::exit(1);
        }
    };
    println!(
        "[survd] model ready: {} trees, {} features, threshold {:.4}",
        model.forest.tree_count(),
        model.forest.feature_names().len(),
        model.threshold()
    );

    // Drift reference: the training-time score histogram from
    // scoring.json when present; otherwise an all-zero reference,
    // which still counts live scores but reports zero divergence.
    let scoring_path = options.out.join(serve::SCORING_FILE);
    let drift_reference = std::fs::read_to_string(&scoring_path)
        .ok()
        .and_then(|text| serve::training_score_histogram(&text).ok())
        .inspect(|_| {
            println!(
                "[survd] drift reference: training histogram from {}",
                scoring_path.display()
            );
        })
        .unwrap_or_else(|| {
            println!("[survd] drift reference: none found, using zero histogram");
            [0; 10]
        });

    let config = ServerConfig {
        addr: options.addr.clone(),
        workers: options.workers,
        queue_capacity: options.queue,
        batch: BatchPolicy {
            max_rows: options.batch_rows,
            max_wait_ms: options.batch_wait_ms,
        },
        request_deadline_ms: options.deadline_ms,
        drift_reference: Some(drift_reference),
        ..ServerConfig::default()
    };
    let latency_config = config.clone();
    let handle = match survd::start(model, config, Some(Arc::clone(&registry))) {
        Ok(h) => h,
        Err(e) => {
            obs::error!("survd", "cannot bind {}: {e}", options.addr);
            std::process::exit(1);
        }
    };
    println!(
        "[survd] serving on http://{} ({} workers, queue {}, batch {} rows / {} ms)",
        handle.addr(),
        options.workers,
        options.queue,
        options.batch_rows,
        options.batch_wait_ms
    );
    println!(
        "[survd] POST /score | POST /reload | GET /healthz | GET /metrics — enter (or close stdin) to drain and exit"
    );

    // Block until stdin yields a line or closes; either way, drain.
    let mut line = String::new();
    let _ = std::io::stdin().lock().read_line(&mut line);

    println!("[survd] draining ...");
    let drift_monitor = handle.drift_monitor();
    let stats = handle.shutdown();
    println!(
        "[survd] drained: {} ok, {} shed, {} unavailable, {} rows in {} batches (queue peak {})",
        stats.score_ok,
        stats.score_shed,
        stats.score_unavailable,
        stats.rows_scored,
        stats.batches,
        stats.queue_peak
    );

    // Self-reported latency artifact: only meaningful when at least
    // one request was scored (the validator refuses a zero-request
    // run). rows_per_request is 0 — request shapes vary over a
    // daemon's lifetime, so the rows identity is disabled.
    let requests_sent =
        stats.score_ok + stats.score_shed + stats.score_degraded + stats.score_unavailable;
    if stats.score_ok > 0 {
        let stage_sketches = survd::stage_sketches(&registry.snapshot());
        let drift = drift_monitor
            .expect("survd always seeds a drift reference")
            .snapshot();
        let latency_run = survd::LatencyRun {
            connections: stats.connections.max(1),
            rows_per_request: 0,
            requests_sent,
            responses_ok: stats.score_ok,
            rows_scored: stats.rows_scored,
        };
        println!();
        print!(
            "{}",
            survdb::report::latency_block(&latency_run, &stage_sketches, &drift)
        );
        match survd::write_latency(
            &options.out,
            "survd",
            &latency_config,
            &latency_run,
            &stage_sketches,
            &drift,
            &survd::ClientLatency::zero(),
        ) {
            Ok(path) => println!("[survd] wrote {}", path.display()),
            Err(e) => obs::error!("survd", "cannot write latency artifact: {e}"),
        }
    }
    bench::finish_trace(&registry, "survd", &options.out);
}
