//! `trainperf` — measures the columnar training path against the
//! frozen pre-change path and writes `artifacts/bench_training.json`.
//!
//! ```text
//! cargo run -p bench --release --bin trainperf -- [flags]
//!
//! flags: --scale F   population scale for the benchmark fleet (default 0.25)
//!        --seed N    master seed (default 2018)
//!        --out DIR   artifact directory (default artifacts/)
//! ```
//!
//! Both paths consume the same `derive_seed` chain, so before any
//! timing is reported the binary asserts they agree: identical forest
//! predictions on every row and identical grid-search scores. The JSON
//! artifact has a deterministic shape (same keys, same candidate
//! count); the timing values themselves naturally vary run to run.

use bench::legacy::{legacy_grid_search, LegacyDataset, LegacyForest};
use bench::model_source::{fixture_dataset, tuning_candidates, verify_persisted};
use forest::{cross_val_accuracy, GridSearch, RandomForest, RandomForestParams};
use std::path::PathBuf;
use std::time::Instant;
use survdb::json::{Json, ToJson};

struct Options {
    scale: f64,
    seed: u64,
    out: PathBuf,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        scale: 0.25,
        seed: 2018,
        out: PathBuf::from("artifacts"),
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--scale" => {
                options.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                options.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                options.out = PathBuf::from(value()?);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(options)
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1000.0
}

/// Repetitions per timed section; the best (minimum) time is reported,
/// for both paths alike, to damp scheduler and cache noise. The two
/// paths' repetitions are interleaved (legacy, columnar, legacy, ...)
/// so slow system phases hit both sides rather than skewing the ratio.
const REPS: usize = 4;

fn best_of_pair<A, B>(
    mut legacy: impl FnMut() -> A,
    mut columnar: impl FnMut() -> B,
) -> ((A, f64), (B, f64)) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    let (mut out_a, mut out_b) = (None, None);
    for _ in 0..REPS {
        let t = Instant::now();
        out_a = Some(legacy());
        best_a = best_a.min(ms(t));
        let t = Instant::now();
        out_b = Some(columnar());
        best_b = best_b.min(ms(t));
    }
    (
        (out_a.expect("at least one rep"), best_a),
        (out_b.expect("at least one rep"), best_b),
    )
}

fn timing(label: &str, legacy_ms: f64, new_ms: f64) -> (Json, f64) {
    let speedup = if new_ms > 0.0 {
        legacy_ms / new_ms
    } else {
        0.0
    };
    println!("  {label:<22} legacy {legacy_ms:>9.1} ms   columnar {new_ms:>9.1} ms   speedup {speedup:>5.2}x");
    (
        Json::obj(vec![
            ("legacy_ms", Json::Float(legacy_ms)),
            ("columnar_ms", Json::Float(new_ms)),
            ("speedup", Json::Float(speedup)),
        ]),
        speedup,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("trainperf", "{e}");
            obs::error!(
                "trainperf",
                "usage: trainperf [--scale F] [--seed N] [--out DIR]"
            );
            std::process::exit(2);
        }
    };

    println!(
        "[trainperf] building benchmark dataset (scale {}, seed {})",
        options.scale, options.seed
    );
    let data = fixture_dataset(options.scale, options.seed);
    let legacy_data = LegacyDataset::from_columnar(&data);
    println!(
        "[trainperf] {} examples x {} features",
        data.len(),
        data.feature_count()
    );

    // --- obs overhead -------------------------------------------------
    // Measured before this run's own trace registry is installed, so
    // the "disabled" side is the true all-probes-off fast path (one
    // relaxed atomic load per probe). Interleaved best-of-REPS on the
    // instrumented cross-validation loop, which exercises every hot
    // probe: span enters, tree-build counter flushes, fold counters.
    let params = RandomForestParams::default();
    let k = 5;
    let overhead_registry = obs::Registry::new();
    let ((acc_off, obs_off_ms), (acc_on, obs_on_ms)) = best_of_pair(
        || cross_val_accuracy(&data, &params, k, options.seed),
        || {
            let _g = overhead_registry.install();
            cross_val_accuracy(&data, &params, k, options.seed)
        },
    );
    assert_eq!(
        acc_off, acc_on,
        "obs probes changed cross-validation results"
    );
    let obs_overhead_pct = if obs_off_ms > 0.0 {
        (obs_on_ms / obs_off_ms - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "[trainperf] obs overhead on cross_val: disabled {obs_off_ms:.1} ms, \
         enabled {obs_on_ms:.1} ms ({obs_overhead_pct:+.2}%)"
    );

    // Record spans/counters for the rest of the run (the comparison
    // sections time legacy vs columnar, where both sides carry the same
    // sub-1% enabled cost).
    let registry = obs::Registry::with_stderr_level(obs::Level::Info);
    let _trace = registry.install();

    // --- forest fit ---------------------------------------------------
    let ((legacy_model, legacy_fit_ms), (model, fit_ms)) = best_of_pair(
        || LegacyForest::fit(&legacy_data, &params, options.seed),
        || RandomForest::fit(&data, &params, options.seed),
    );

    let mut mismatches = 0usize;
    for i in 0..data.len() {
        if legacy_model.predict_proba(&data.row(i)) != model.predict_proba_row(&data, i) {
            mismatches += 1;
        }
    }
    assert_eq!(
        mismatches, 0,
        "columnar forest diverged from the legacy path on {mismatches} rows"
    );
    assert_eq!(
        legacy_model.oob_accuracy(),
        model.oob_accuracy(),
        "out-of-bag accuracy diverged"
    );
    assert_eq!(
        legacy_model.feature_importances(),
        model.feature_importances(),
        "gini feature importances diverged"
    );
    println!(
        "[trainperf] forest predictions identical on all {} rows",
        data.len()
    );

    // --- grid search --------------------------------------------------
    let candidates = tuning_candidates();
    let ((legacy_grid, legacy_grid_ms), (grid, grid_ms)) = best_of_pair(
        || legacy_grid_search(&data, &legacy_data, &candidates, k, options.seed),
        || GridSearch::new(candidates.clone(), k).run(&data, options.seed),
    );

    assert_eq!(
        legacy_grid.best_score, grid.best_score,
        "grid-search best score diverged"
    );
    assert_eq!(
        candidates[legacy_grid.best_index], grid.best_params,
        "grid-search winner diverged"
    );
    let new_scores: Vec<f64> = grid.all_scores.iter().map(|(_, s)| *s).collect();
    assert_eq!(
        legacy_grid.all_scores, new_scores,
        "per-candidate CV scores diverged"
    );
    println!(
        "[trainperf] grid-search scores identical across {} candidates x {k} folds",
        candidates.len()
    );

    // --- model persistence --------------------------------------------
    // Save the fitted forest through the survdb-model/v1 format, reload
    // it from disk, and require the loaded copy to be indistinguishable
    // from the in-memory one: bitwise-equal predictions on every row,
    // the same confident/uncertain partition, and a byte-identical
    // re-render.
    let saved = serve::SavedModel::new(
        model.clone(),
        serve::ModelMeta {
            positive_fraction: data.class_fraction(1),
            seed: options.seed,
            params,
            grid: Some(serve::GridProvenance::from_result(&grid)),
        },
    );
    let model_path = options.out.join(serve::MODEL_FILE);
    if let Err(e) = saved.save(&model_path) {
        obs::error!(
            "trainperf",
            "cannot save model to {}: {e}",
            model_path.display()
        );
        std::process::exit(1);
    }
    let loaded = match serve::SavedModel::load(&model_path) {
        Ok(m) => m,
        Err(e) => {
            obs::error!("trainperf", "cannot reload {}: {e}", model_path.display());
            std::process::exit(1);
        }
    };
    let rendered_bytes = match verify_persisted(&saved, &loaded, &data) {
        Ok(bytes) => bytes,
        Err(e) => {
            obs::error!("trainperf", "{e}");
            std::process::exit(1);
        }
    };
    let q = saved.meta.positive_fraction;
    let in_memory_positives: Vec<f64> = (0..data.len())
        .map(|i| model.predict_positive_proba_row(&data, i))
        .collect();
    let loaded_positives: Vec<f64> = (0..data.len())
        .map(|i| loaded.forest.predict_positive_proba_row(&data, i))
        .collect();
    assert_eq!(
        forest::PartitionedPredictions::partition(&loaded_positives, q),
        forest::PartitionedPredictions::partition(&in_memory_positives, q),
        "confident/uncertain partition diverged after reload"
    );
    println!(
        "[trainperf] persisted model round-trips bitwise on all {} rows ({} bytes)",
        data.len(),
        rendered_bytes
    );

    println!("\n[trainperf] timings:");
    let (fit_json, _) = timing("forest fit", legacy_fit_ms, fit_ms);
    let (grid_json, grid_speedup) = timing("grid search", legacy_grid_ms, grid_ms);

    let artifact = Json::obj(vec![
        ("scale", Json::Float(options.scale)),
        ("seed", Json::UInt(options.seed)),
        ("examples", data.len().to_json_value()),
        ("features", data.feature_count().to_json_value()),
        ("grid_candidates", candidates.len().to_json_value()),
        ("cv_folds", k.to_json_value()),
        ("results_match", Json::Bool(true)),
        (
            "model_roundtrip",
            Json::obj(vec![
                ("bytes", Json::UInt(rendered_bytes as u64)),
                ("bitwise_identical", Json::Bool(true)),
            ]),
        ),
        ("forest_fit", fit_json),
        ("grid_search", grid_json),
        (
            "obs_overhead",
            Json::obj(vec![
                ("disabled_ms", Json::Float(obs_off_ms)),
                ("enabled_ms", Json::Float(obs_on_ms)),
                ("overhead_pct", Json::Float(obs_overhead_pct)),
            ]),
        ),
    ]);

    if let Err(e) = std::fs::create_dir_all(&options.out) {
        obs::error!("trainperf", "cannot create {}: {e}", options.out.display());
        std::process::exit(1);
    }
    let path = options.out.join("bench_training.json");
    if let Err(e) = std::fs::write(&path, artifact.render()) {
        obs::error!("trainperf", "write {} failed: {e}", path.display());
        std::process::exit(1);
    }
    println!("\n[trainperf] wrote {}", path.display());

    if grid_speedup < 3.0 {
        obs::warn!(
            "trainperf",
            "grid-search speedup {grid_speedup:.2}x is below the 3x acceptance bar"
        );
    }

    bench::finish_trace(&registry, "trainperf", &options.out);
}
