//! The fleet-scale artifact: `artifacts/fleet.json`.
//!
//! Layout (schema `survdb-fleet/v1`), following the two-section
//! run-trace convention:
//!
//! ```text
//! {
//!   "schema": "survdb-fleet/v1",
//!   "binary": "<emitting binary>",
//!   "deterministic": {           // byte-identical across runs, shard
//!                                // counts, and shard visit orders
//!     "scale": f64,
//!     "seed": u64,
//!     "fault_rate": f64,
//!     "chunk_subscriptions": u64,
//!     "feature_count": u64,
//!     "regions": [ { "region", "subscriptions", "generated",
//!                    "recovered", "quarantined", "vanished",
//!                    "dataset_rows", "positive_rows",
//!                    "dataset_fingerprint" } × 3 ],
//!     "totals":  { "generated", "recovered", "quarantined",
//!                  "vanished", "dataset_rows", "dataset_fingerprint" }
//!   },
//!   "nondeterministic": {        // the run's shard layout + wall clock
//!     "shard_count": u64,
//!     "visit_order": "forward" | "backward",
//!     "thread_limit": u64,
//!     "elapsed_ms": f64,
//!     "databases_per_second": f64,
//!     "rows_per_second": f64,
//!     "peak_rss_kb": u64,
//!     "shards": [ { "region", "shard", "subscriptions", "generated",
//!                   "recovered", "quarantined", "vanished", "rows" } ]
//!   }
//! }
//! ```
//!
//! The deterministic section is a pure function of
//! `(scale, seed, fault_rate, chunk_subscriptions)` — the shard count
//! and visit order are *not* inputs to it, which is the streaming
//! pipeline's core contract. CI runs `fleetbench` twice with different
//! shard layouts and byte-compares the sections. The schema check also
//! enforces the counting identity
//! `generated = recovered + quarantined + vanished` per shard, per
//! region, and in total, plus shard-to-region sum consistency — the
//! vanished count comes from an id-set difference, so the identity can
//! genuinely fail on a buggy producer.

use crate::artifact::{
    envelope, expect_float, expect_keys, expect_obj, expect_uint, validate_envelope, write_artifact,
};
use features::{feature_schema, FeatureConfig, FeatureExtractor};
use forest::Dataset;
use obs::jsonv::JsonV;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;
use telemetry::{
    run_shard, Census, FaultPlan, FleetConfig, RecoveryPolicy, RegionConfig, RegionId, ShardPlan,
};

/// Schema identifier for `fleet.json`.
pub const FLEET_SCHEMA: &str = "survdb-fleet/v1";

/// File name the artifact is written under.
pub const FLEET_FILE: &str = "fleet.json";

/// Shard visit order of a fleetbench run. The deterministic section
/// must not depend on the choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitOrder {
    /// Shards in ascending index order.
    Forward,
    /// Shards in descending index order.
    Backward,
}

impl VisitOrder {
    /// The label written into the artifact.
    pub fn label(&self) -> &'static str {
        match self {
            VisitOrder::Forward => "forward",
            VisitOrder::Backward => "backward",
        }
    }
}

/// Options of one fleetbench run.
#[derive(Debug, Clone)]
pub struct FleetBenchOptions {
    /// Population scale (1.0 = canonical region sizes, ~18k databases).
    pub scale: f64,
    /// Master seed; per-region seeds derive the same way `Study::load`
    /// derives them.
    pub seed: u64,
    /// Shards per region.
    pub shards: usize,
    /// Whole subscriptions generated per ingest chunk.
    pub chunk_subscriptions: usize,
    /// Shard visit order.
    pub visit_order: VisitOrder,
    /// Per-event fault probability (0 = clean transport). Nonzero
    /// rates exercise the quarantine/vanished legs of the counting
    /// identity at fleet scale.
    pub fault_rate: f64,
    /// Output directory for `fleet.json`.
    pub artifact_dir: PathBuf,
}

impl Default for FleetBenchOptions {
    fn default() -> Self {
        FleetBenchOptions {
            scale: 1.0,
            seed: 0x5DB_2018,
            shards: 8,
            chunk_subscriptions: 32,
            visit_order: VisitOrder::Forward,
            fault_rate: 0.0,
            artifact_dir: PathBuf::from("artifacts"),
        }
    }
}

/// One region's shard-invariant accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionTotals {
    /// Region label.
    pub region: String,
    /// Subscriptions generated.
    pub subscriptions: usize,
    /// Databases generated before fault injection.
    pub generated: usize,
    /// Databases the lenient ingest reconstructed.
    pub recovered: usize,
    /// Databases quarantined during ingest.
    pub quarantined: usize,
    /// Databases lost without a trace (id-set difference).
    pub vanished: usize,
    /// Labeled prediction rows featurized from the recovered fleet.
    pub dataset_rows: usize,
    /// Rows labeled long-lived.
    pub positive_rows: usize,
    /// Order-insensitive content hash of the region's feature rows.
    pub dataset_fingerprint: u64,
}

/// One shard's accounting — the nondeterministic section's per-shard
/// breakdown (the shard layout is a runtime knob, not part of the
/// deterministic contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCounts {
    /// Region label.
    pub region: String,
    /// Shard index within the region's plan.
    pub shard: usize,
    /// Subscriptions in the shard.
    pub subscriptions: usize,
    /// Databases generated.
    pub generated: usize,
    /// Databases recovered.
    pub recovered: usize,
    /// Databases quarantined.
    pub quarantined: usize,
    /// Databases vanished.
    pub vanished: usize,
    /// Feature rows contributed.
    pub rows: usize,
}

/// Everything one fleetbench run measured.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The options the run used.
    pub options: FleetBenchOptions,
    /// Feature-schema width.
    pub feature_count: usize,
    /// Per-region shard-invariant totals, region order.
    pub regions: Vec<RegionTotals>,
    /// Per-shard accounting in visit order.
    pub shards: Vec<ShardCounts>,
    /// Worker-thread cap in effect.
    pub thread_limit: usize,
    /// Wall time of the whole run.
    pub elapsed_ms: f64,
    /// Peak resident set size in kB (`VmHWM`; 0 when unavailable).
    pub peak_rss_kb: u64,
}

impl FleetReport {
    /// Generated databases per wall-clock second.
    pub fn databases_per_second(&self) -> f64 {
        rate(
            self.regions.iter().map(|r| r.generated).sum::<usize>(),
            self.elapsed_ms,
        )
    }

    /// Featurized rows per wall-clock second.
    pub fn rows_per_second(&self) -> f64 {
        rate(
            self.regions.iter().map(|r| r.dataset_rows).sum::<usize>(),
            self.elapsed_ms,
        )
    }
}

fn rate(count: usize, elapsed_ms: f64) -> f64 {
    if elapsed_ms > 0.0 {
        count as f64 / (elapsed_ms / 1000.0)
    } else {
        0.0
    }
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`).
/// Returns 0 where procfs is unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches(" kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// FNV-1a over one feature row plus its label.
fn row_hash(features: &[f64], label: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: [u8; 8]| {
        for b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat((label as u64).to_le_bytes());
    for &v in features {
        eat(v.to_bits().to_le_bytes());
    }
    h
}

/// Order-insensitive content hash of a dataset: the wrapping sum of
/// per-row FNV-1a hashes. Insensitivity to row order is deliberate —
/// it makes the fingerprint shard-count- and visit-order-invariant
/// without the producer having to buffer rows for reordering (row
/// *order* equivalence is proven separately by
/// `tests/stream_equivalence.rs`).
pub fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    let mut sum = 0u64;
    let mut row = Vec::with_capacity(dataset.feature_count());
    for i in 0..dataset.len() {
        dataset.gather_row_into(i, &mut row);
        sum = sum.wrapping_add(row_hash(&row, dataset.label(i)));
    }
    sum
}

/// Runs the full streaming pipeline over all three regions: sharded
/// generation → (optional) fault injection → chunked lenient ingest →
/// per-shard featurization. Raw telemetry never outlives one chunk and
/// reconstructed records never outlive their shard; only counters and
/// fingerprints accumulate, so memory stays bounded by the largest
/// shard regardless of total fleet size.
pub fn run_fleetbench(options: &FleetBenchOptions) -> FleetReport {
    let start = Instant::now();
    let policy = RecoveryPolicy::default();
    let fault_plan = (options.fault_rate > 0.0).then(|| FaultPlan {
        drop_size: options.fault_rate,
        duplicate: options.fault_rate / 2.0,
        reorder: options.fault_rate,
        truncate: options.fault_rate / 2.0,
        orphan: options.fault_rate / 4.0,
        ..FaultPlan::none(options.seed ^ 0xFA17)
    });
    let feature_config = FeatureConfig::default();
    let feature_count = feature_schema(&feature_config).len();

    let mut regions = Vec::new();
    let mut shards = Vec::new();
    for (i, &region_id) in RegionId::ALL.iter().enumerate() {
        let config = FleetConfig::new(
            RegionConfig::canonical(region_id).scaled(options.scale),
            // Distinct per-region streams, same scheme as `Study::load`.
            options.seed.wrapping_add(i as u64 * 0x9E37_79B9),
        );
        let plan = ShardPlan::new(config.region.subscription_count, options.shards);
        let mut totals = RegionTotals {
            region: region_id.to_string(),
            subscriptions: 0,
            generated: 0,
            recovered: 0,
            quarantined: 0,
            vanished: 0,
            dataset_rows: 0,
            positive_rows: 0,
            dataset_fingerprint: 0,
        };
        let order: Vec<usize> = match options.visit_order {
            VisitOrder::Forward => (0..plan.shard_count()).collect(),
            VisitOrder::Backward => (0..plan.shard_count()).rev().collect(),
        };
        for shard in order {
            let result = run_shard(
                &config,
                &plan,
                shard,
                options.chunk_subscriptions,
                fault_plan.as_ref(),
                &policy,
            );
            let census = Census::new(&result.fleet);
            let extractor = FeatureExtractor::new(&census, feature_config.clone());
            let (dataset, _survival) = extractor.build_dataset(&census, None);
            let counts = ShardCounts {
                region: totals.region.clone(),
                shard,
                subscriptions: result.fleet.subscriptions.len(),
                generated: result.generated_databases,
                recovered: result.report.databases_recovered,
                quarantined: result.report.databases_quarantined,
                vanished: result.vanished_databases,
                rows: dataset.len(),
            };
            totals.subscriptions += counts.subscriptions;
            totals.generated += counts.generated;
            totals.recovered += counts.recovered;
            totals.quarantined += counts.quarantined;
            totals.vanished += counts.vanished;
            totals.dataset_rows += counts.rows;
            totals.positive_rows += dataset.class_distribution()[1];
            totals.dataset_fingerprint = totals
                .dataset_fingerprint
                .wrapping_add(dataset_fingerprint(&dataset));
            shards.push(counts);
            // `result` and `dataset` drop here: the next shard starts
            // from the counters alone.
        }
        obs::info!(
            "fleetbench",
            "{}: {} databases generated, {} rows featurized",
            totals.region,
            totals.generated,
            totals.dataset_rows
        );
        regions.push(totals);
    }

    FleetReport {
        options: options.clone(),
        feature_count,
        regions,
        shards,
        thread_limit: forest::parallel::thread_limit(),
        elapsed_ms: start.elapsed().as_secs_f64() * 1000.0,
        peak_rss_kb: peak_rss_kb(),
    }
}

fn region_json(totals: &RegionTotals) -> JsonV {
    JsonV::obj(vec![
        ("region", JsonV::Str(totals.region.clone())),
        ("subscriptions", JsonV::UInt(totals.subscriptions as u64)),
        ("generated", JsonV::UInt(totals.generated as u64)),
        ("recovered", JsonV::UInt(totals.recovered as u64)),
        ("quarantined", JsonV::UInt(totals.quarantined as u64)),
        ("vanished", JsonV::UInt(totals.vanished as u64)),
        ("dataset_rows", JsonV::UInt(totals.dataset_rows as u64)),
        ("positive_rows", JsonV::UInt(totals.positive_rows as u64)),
        (
            "dataset_fingerprint",
            JsonV::UInt(totals.dataset_fingerprint),
        ),
    ])
}

fn deterministic_json(report: &FleetReport) -> JsonV {
    let sum =
        |f: fn(&RegionTotals) -> usize| -> u64 { report.regions.iter().map(|r| f(r) as u64).sum() };
    let fingerprint = report
        .regions
        .iter()
        .fold(0u64, |acc, r| acc.wrapping_add(r.dataset_fingerprint));
    JsonV::obj(vec![
        ("scale", JsonV::Float(report.options.scale)),
        ("seed", JsonV::UInt(report.options.seed)),
        ("fault_rate", JsonV::Float(report.options.fault_rate)),
        (
            "chunk_subscriptions",
            JsonV::UInt(report.options.chunk_subscriptions as u64),
        ),
        ("feature_count", JsonV::UInt(report.feature_count as u64)),
        (
            "regions",
            JsonV::Arr(report.regions.iter().map(region_json).collect()),
        ),
        (
            "totals",
            JsonV::obj(vec![
                ("generated", JsonV::UInt(sum(|r| r.generated))),
                ("recovered", JsonV::UInt(sum(|r| r.recovered))),
                ("quarantined", JsonV::UInt(sum(|r| r.quarantined))),
                ("vanished", JsonV::UInt(sum(|r| r.vanished))),
                ("dataset_rows", JsonV::UInt(sum(|r| r.dataset_rows))),
                ("dataset_fingerprint", JsonV::UInt(fingerprint)),
            ]),
        ),
    ])
}

/// Renders only the deterministic section — the byte string CI compares
/// across shard counts and visit orders.
pub fn deterministic_fleet_section(report: &FleetReport) -> String {
    deterministic_json(report).render()
}

fn shard_json(counts: &ShardCounts) -> JsonV {
    JsonV::obj(vec![
        ("region", JsonV::Str(counts.region.clone())),
        ("shard", JsonV::UInt(counts.shard as u64)),
        ("subscriptions", JsonV::UInt(counts.subscriptions as u64)),
        ("generated", JsonV::UInt(counts.generated as u64)),
        ("recovered", JsonV::UInt(counts.recovered as u64)),
        ("quarantined", JsonV::UInt(counts.quarantined as u64)),
        ("vanished", JsonV::UInt(counts.vanished as u64)),
        ("rows", JsonV::UInt(counts.rows as u64)),
    ])
}

/// Renders the full fleet artifact for `binary`.
pub fn render_fleet(binary: &str, report: &FleetReport) -> String {
    envelope(
        FLEET_SCHEMA,
        binary,
        deterministic_json(report),
        JsonV::obj(vec![
            ("shard_count", JsonV::UInt(report.options.shards as u64)),
            (
                "visit_order",
                JsonV::Str(report.options.visit_order.label().to_string()),
            ),
            ("thread_limit", JsonV::UInt(report.thread_limit as u64)),
            ("elapsed_ms", JsonV::Float(report.elapsed_ms)),
            (
                "databases_per_second",
                JsonV::Float(report.databases_per_second()),
            ),
            ("rows_per_second", JsonV::Float(report.rows_per_second())),
            ("peak_rss_kb", JsonV::UInt(report.peak_rss_kb)),
            (
                "shards",
                JsonV::Arr(report.shards.iter().map(shard_json).collect()),
            ),
        ]),
    )
    .render()
}

/// Writes `dir/fleet.json` for `binary`, creating `dir` if needed.
/// Returns the written path.
pub fn write_fleet(dir: &Path, binary: &str, report: &FleetReport) -> io::Result<PathBuf> {
    write_artifact(dir, FLEET_FILE, &render_fleet(binary, report))
}

const COUNT_KEYS: [&str; 4] = ["generated", "recovered", "quarantined", "vanished"];

fn counting_identity(value: &JsonV, what: &str) -> Result<[u64; 4], String> {
    let mut counts = [0u64; 4];
    for (slot, key) in counts.iter_mut().zip(COUNT_KEYS) {
        *slot = expect_uint(
            value
                .get(key)
                .ok_or_else(|| format!("{what} missing {key}"))?,
            &format!("{what}.{key}"),
        )?;
    }
    if counts[0] != counts[1] + counts[2] + counts[3] {
        return Err(format!(
            "{what}: generated {} != recovered {} + quarantined {} + vanished {}",
            counts[0], counts[1], counts[2], counts[3]
        ));
    }
    Ok(counts)
}

/// Structurally validates a rendered `fleet.json`: schema id, the
/// deterministic/nondeterministic split with exact key order, the
/// counting identity per shard / per region / in total, and
/// shard-to-region sum consistency. Used by the `fleet-schema-check`
/// binary in CI.
pub fn validate_fleet(text: &str) -> Result<(), String> {
    let root = validate_envelope(text, FLEET_SCHEMA)?;

    let det = root.get("deterministic").expect("envelope checked");
    let det_fields = expect_obj(det, "deterministic")?;
    expect_keys(
        det_fields,
        &[
            "scale",
            "seed",
            "fault_rate",
            "chunk_subscriptions",
            "feature_count",
            "regions",
            "totals",
        ],
        "deterministic",
    )?;
    let scale = expect_float(det.get("scale").expect("keys checked"), "scale")?;
    if scale.is_nan() || scale <= 0.0 {
        return Err(format!("scale {scale} must be positive"));
    }
    expect_uint(det.get("seed").expect("keys checked"), "seed")?;
    let fault_rate = expect_float(det.get("fault_rate").expect("keys checked"), "fault_rate")?;
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(format!("fault_rate {fault_rate} outside [0, 1]"));
    }
    if expect_uint(
        det.get("chunk_subscriptions").expect("keys checked"),
        "chunk_subscriptions",
    )? == 0
    {
        return Err("chunk_subscriptions must be nonzero".to_string());
    }
    let feature_count = expect_uint(
        det.get("feature_count").expect("keys checked"),
        "feature_count",
    )?;
    if feature_count == 0 {
        return Err("feature_count must be nonzero".to_string());
    }

    let regions = match det.get("regions") {
        Some(JsonV::Arr(items)) => items,
        other => return Err(format!("regions must be an array, found {other:?}")),
    };
    if regions.len() != 3 {
        return Err(format!("expected 3 regions, found {}", regions.len()));
    }
    let mut region_counts = Vec::new();
    let mut rows_sum = 0u64;
    let mut fingerprint_sum = 0u64;
    for (i, region) in regions.iter().enumerate() {
        let what = format!("regions[{i}]");
        let region_fields = expect_obj(region, &what)?;
        expect_keys(
            region_fields,
            &[
                "region",
                "subscriptions",
                "generated",
                "recovered",
                "quarantined",
                "vanished",
                "dataset_rows",
                "positive_rows",
                "dataset_fingerprint",
            ],
            &what,
        )?;
        let label = match region.get("region") {
            Some(JsonV::Str(s)) if !s.is_empty() => s.clone(),
            other => return Err(format!("{what}.region must be a string, found {other:?}")),
        };
        let counts = counting_identity(region, &what)?;
        let subscriptions = expect_uint(region.get("subscriptions").expect("keys checked"), &what)?;
        let rows = expect_uint(region.get("dataset_rows").expect("keys checked"), &what)?;
        let positive = expect_uint(region.get("positive_rows").expect("keys checked"), &what)?;
        if rows > counts[1] {
            return Err(format!(
                "{what}: dataset_rows {rows} exceeds recovered {}",
                counts[1]
            ));
        }
        if positive > rows {
            return Err(format!(
                "{what}: positive_rows {positive} exceeds dataset_rows {rows}"
            ));
        }
        rows_sum += rows;
        fingerprint_sum = fingerprint_sum.wrapping_add(expect_uint(
            region.get("dataset_fingerprint").expect("keys checked"),
            &what,
        )?);
        region_counts.push((label, subscriptions, counts, rows));
    }

    let totals = det.get("totals").expect("keys checked");
    let totals_fields = expect_obj(totals, "totals")?;
    expect_keys(
        totals_fields,
        &[
            "generated",
            "recovered",
            "quarantined",
            "vanished",
            "dataset_rows",
            "dataset_fingerprint",
        ],
        "totals",
    )?;
    let total_counts = counting_identity(totals, "totals")?;
    for (k, key) in COUNT_KEYS.iter().enumerate() {
        let regions_sum: u64 = region_counts.iter().map(|(_, _, c, _)| c[k]).sum();
        if regions_sum != total_counts[k] {
            return Err(format!(
                "totals.{key} {} != sum over regions {regions_sum}",
                total_counts[k]
            ));
        }
    }
    if expect_uint(totals.get("dataset_rows").expect("keys checked"), "totals")? != rows_sum {
        return Err("totals.dataset_rows != sum over regions".to_string());
    }
    if expect_uint(
        totals.get("dataset_fingerprint").expect("keys checked"),
        "totals",
    )? != fingerprint_sum
    {
        return Err("totals.dataset_fingerprint != wrapping sum over regions".to_string());
    }

    let nondet = root.get("nondeterministic").expect("keys checked");
    let nondet_fields = expect_obj(nondet, "nondeterministic")?;
    expect_keys(
        nondet_fields,
        &[
            "shard_count",
            "visit_order",
            "thread_limit",
            "elapsed_ms",
            "databases_per_second",
            "rows_per_second",
            "peak_rss_kb",
            "shards",
        ],
        "nondeterministic",
    )?;
    let shard_count = expect_uint(
        nondet.get("shard_count").expect("keys checked"),
        "shard_count",
    )?;
    if shard_count == 0 {
        return Err("shard_count must be nonzero".to_string());
    }
    match nondet.get("visit_order") {
        Some(JsonV::Str(s)) if s == "forward" || s == "backward" => {}
        other => {
            return Err(format!(
                "visit_order must be \"forward\" or \"backward\", found {other:?}"
            ))
        }
    }
    expect_uint(
        nondet.get("thread_limit").expect("keys checked"),
        "thread_limit",
    )?;
    for key in ["elapsed_ms", "databases_per_second", "rows_per_second"] {
        let v = expect_float(nondet.get(key).expect("keys checked"), key)?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!("{key} {v} must be finite and >= 0"));
        }
    }
    expect_uint(
        nondet.get("peak_rss_kb").expect("keys checked"),
        "peak_rss_kb",
    )?;

    let shards = match nondet.get("shards") {
        Some(JsonV::Arr(items)) => items,
        other => return Err(format!("shards must be an array, found {other:?}")),
    };
    // Fold each shard entry into its region, then require the per-shard
    // sums to reproduce the deterministic per-region totals exactly.
    let mut per_region_sums = vec![(0u64, [0u64; 4], 0u64); region_counts.len()];
    for (i, shard) in shards.iter().enumerate() {
        let what = format!("shards[{i}]");
        let shard_fields = expect_obj(shard, &what)?;
        expect_keys(
            shard_fields,
            &[
                "region",
                "shard",
                "subscriptions",
                "generated",
                "recovered",
                "quarantined",
                "vanished",
                "rows",
            ],
            &what,
        )?;
        let label = match shard.get("region") {
            Some(JsonV::Str(s)) => s,
            other => return Err(format!("{what}.region must be a string, found {other:?}")),
        };
        let slot = region_counts
            .iter()
            .position(|(r, _, _, _)| r == label)
            .ok_or_else(|| format!("{what}: unknown region {label:?}"))?;
        let index = expect_uint(shard.get("shard").expect("keys checked"), &what)?;
        if index >= shard_count {
            return Err(format!(
                "{what}: shard index {index} outside plan of {shard_count}"
            ));
        }
        let counts = counting_identity(shard, &what)?;
        per_region_sums[slot].0 +=
            expect_uint(shard.get("subscriptions").expect("keys checked"), &what)?;
        for (sum, v) in per_region_sums[slot].1.iter_mut().zip(counts) {
            *sum += v;
        }
        per_region_sums[slot].2 += expect_uint(shard.get("rows").expect("keys checked"), &what)?;
    }
    for ((label, subscriptions, counts, rows), (sub_sum, count_sums, row_sum)) in
        region_counts.iter().zip(per_region_sums)
    {
        if sub_sum != *subscriptions {
            return Err(format!(
                "{label}: shard subscriptions sum {sub_sum} != region total {subscriptions}"
            ));
        }
        if count_sums != *counts {
            return Err(format!(
                "{label}: shard count sums {count_sums:?} != region totals {counts:?}"
            ));
        }
        if row_sum != *rows {
            return Err(format!(
                "{label}: shard rows sum {row_sum} != region dataset_rows {rows}"
            ));
        }
    }
    Ok(())
}

pub use crate::artifact::deterministic_section_of;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> FleetBenchOptions {
        FleetBenchOptions {
            scale: 0.01,
            seed: 77,
            shards: 3,
            chunk_subscriptions: 4,
            visit_order: VisitOrder::Forward,
            fault_rate: 0.0,
            artifact_dir: PathBuf::from("artifacts"),
        }
    }

    #[test]
    fn rendered_fleet_validates_and_sections_are_layout_invariant() {
        let report = run_fleetbench(&tiny_options());
        let text = render_fleet("fleetbench", &report);
        validate_fleet(&text).expect("schema-valid");
        assert_eq!(
            deterministic_section_of(&text).unwrap(),
            deterministic_fleet_section(&report)
        );

        // Different shard count + visit order: identical deterministic
        // section, byte for byte.
        let other = run_fleetbench(&FleetBenchOptions {
            shards: 1,
            visit_order: VisitOrder::Backward,
            ..tiny_options()
        });
        assert_eq!(
            deterministic_fleet_section(&report),
            deterministic_fleet_section(&other)
        );
        validate_fleet(&render_fleet("fleetbench", &other)).expect("schema-valid");
    }

    #[test]
    fn faulted_fleet_keeps_counting_identity() {
        let report = run_fleetbench(&FleetBenchOptions {
            fault_rate: 0.1,
            ..tiny_options()
        });
        let quarantined: usize = report.regions.iter().map(|r| r.quarantined).sum();
        assert!(quarantined > 0, "fault rate 0.1 must quarantine something");
        validate_fleet(&render_fleet("fleetbench", &report)).expect("identity holds");
    }

    #[test]
    fn validator_rejects_drift() {
        let report = run_fleetbench(&tiny_options());
        let good = render_fleet("fleetbench", &report);
        assert!(validate_fleet(&good.replace(FLEET_SCHEMA, "survdb-fleet/v2")).is_err());
        assert!(validate_fleet(&good.replace("\"totals\"", "\"sums\"")).is_err());
        assert!(validate_fleet("{}").is_err());
        assert!(validate_fleet("nonsense").is_err());
        // Break the counting identity in the first region.
        let generated = format!("\"generated\": {}", report.regions[0].generated);
        let broken = format!("\"generated\": {}", report.regions[0].generated + 1);
        assert!(validate_fleet(&good.replacen(&generated, &broken, 1)).is_err());
    }

    #[test]
    fn fingerprint_is_row_order_insensitive_but_content_sensitive() {
        let mut a = Dataset::new(vec!["x".into()], 2);
        a.push(vec![1.0], 0);
        a.push(vec![2.0], 1);
        let mut b = Dataset::new(vec!["x".into()], 2);
        b.push(vec![2.0], 1);
        b.push(vec![1.0], 0);
        assert_eq!(dataset_fingerprint(&a), dataset_fingerprint(&b));
        let mut c = Dataset::new(vec!["x".into()], 2);
        c.push(vec![1.0], 0);
        c.push(vec![2.0], 0);
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&c));
    }
}
