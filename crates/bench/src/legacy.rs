//! The pre-columnar training path, frozen for benchmarking.
//!
//! `trainperf` times the current training path (columnar storage,
//! per-tree presorted split search, zero-copy views) against this
//! frozen copy of its predecessor: row-major storage, a split search
//! that re-sorts `(value, label)` pairs at every node, deep-copied
//! fold datasets, and strictly sequential execution.
//!
//! The legacy code deliberately uses the same `derive_seed` chain as
//! the current path, so both consume identical random streams and must
//! produce identical trees, predictions, and cross-validation scores.
//! `trainperf` asserts that equality before reporting timings: any
//! divergence is a correctness bug in the optimized path, not a
//! seeding artifact.

use forest::parallel::derive_seed;
use forest::tree::TreeParams;
use forest::{Dataset, KFold, RandomForestParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Row-major feature storage — the pre-change `Dataset` layout.
#[derive(Debug, Clone)]
pub struct LegacyDataset {
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    class_count: usize,
}

impl LegacyDataset {
    /// Gathers a columnar dataset into row-major form.
    pub fn from_columnar(data: &Dataset) -> LegacyDataset {
        LegacyDataset {
            rows: (0..data.len()).map(|i| data.row(i)).collect(),
            labels: (0..data.len()).map(|i| data.label(i)).collect(),
            class_count: data.class_count(),
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features.
    pub fn feature_count(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Label of example `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Deep-copies a row subset — the per-(candidate × fold) cost the
    /// old fold machinery paid.
    pub fn select(&self, indices: &[usize]) -> LegacyDataset {
        LegacyDataset {
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            class_count: self.class_count,
        }
    }
}

#[derive(Debug, Clone)]
enum LegacyNode {
    Leaf {
        probabilities: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

fn threshold_between(lo: f64, hi: f64) -> f64 {
    let mid = lo + (hi - lo) / 2.0;
    if mid >= hi {
        lo
    } else {
        mid
    }
}

fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let sum_sq: f64 = counts.iter().map(|c| c * c).sum();
    1.0 - sum_sq / (total * total)
}

/// A CART tree grown with the old per-node re-sorting split search.
#[derive(Debug, Clone)]
pub struct LegacyTree {
    nodes: Vec<LegacyNode>,
    class_count: usize,
    importances: Vec<f64>,
}

impl LegacyTree {
    /// Fits a tree exactly as the pre-change `DecisionTree::fit` did:
    /// every node's split search gathers and sorts `(value, label)`
    /// pairs for each candidate feature.
    pub fn fit<R: Rng + ?Sized>(
        data: &LegacyDataset,
        indices: &[usize],
        params: &TreeParams,
        max_features: usize,
        rng: &mut R,
    ) -> LegacyTree {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let mut tree = LegacyTree {
            nodes: Vec::new(),
            class_count: data.class_count,
            importances: vec![0.0; data.feature_count()],
        };
        let mut work: Vec<usize> = indices.to_vec();
        let len = work.len();
        let total = len as f64;
        tree.grow(data, &mut work, 0, len, 0, params, max_features, total, rng);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn grow<R: Rng + ?Sized>(
        &mut self,
        data: &LegacyDataset,
        work: &mut Vec<usize>,
        start: usize,
        end: usize,
        depth: usize,
        params: &TreeParams,
        max_features: usize,
        total: f64,
        rng: &mut R,
    ) -> usize {
        let n = end - start;
        let mut counts = vec![0.0_f64; self.class_count];
        for &i in &work[start..end] {
            counts[data.labels[i]] += 1.0;
        }
        let node_gini = gini(&counts, n as f64);

        let make_leaf = |tree: &mut LegacyTree, counts: Vec<f64>| -> usize {
            let probabilities = counts.iter().map(|c| c / n as f64).collect();
            tree.nodes.push(LegacyNode::Leaf { probabilities });
            tree.nodes.len() - 1
        };

        if depth >= params.max_depth
            || n < params.min_samples_split
            || node_gini <= 0.0
            || n < 2 * params.min_samples_leaf
        {
            return make_leaf(self, counts);
        }

        let best = self.best_split(
            data,
            &work[start..end],
            &counts,
            node_gini,
            max_features,
            params,
            rng,
        );
        let Some((feature, threshold, decrease)) = best else {
            return make_leaf(self, counts);
        };

        let slice = &mut work[start..end];
        let mut mid = 0usize;
        for i in 0..slice.len() {
            if data.rows[slice[i]][feature] <= threshold {
                slice.swap(i, mid);
                mid += 1;
            }
        }
        debug_assert!(mid > 0 && mid < n, "split produced an empty child");

        self.importances[feature] += (n as f64 / total) * decrease;

        self.nodes.push(LegacyNode::Leaf {
            probabilities: Vec::new(),
        });
        let me = self.nodes.len() - 1;
        let left = self.grow(
            data,
            work,
            start,
            start + mid,
            depth + 1,
            params,
            max_features,
            total,
            rng,
        );
        let right = self.grow(
            data,
            work,
            start + mid,
            end,
            depth + 1,
            params,
            max_features,
            total,
            rng,
        );
        self.nodes[me] = LegacyNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    #[allow(clippy::too_many_arguments)]
    fn best_split<R: Rng + ?Sized>(
        &self,
        data: &LegacyDataset,
        samples: &[usize],
        parent_counts: &[f64],
        parent_gini: f64,
        max_features: usize,
        params: &TreeParams,
        rng: &mut R,
    ) -> Option<(usize, f64, f64)> {
        let n = samples.len();
        let nf = data.feature_count();

        let mut candidates: Vec<usize> = (0..nf).collect();
        for i in 0..max_features.min(nf) {
            let j = rng.gen_range(i..nf);
            candidates.swap(i, j);
        }

        let mut best: Option<(usize, f64, f64)> = None;
        let mut pairs: Vec<(f64, usize)> = Vec::with_capacity(n);

        for &feature in &candidates[..max_features] {
            pairs.clear();
            pairs.extend(
                samples
                    .iter()
                    .map(|&i| (data.rows[i][feature], data.labels[i])),
            );
            // The per-node O(n log n) re-sort the presorted path removed.
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            if pairs[0].0 == pairs[n - 1].0 {
                continue;
            }

            let mut left_counts = vec![0.0_f64; self.class_count];
            let mut right_counts = parent_counts.to_vec();
            let mut left_n = 0.0;
            let mut right_n = n as f64;

            for k in 0..n - 1 {
                let (value, label) = pairs[k];
                left_counts[label] += 1.0;
                right_counts[label] -= 1.0;
                left_n += 1.0;
                right_n -= 1.0;

                let next_value = pairs[k + 1].0;
                if value == next_value {
                    continue;
                }
                let left_size = (k + 1) as f64;
                let right_size = (n - k - 1) as f64;
                if (left_size as usize) < params.min_samples_leaf
                    || (right_size as usize) < params.min_samples_leaf
                {
                    continue;
                }
                let weighted = (left_n / n as f64) * gini(&left_counts, left_n)
                    + (right_n / n as f64) * gini(&right_counts, right_n);
                let decrease = (parent_gini - weighted).max(0.0);
                match best {
                    Some((_, _, best_dec)) if best_dec >= decrease => {}
                    _ => best = Some((feature, threshold_between(value, next_value), decrease)),
                }
            }
        }
        best
    }

    /// Class probabilities for one row-major feature vector.
    pub fn predict_proba(&self, features: &[f64]) -> &[f64] {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                LegacyNode::Leaf { probabilities } => return probabilities,
                LegacyNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicted class (argmax of probabilities, same tie rule as the
    /// current `DecisionTree::predict`).
    pub fn predict(&self, features: &[f64]) -> usize {
        self.predict_proba(features)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .expect("at least two classes")
    }
}

/// A forest of legacy trees, trained strictly sequentially.
#[derive(Debug, Clone)]
pub struct LegacyForest {
    trees: Vec<LegacyTree>,
    class_count: usize,
    oob_accuracy: Option<f64>,
}

impl LegacyForest {
    /// Trains one tree after another, bootstrap and tree seeds drawn
    /// from the same `derive_seed(seed, t)` chain as the current path.
    pub fn fit(data: &LegacyDataset, params: &RandomForestParams, seed: u64) -> LegacyForest {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let n = data.len();
        let max_features = params.max_features.resolve(data.feature_count());
        let mut trees = Vec::with_capacity(params.n_trees);
        // Out-of-bag bookkeeping, exactly as the pre-change fit did it:
        // per tree, reset the bag, mark bootstrap rows, and vote with
        // every tree on the rows it never saw.
        let mut in_bag = vec![false; n];
        let mut oob_votes: Vec<Vec<usize>> = vec![vec![0; data.class_count]; n];
        for t in 0..params.n_trees {
            let mut rng = SmallRng::seed_from_u64(derive_seed(seed, t as u64));
            let indices: Vec<usize> = if params.bootstrap {
                (0..n).map(|_| rng.gen_range(0..n)).collect()
            } else {
                (0..n).collect()
            };
            let tree = LegacyTree::fit(data, &indices, &params.tree, max_features, &mut rng);
            if params.bootstrap {
                in_bag.iter_mut().for_each(|b| *b = false);
                for &i in &indices {
                    in_bag[i] = true;
                }
                for (i, bagged) in in_bag.iter().enumerate() {
                    if !bagged {
                        let pred = tree.predict(&data.rows[i]);
                        oob_votes[i][pred] += 1;
                    }
                }
            }
            trees.push(tree);
        }
        let oob_accuracy = if params.bootstrap {
            let mut correct = 0usize;
            let mut voted = 0usize;
            for (i, votes) in oob_votes.iter().enumerate() {
                let total: usize = votes.iter().sum();
                if total == 0 {
                    continue;
                }
                voted += 1;
                let pred = votes
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &v)| v)
                    .map(|(c, _)| c)
                    .expect("non-empty votes");
                if pred == data.label(i) {
                    correct += 1;
                }
            }
            if voted > 0 {
                Some(correct as f64 / voted as f64)
            } else {
                None
            }
        } else {
            None
        };
        LegacyForest {
            trees,
            class_count: data.class_count,
            oob_accuracy,
        }
    }

    /// Out-of-bag accuracy, when trained with bootstrap sampling.
    pub fn oob_accuracy(&self) -> Option<f64> {
        self.oob_accuracy
    }

    /// Normalized gini feature importances, aggregated exactly as the
    /// current forest does (tree order, then one normalizing sum).
    pub fn feature_importances(&self) -> Vec<f64> {
        let nf = self.trees.first().map_or(0, |t| t.importances.len());
        let mut acc = vec![0.0_f64; nf];
        for tree in &self.trees {
            for (a, v) in acc.iter_mut().zip(&tree.importances) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            acc.iter_mut().for_each(|a| *a /= total);
        }
        acc
    }

    /// Average class probabilities over all trees.
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0_f64; self.class_count];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict_proba(features)) {
                *a += p;
            }
        }
        let nt = self.trees.len() as f64;
        acc.iter_mut().for_each(|a| *a /= nt);
        acc
    }

    /// Predicted class for row `i` of a legacy dataset (argmax, ties to
    /// the later class — matching the current forest's rule).
    pub fn predict_row(&self, data: &LegacyDataset, i: usize) -> usize {
        let probs = self.predict_proba(&data.rows[i]);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .expect("at least two classes")
    }
}

/// A legacy grid-search outcome, index-based for comparison against
/// the current `GridSearchResult`.
#[derive(Debug, Clone)]
pub struct LegacyGridOutcome {
    /// Index of the winning candidate.
    pub best_index: usize,
    /// Its mean cross-validated accuracy.
    pub best_score: f64,
    /// Mean CV accuracy per candidate, in candidate order.
    pub all_scores: Vec<f64>,
}

/// Sequential grid search over the old path: per (candidate × fold),
/// deep-copy the train and validation subsets and fit a sequential
/// legacy forest. Unit `(c, f)` uses `derive_seed(seed, c·k + f)` and
/// the fold assignment comes from the same stratified `KFold`, so the
/// scores must equal the current `GridSearch::run`'s.
pub fn legacy_grid_search(
    data: &Dataset,
    legacy: &LegacyDataset,
    candidates: &[RandomForestParams],
    k: usize,
    seed: u64,
) -> LegacyGridOutcome {
    let kfold = KFold::new(data, k, seed);
    let splits: Vec<(Vec<usize>, Vec<usize>)> = (0..k).map(|f| kfold.split(f)).collect();

    let mut all_scores = Vec::with_capacity(candidates.len());
    let mut best: Option<(usize, f64)> = None;
    for (c, params) in candidates.iter().enumerate() {
        let mut sum = 0.0;
        for (f, (train_idx, validation_idx)) in splits.iter().enumerate() {
            let train = legacy.select(train_idx);
            let validation = legacy.select(validation_idx);
            let model = LegacyForest::fit(&train, params, derive_seed(seed, (c * k + f) as u64));
            let correct = (0..validation.len())
                .filter(|&i| model.predict_row(&validation, i) == validation.label(i))
                .count();
            sum += correct as f64 / validation.len() as f64;
        }
        let score = sum / k as f64;
        all_scores.push(score);
        match best {
            Some((_, best_score)) if best_score >= score => {}
            _ => best = Some((c, score)),
        }
    }
    let (best_index, best_score) = best.expect("at least one candidate");
    LegacyGridOutcome {
        best_index,
        best_score,
        all_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest::RandomForest;

    fn dataset(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x0".into(), "x1".into(), "n0".into()], 2);
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            let n0: f64 = rng.gen();
            d.push(vec![x0, x1, n0], ((x0 + x1) > 1.0) as usize);
        }
        d
    }

    #[test]
    fn legacy_forest_matches_current_forest() {
        let d = dataset(300);
        let legacy_data = LegacyDataset::from_columnar(&d);
        let params = RandomForestParams {
            n_trees: 12,
            ..RandomForestParams::default()
        };
        let current = RandomForest::fit(&d, &params, 42);
        let legacy = LegacyForest::fit(&legacy_data, &params, 42);
        for i in 0..d.len() {
            assert_eq!(
                legacy.predict_proba(&d.row(i)),
                current.predict_proba(&d.row(i)),
                "row {i} diverged"
            );
        }
    }

    #[test]
    fn legacy_grid_matches_current_grid() {
        let d = dataset(240);
        let legacy_data = LegacyDataset::from_columnar(&d);
        let candidates = vec![
            RandomForestParams {
                n_trees: 8,
                ..RandomForestParams::default()
            },
            RandomForestParams {
                n_trees: 16,
                ..RandomForestParams::default()
            },
        ];
        let current = forest::GridSearch::new(candidates.clone(), 3).run(&d, 9);
        let legacy = legacy_grid_search(&d, &legacy_data, &candidates, 3, 9);
        assert_eq!(legacy.best_score, current.best_score);
        assert_eq!(candidates[legacy.best_index], current.best_params);
        let current_scores: Vec<f64> = current.all_scores.iter().map(|(_, s)| *s).collect();
        assert_eq!(legacy.all_scores, current_scores);
    }
}
