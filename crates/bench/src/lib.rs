//! Shared harness machinery for the `repro` binary and the Criterion
//! benches.
//!
//! The expensive artifact of the reproduction is the grid of nine
//! subgroup experiments (three regions × three creation editions);
//! Figures 5–9 and Tables 1–2 are all views over the same runs, so the
//! harness computes each subgroup once and caches it.

pub mod artifact;
pub mod fleet;
pub mod legacy;
pub mod model_source;
pub mod policyart;

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use survdb::experiment::{Experiment, ExperimentConfig, GridPreset, SubgroupResult};
use survdb::json::ToJson;
use survdb::study::{Study, StudyConfig};
use telemetry::{Edition, RegionId};

/// Harness options parsed from the `repro` command line.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Population scale (1.0 = canonical region sizes).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Grid-search preset.
    pub grid: GridPreset,
    /// Repetitions per subgroup.
    pub repetitions: usize,
    /// Output directory for JSON artifacts.
    pub artifact_dir: PathBuf,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: 0.5,
            seed: 0x5DB_2018,
            grid: GridPreset::Light,
            repetitions: 5,
            artifact_dir: PathBuf::from("artifacts"),
        }
    }
}

/// Lazily computed study + subgroup-result cache.
pub struct Harness {
    options: HarnessOptions,
    study: Study,
    subgroups: HashMap<(RegionId, String), SubgroupResult>,
}

impl Harness {
    /// Loads the three-region study.
    pub fn new(options: HarnessOptions) -> Harness {
        let study = Study::load(StudyConfig {
            scale: options.scale,
            seed: options.seed,
        });
        obs::info!(
            "harness",
            "generated {} databases across {} regions (scale {})",
            study.database_count(),
            study.fleets().len(),
            options.scale
        );
        Harness {
            options,
            study,
            subgroups: HashMap::new(),
        }
    }

    /// The loaded study.
    pub fn study(&self) -> &Study {
        &self.study
    }

    /// Harness options.
    pub fn options(&self) -> &HarnessOptions {
        &self.options
    }

    fn experiment_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            repetitions: self.options.repetitions,
            grid: self.options.grid,
            seed: self.options.seed,
            ..ExperimentConfig::default()
        }
    }

    /// The cached experiment result for one subgroup (`None` edition =
    /// whole region).
    pub fn subgroup(&mut self, region: RegionId, edition: Option<Edition>) -> &SubgroupResult {
        let key = (
            region,
            edition.map_or_else(|| "all".to_string(), |e| e.to_string()),
        );
        if !self.subgroups.contains_key(&key) {
            obs::info!("harness", "running experiment {} / {} ...", key.0, key.1);
            let census = self.study.census(region);
            let result = Experiment::new(self.experiment_config()).run(&census, edition);
            self.subgroups.insert(key.clone(), result);
        }
        &self.subgroups[&key]
    }

    /// All nine (region × edition) results, paper panel order.
    pub fn nine_panels(&mut self) -> Vec<SubgroupResult> {
        let mut out = Vec::with_capacity(9);
        for edition in Edition::ALL {
            for region in RegionId::ALL {
                out.push(self.subgroup(region, Some(edition)).clone());
            }
        }
        out
    }

    /// Writes a JSON artifact for an experiment id. Artifacts render
    /// through [`survdb::json`] so repeated runs with the same seed
    /// produce byte-identical files.
    pub fn write_artifact<T: ToJson>(&self, id: &str, value: &T) {
        let dir = &self.options.artifact_dir;
        if let Err(e) = std::fs::create_dir_all(dir) {
            obs::error!("harness", "cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{id}.json"));
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                let json = value.to_json_value().render();
                if let Err(e) = f.write_all(json.as_bytes()) {
                    obs::error!("harness", "write {} failed: {e}", path.display());
                } else {
                    obs::info!("harness", "wrote {}", path.display());
                }
            }
            Err(e) => obs::error!("harness", "create {} failed: {e}", path.display()),
        }
    }
}

/// Shared epilogue of the `repro` / `trainperf` / `faultsweep`
/// binaries: prints the per-phase timing breakdown and the counter
/// table from `registry`, then writes `artifact_dir/run_trace.json`
/// for `binary`.
pub fn finish_trace(registry: &obs::Registry, binary: &str, artifact_dir: &std::path::Path) {
    let snapshot = registry.snapshot();
    println!("\n================ Run trace ({binary})\n");
    print!("{}", survdb::report::phase_table(&snapshot));
    println!();
    print!("{}", survdb::report::counter_table(&snapshot));
    match obs::trace::write_run_trace(
        artifact_dir,
        binary,
        &snapshot,
        forest::parallel::thread_limit(),
    ) {
        Ok(path) => println!("\n[{binary}] wrote {}", path.display()),
        Err(e) => obs::error!(binary_target(binary), "cannot write run trace: {e}"),
    }
}

/// Maps a binary name to its static event target (event targets are
/// `&'static str`).
fn binary_target(binary: &str) -> &'static str {
    match binary {
        "repro" => "repro",
        "trainperf" => "trainperf",
        "faultsweep" => "faultsweep",
        "scored" => "scored",
        "survd" => "survd",
        "loadgen" => "loadgen",
        "fleetbench" => "fleetbench",
        "policybench" => "policybench",
        _ => "bench",
    }
}

/// Parses `repro` command-line flags (everything after the subcommand).
pub fn parse_options(args: &[String]) -> Result<HarnessOptions, String> {
    let mut options = HarnessOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--scale" => {
                options.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                i += 2;
            }
            "--seed" => {
                options.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                i += 2;
            }
            "--reps" => {
                options.repetitions = value()?.parse().map_err(|e| format!("bad --reps: {e}"))?;
                i += 2;
            }
            "--grid" => {
                options.grid = match value()?.as_str() {
                    "off" => GridPreset::Off,
                    "light" => GridPreset::Light,
                    "full" => GridPreset::Full,
                    other => return Err(format!("unknown grid preset {other}")),
                };
                i += 2;
            }
            "--out" => {
                options.artifact_dir = PathBuf::from(value()?);
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_flags() {
        let opts = parse_options(&[]).unwrap();
        assert_eq!(opts.repetitions, 5);
        let args: Vec<String> = [
            "--scale", "0.1", "--seed", "7", "--grid", "full", "--reps", "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_options(&args).unwrap();
        assert_eq!(opts.scale, 0.1);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.grid, GridPreset::Full);
        assert_eq!(opts.repetitions, 2);
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(parse_options(&["--nope".to_string()]).is_err());
        assert!(parse_options(&["--scale".to_string()]).is_err());
    }
}
