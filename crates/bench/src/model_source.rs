//! Shared model sourcing for the serving and scoring binaries: one
//! fixture-fleet dataset builder, one tuning grid, and one
//! train-or-load path with persistence verification.
//!
//! `scored`, `trainperf`, `survd`, and `loadgen` all need "a dataset
//! from the fixture fleet" and "a `SavedModel`, either loaded from
//! disk or trained-saved-reloaded-verified". Before this module each
//! binary carried its own copy; now they share these definitions, so a
//! change to the tuning surface or the verification discipline lands
//! everywhere at once.

use features::{FeatureConfig, FeatureExtractor};
use forest::tree::TreeParams;
use forest::{Dataset, GridSearch, MaxFeatures, RandomForest, RandomForestParams};
use serve::{GridProvenance, ModelMeta, SavedModel, MODEL_FILE};
use std::path::{Path, PathBuf};
use telemetry::{Census, Fleet, FleetConfig, RegionConfig};

/// Builds the fixture dataset every scoring/serving binary trains and
/// scores on: the Region-1 fleet at `scale`, censused and featurized
/// with the default extractor. Deterministic in `(scale, seed)`.
pub fn fixture_dataset(scale: f64, seed: u64) -> Dataset {
    let fleet = Fleet::generate(FleetConfig::new(
        RegionConfig::region_1().scaled(scale),
        seed,
    ));
    let census = Census::new(&fleet);
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    extractor.build_dataset(&census, None).0
}

/// The shared tuning surface: tree count × depth, sqrt feature
/// sampling, bootstrapped.
pub fn tuning_candidates() -> Vec<RandomForestParams> {
    let mut out = Vec::new();
    for &n_trees in &[20usize, 40] {
        for &max_depth in &[8usize, 24] {
            out.push(RandomForestParams {
                n_trees,
                tree: TreeParams {
                    max_depth,
                    ..TreeParams::default()
                },
                max_features: MaxFeatures::Sqrt,
                bootstrap: true,
            });
        }
    }
    out
}

/// How a binary obtains its model.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Load this `survdb-model/v1` file instead of training.
    pub load_from: Option<PathBuf>,
    /// Training seed (ignored when loading).
    pub seed: u64,
    /// Grid-search the hyper-parameters before the final fit
    /// (ignored when loading).
    pub tune: bool,
    /// Directory the trained model is saved under (as
    /// [`serve::MODEL_FILE`]); ignored when loading.
    pub save_dir: PathBuf,
}

/// Verifies that a persisted-and-reloaded model is indistinguishable
/// from the in-memory one: bitwise-equal per-row predictions on
/// `data` and a byte-identical re-render. Returns the rendered model
/// size in bytes.
pub fn verify_persisted(
    saved: &SavedModel,
    loaded: &SavedModel,
    data: &Dataset,
) -> Result<usize, String> {
    for i in 0..data.len() {
        if loaded.forest.predict_proba_row(data, i) != saved.forest.predict_proba_row(data, i) {
            return Err(format!(
                "loaded model diverged from the in-memory forest on row {i}"
            ));
        }
    }
    let rendered = saved.render();
    if loaded.render() != rendered {
        return Err("save-load-save is not byte-identical".to_string());
    }
    Ok(rendered.len())
}

/// The model's feature schema must match what the fleet produces —
/// scoring through a mismatched schema would silently permute
/// features.
pub fn check_schema(model: &SavedModel, data: &Dataset) -> Result<(), String> {
    if model.forest.feature_names() != data.feature_names() {
        return Err(
            "model was trained on a different feature schema than this fleet produces".to_string(),
        );
    }
    Ok(())
}

/// Obtains a model per `spec`: loads `load_from` when given, otherwise
/// trains on `data` (optionally grid-tuned), saves to
/// `save_dir/model.json`, reloads from disk, verifies the reload
/// bitwise, and returns the **loaded** copy — so every consumer serves
/// exactly what a later process would load.
pub fn obtain_model(data: &Dataset, spec: &ModelSpec) -> Result<SavedModel, String> {
    if let Some(path) = &spec.load_from {
        let model =
            SavedModel::load(path).map_err(|e| format!("cannot load {}: {e}", path.display()))?;
        check_schema(&model, data)?;
        return Ok(model);
    }

    let (params, grid) = if spec.tune {
        let candidates = tuning_candidates();
        obs::info!(
            "model_source",
            "tuning over {} candidates ...",
            candidates.len()
        );
        let result = GridSearch::new(candidates, 5).run(data, spec.seed);
        (
            result.best_params,
            Some(GridProvenance::from_result(&result)),
        )
    } else {
        (RandomForestParams::default(), None)
    };
    obs::info!(
        "model_source",
        "training {} trees on {} examples x {} features",
        params.n_trees,
        data.len(),
        data.feature_count()
    );
    let forest = RandomForest::fit(data, &params, spec.seed);
    let saved = SavedModel::new(
        forest,
        ModelMeta {
            positive_fraction: data.class_fraction(1),
            seed: spec.seed,
            params,
            grid,
        },
    );

    let path = model_path(&spec.save_dir);
    saved
        .save(&path)
        .map_err(|e| format!("cannot save model to {}: {e}", path.display()))?;
    let loaded =
        SavedModel::load(&path).map_err(|e| format!("cannot reload {}: {e}", path.display()))?;
    verify_persisted(&saved, &loaded, data)?;
    obs::info!(
        "model_source",
        "wrote {} and verified the reload bitwise on {} rows",
        path.display(),
        data.len()
    );
    Ok(loaded)
}

/// Where [`obtain_model`] persists a freshly trained model.
pub fn model_path(save_dir: &Path) -> PathBuf {
    save_dir.join(MODEL_FILE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_surface_is_tree_count_by_depth() {
        let candidates = tuning_candidates();
        assert_eq!(candidates.len(), 4);
        for c in &candidates {
            assert!(matches!(c.max_features, MaxFeatures::Sqrt));
            assert!(c.bootstrap);
        }
        let shapes: Vec<(usize, usize)> = candidates
            .iter()
            .map(|c| (c.n_trees, c.tree.max_depth))
            .collect();
        assert_eq!(shapes, vec![(20, 8), (20, 24), (40, 8), (40, 24)]);
    }

    #[test]
    fn obtain_model_trains_saves_and_reloads() {
        let data = fixture_dataset(0.02, 99);
        let dir = std::env::temp_dir().join(format!("survdb-model-source-{}", std::process::id()));
        let spec = ModelSpec {
            load_from: None,
            seed: 99,
            tune: false,
            save_dir: dir.clone(),
        };
        let trained = obtain_model(&data, &spec).expect("trains and verifies");
        check_schema(&trained, &data).expect("schema matches");

        // A second spec that loads what the first run persisted.
        let load_spec = ModelSpec {
            load_from: Some(model_path(&dir)),
            seed: 0,
            tune: false,
            save_dir: dir.clone(),
        };
        let loaded = obtain_model(&data, &load_spec).expect("loads");
        assert_eq!(loaded.render(), trained.render());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_mismatch_is_refused() {
        let data = fixture_dataset(0.02, 99);
        let mut other = Dataset::new(vec!["alien".into()], 2);
        other.push(vec![0.0], 0);
        other.push(vec![1.0], 1);
        let params = RandomForestParams {
            n_trees: 2,
            ..RandomForestParams::default()
        };
        let model = SavedModel::new(
            RandomForest::fit(&other, &params, 1),
            ModelMeta {
                positive_fraction: 0.5,
                seed: 1,
                params,
                grid: None,
            },
        );
        assert!(check_schema(&model, &data).is_err());
    }
}
