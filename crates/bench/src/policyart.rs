//! The policy artifact: `artifacts/policy.json` (`survdb-policy/v1`).
//!
//! `policybench` runs the full provisioning decision loop — generate a
//! scenario fleet, score it with the persisted forest, decide every
//! row under the canonical [`PolicySpec`] — for each what-if cohort in
//! [`ScenarioKind::ALL`], across all three regions and all three
//! creation editions. The artifact is the usual two-section envelope
//! (see [`crate::artifact`]):
//!
//! - `deterministic` — config echo, model facts, the spec, one block
//!   per cohort (decision summary + threshold sweep), and the
//!   cohort-vs-baseline deltas. Everything cost-valued is an integer
//!   accumulated per shard and merged, so the section is byte-identical
//!   across runs, thread counts, and shard layouts.
//! - `nondeterministic` — shard layout, thread limit, wall clock,
//!   throughput, peak RSS.
//!
//! [`validate_policy`] re-checks the envelope, the exact key order of
//! every block, the counting identities (per-action counts sum to the
//! row total; the (region, edition) table sums to the per-action
//! counts), the sweep frontier's internal consistency, the recomputed
//! deltas, and the headline result: on the incentive-cliff cohort the
//! best sweep threshold must beat both the always-provision and the
//! never-provision baselines strictly.

use crate::artifact::{
    deterministic_section_of, envelope, expect_arr, expect_float, expect_keys, expect_obj,
    expect_str, expect_uint, validate_envelope, write_artifact,
};
use crate::fleet::peak_rss_kb;
use features::{FeatureConfig, FeatureExtractor};
use obs::jsonv::JsonV;
use policy::{
    decide_batch, spec_json, summary_json, sweep_json, Action, ActionBands, DecisionSummary,
    PolicySpec, SubgroupKey, SweepAccum,
};
use serve::{score_batch_with, SavedModel};
use std::path::{Path, PathBuf};
use telemetry::{
    generate_scenario_subscription, Census, Edition, Fleet, FleetConfig, RegionConfig, RegionId,
    ScenarioKind, ShardPlan,
};

/// Schema identifier of `policy.json`.
pub const POLICY_SCHEMA: &str = "survdb-policy/v1";

/// Artifact file name.
pub const POLICY_FILE: &str = "policy.json";

/// `policybench` command-line options.
#[derive(Debug, Clone)]
pub struct PolicyBenchOptions {
    /// Population scale (1.0 = canonical region sizes).
    pub scale: f64,
    /// Master seed (fleet generation and, absent `--model`, training).
    pub seed: u64,
    /// Subscription shards per region (must not affect the
    /// deterministic section).
    pub shards: usize,
    /// Threshold-grid resolution for the sweep.
    pub grid_points: usize,
    /// Load a persisted model instead of training one.
    pub model: Option<PathBuf>,
    /// Output directory for `policy.json`.
    pub artifact_dir: PathBuf,
}

impl Default for PolicyBenchOptions {
    fn default() -> Self {
        PolicyBenchOptions {
            scale: 0.25,
            seed: 2018,
            shards: 4,
            grid_points: 11,
            model: None,
            artifact_dir: PathBuf::from("artifacts"),
        }
    }
}

/// Parses `policybench` command-line flags.
pub fn parse_policy_options(args: &[String]) -> Result<PolicyBenchOptions, String> {
    let mut options = PolicyBenchOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--scale" => {
                options.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                options.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--shards" => {
                options.shards = value()?.parse().map_err(|e| format!("bad --shards: {e}"))?;
            }
            "--grid" => {
                options.grid_points = value()?.parse().map_err(|e| format!("bad --grid: {e}"))?;
            }
            "--model" => {
                options.model = Some(PathBuf::from(value()?));
            }
            "--out" => {
                options.artifact_dir = PathBuf::from(value()?);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if options.scale <= 0.0 {
        return Err("--scale must be positive".to_string());
    }
    if options.grid_points < 2 {
        return Err("--grid needs at least 2 points".to_string());
    }
    Ok(options)
}

/// The canonical spec the artifact (and the golden snapshot) pin: the
/// default bands and cost model, plus two subgroup overrides that
/// exercise the override path — Premium databases in Region-1 get a
/// wider pre-provision band (premium placement is what the paper's
/// incentive analysis worries about), Basic databases in Region-3 a
/// more conservative one.
pub fn canonical_spec() -> PolicySpec {
    let mut spec = PolicySpec::default();
    spec.overrides.insert(
        SubgroupKey::new(RegionId::Region1.to_string(), Edition::Premium.to_string()),
        ActionBands {
            defer_below: 0.3,
            preprovision_above: 0.8,
        },
    );
    spec.overrides.insert(
        SubgroupKey::new(RegionId::Region3.to_string(), Edition::Basic.to_string()),
        ActionBands {
            defer_below: 0.45,
            preprovision_above: 0.7,
        },
    );
    spec.validate();
    spec
}

/// One what-if cohort's accumulated results.
#[derive(Debug, Clone)]
pub struct CohortResult {
    /// The scenario.
    pub kind: ScenarioKind,
    /// Merged decision accounting across regions, editions, shards.
    pub summary: DecisionSummary,
    /// Merged cost-vs-threshold frontier.
    pub sweep: SweepAccum,
}

/// Everything `policy.json` needs, deterministic fields first.
#[derive(Debug, Clone)]
pub struct PolicyReport {
    /// Options in force.
    pub options: PolicyBenchOptions,
    /// Feature-schema width of the scoring model.
    pub feature_count: usize,
    /// Training positive fraction `q` (sets the §5.3 threshold).
    pub positive_fraction: f64,
    /// The derived confidence threshold `t = max(q, 1 - q)`.
    pub threshold: f64,
    /// The spec decisions ran under.
    pub spec: PolicySpec,
    /// One result per [`ScenarioKind::ALL`] entry, in that order.
    pub cohorts: Vec<CohortResult>,
    /// Wall-clock of the decision loop.
    pub elapsed_ms: f64,
}

/// Derives the per-region generation config for one cohort run,
/// following `Study::load`'s per-region seed scheme
/// (`seed + i·0x9E3779B9`).
fn region_fleet_config(region: RegionId, options: &PolicyBenchOptions) -> FleetConfig {
    let i = RegionId::ALL
        .iter()
        .position(|r| *r == region)
        .expect("region is canonical") as u64;
    FleetConfig::new(
        RegionConfig::canonical(region).scaled(options.scale),
        options.seed.wrapping_add(i * 0x9E37_79B9),
    )
}

/// Builds one shard of a scenario fleet: the subscriptions in
/// `plan.range(shard)` with their (scenario-transformed) databases.
fn scenario_shard(
    config: &FleetConfig,
    kind: ScenarioKind,
    plan: &ShardPlan,
    shard: usize,
) -> Fleet {
    let mut subscriptions = Vec::new();
    let mut databases = Vec::new();
    for sub_idx in plan.range(shard) {
        let (subscription, dbs) = generate_scenario_subscription(config, kind, sub_idx);
        subscriptions.push(subscription);
        databases.extend(dbs);
    }
    Fleet {
        config: config.clone(),
        subscriptions,
        databases,
    }
}

/// Runs the generate → score → decide loop for every cohort and
/// returns the assembled report. `model` is the persisted forest to
/// score with (its feature schema must match
/// [`FeatureConfig::default`], which is what `model_source` trains).
pub fn run_policybench(options: &PolicyBenchOptions, model: &SavedModel) -> PolicyReport {
    let start = std::time::Instant::now();
    let spec = canonical_spec();
    let kernel = model.kernel();
    let q = model.meta.positive_fraction;
    let mut cohorts = Vec::with_capacity(ScenarioKind::ALL.len());
    for kind in ScenarioKind::ALL {
        let _span = obs::span!("policy_cohort");
        let mut summary = DecisionSummary::default();
        let mut sweep = SweepAccum::new(options.grid_points);
        for region in RegionId::ALL {
            let config = region_fleet_config(region, options);
            let plan = ShardPlan::new(config.region.subscription_count, options.shards);
            for shard in 0..plan.shard_count() {
                let fleet = scenario_shard(&config, kind, &plan, shard);
                let census = Census::new(&fleet);
                let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
                for edition in Edition::ALL {
                    let (dataset, _survival, indices) =
                        extractor.build_dataset_indexed(&census, Some(edition));
                    if dataset.is_empty() {
                        continue;
                    }
                    // The indexed join is the ground truth: row i of the
                    // dataset is fleet database indices[i].
                    let long_lived: Vec<bool> = indices
                        .iter()
                        .map(|&i| census.is_long_lived(&fleet.databases[i]))
                        .collect();
                    let scored = score_batch_with(&kernel, &dataset, q);
                    let facts = scored.facts();
                    let subgroup = SubgroupKey::new(region.to_string(), edition.to_string());
                    let (_actions, shard_summary) =
                        decide_batch(&facts, &long_lived, &spec, &subgroup);
                    summary.merge(&shard_summary);
                    for (f, &long) in facts.iter().zip(&long_lived) {
                        sweep.observe(f.positive, long, &spec.costs);
                    }
                }
            }
        }
        obs::info!(
            "policybench",
            "cohort {}: {} rows, policy cost {}, advantage {}",
            kind.label(),
            summary.rows(),
            summary.policy_cost,
            summary.advantage()
        );
        cohorts.push(CohortResult {
            kind,
            summary,
            sweep,
        });
    }
    PolicyReport {
        options: options.clone(),
        feature_count: model.forest.feature_names().len(),
        positive_fraction: q,
        threshold: model.threshold(),
        spec,
        cohorts,
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// The scenario kinds that get a delta row (everything but baseline).
fn delta_kinds() -> Vec<ScenarioKind> {
    ScenarioKind::ALL
        .into_iter()
        .filter(|k| *k != ScenarioKind::Baseline)
        .collect()
}

/// Signed difference of two unsigned totals, as a JSON float (the
/// artifact format has no signed integers).
fn delta(a: u64, b: u64) -> JsonV {
    JsonV::Float(a as f64 - b as f64)
}

fn cohort_json(cohort: &CohortResult) -> JsonV {
    JsonV::obj(vec![
        ("scenario", JsonV::Str(cohort.kind.label().to_string())),
        ("summary", summary_json(&cohort.summary)),
        ("sweep", sweep_json(&cohort.sweep)),
    ])
}

fn deltas_json(cohorts: &[CohortResult]) -> JsonV {
    let baseline = &cohorts[0];
    let reviews = |c: &CohortResult| c.summary.counts[Action::Review.index()];
    let rows = delta_kinds()
        .into_iter()
        .map(|kind| {
            let cohort = cohorts
                .iter()
                .find(|c| c.kind == kind)
                .expect("every kind has a cohort");
            JsonV::obj(vec![
                ("scenario", JsonV::Str(kind.label().to_string())),
                (
                    "rows_delta",
                    delta(cohort.summary.rows(), baseline.summary.rows()),
                ),
                (
                    "policy_cost_delta",
                    delta(cohort.summary.policy_cost, baseline.summary.policy_cost),
                ),
                ("review_delta", delta(reviews(cohort), reviews(baseline))),
                (
                    "best_cost_delta",
                    delta(
                        cohort.sweep.best().total_cost,
                        baseline.sweep.best().total_cost,
                    ),
                ),
                (
                    "best_threshold_shift",
                    JsonV::Float(cohort.sweep.best().threshold - baseline.sweep.best().threshold),
                ),
            ])
        })
        .collect();
    JsonV::Arr(rows)
}

fn deterministic_json(report: &PolicyReport) -> JsonV {
    JsonV::obj(vec![
        (
            "config",
            JsonV::obj(vec![
                ("scale", JsonV::Float(report.options.scale)),
                ("seed", JsonV::UInt(report.options.seed)),
                (
                    "grid_points",
                    JsonV::UInt(report.options.grid_points as u64),
                ),
            ]),
        ),
        (
            "model",
            JsonV::obj(vec![
                ("feature_count", JsonV::UInt(report.feature_count as u64)),
                ("positive_fraction", JsonV::Float(report.positive_fraction)),
                ("confidence_threshold", JsonV::Float(report.threshold)),
            ]),
        ),
        ("spec", spec_json(&report.spec)),
        (
            "cohorts",
            JsonV::Arr(report.cohorts.iter().map(cohort_json).collect()),
        ),
        ("deltas", deltas_json(&report.cohorts)),
    ])
}

/// Renders the full two-section artifact text.
pub fn render_policy(report: &PolicyReport) -> String {
    let total_rows: u64 = report.cohorts.iter().map(|c| c.summary.rows()).sum();
    let rows_per_second = if report.elapsed_ms > 0.0 {
        total_rows as f64 / (report.elapsed_ms / 1e3)
    } else {
        0.0
    };
    envelope(
        POLICY_SCHEMA,
        "policybench",
        deterministic_json(report),
        JsonV::obj(vec![
            ("shard_count", JsonV::UInt(report.options.shards as u64)),
            (
                "thread_limit",
                JsonV::UInt(forest::parallel::thread_limit() as u64),
            ),
            ("elapsed_ms", JsonV::Float(report.elapsed_ms)),
            ("rows_per_second", JsonV::Float(rows_per_second)),
            ("peak_rss_kb", JsonV::UInt(peak_rss_kb())),
        ]),
    )
    .render()
}

/// Writes `policy.json` under `dir`; returns the path.
pub fn write_policy(dir: &Path, report: &PolicyReport) -> std::io::Result<PathBuf> {
    write_artifact(dir, POLICY_FILE, &render_policy(report))
}

/// The rendered deterministic section — what CI byte-compares across
/// shard counts.
pub fn deterministic_policy_section(text: &str) -> Result<String, String> {
    deterministic_section_of(text)
}

/// A human-readable per-cohort table for the binary's stdout.
pub fn cohort_table(report: &PolicyReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>8} {:>7} {:>7} {:>7} {:>7} {:>10} {:>10}\n",
        "cohort", "rows", "defer", "std", "pre", "review", "cost", "advantage"
    ));
    for cohort in &report.cohorts {
        let c = &cohort.summary.counts;
        out.push_str(&format!(
            "{:<16} {:>8} {:>7} {:>7} {:>7} {:>7} {:>10} {:>10}\n",
            cohort.kind.label(),
            cohort.summary.rows(),
            c[Action::DeferPremiumPlacement.index()],
            c[Action::StandardProvision.index()],
            c[Action::PreProvisionLongLived.index()],
            c[Action::Review.index()],
            cohort.summary.policy_cost,
            cohort.summary.advantage()
        ));
    }
    out
}

fn field<'a>(fields: &'a [(String, JsonV)], key: &str, what: &str) -> Result<&'a JsonV, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("{what} is missing key {key:?}"))
}

fn action_labels() -> Vec<&'static str> {
    Action::ALL.iter().map(|a| a.label()).collect()
}

fn validate_summary(value: &JsonV, what: &str) -> Result<SummaryFacts, String> {
    let fields = expect_obj(value, what)?;
    expect_keys(fields, &["rows", "actions", "table", "costs"], what)?;
    let rows = expect_uint(field(fields, "rows", what)?, "rows")?;

    let actions = expect_obj(field(fields, "actions", what)?, "actions")?;
    expect_keys(actions, &action_labels(), "actions")?;
    let mut action_counts = [0u64; 4];
    for (i, (label, v)) in actions.iter().enumerate() {
        action_counts[i] = expect_uint(v, label)?;
    }
    if action_counts.iter().sum::<u64>() != rows {
        return Err(format!(
            "{what}: per-action counts sum to {} but rows is {rows}",
            action_counts.iter().sum::<u64>()
        ));
    }

    let table = expect_arr(field(fields, "table", what)?, "table")?;
    let mut table_keys = vec!["region", "edition"];
    table_keys.extend(action_labels());
    let mut column_sums = [0u64; 4];
    for entry in table {
        let entry_fields = expect_obj(entry, "table entry")?;
        expect_keys(entry_fields, &table_keys, "table entry")?;
        expect_str(field(entry_fields, "region", "table entry")?, "region")?;
        expect_str(field(entry_fields, "edition", "table entry")?, "edition")?;
        for (i, label) in action_labels().iter().enumerate() {
            column_sums[i] += expect_uint(field(entry_fields, label, "table entry")?, label)?;
        }
    }
    if column_sums != action_counts {
        return Err(format!(
            "{what}: table columns sum to {column_sums:?} but actions are {action_counts:?}"
        ));
    }

    let costs = expect_obj(field(fields, "costs", what)?, "costs")?;
    expect_keys(
        costs,
        &["policy", "oracle", "always_provision", "never_provision"],
        "costs",
    )?;
    let policy_cost = expect_uint(field(costs, "policy", "costs")?, "policy")?;
    let oracle = expect_uint(field(costs, "oracle", "costs")?, "oracle")?;
    let always = expect_uint(
        field(costs, "always_provision", "costs")?,
        "always_provision",
    )?;
    let never = expect_uint(field(costs, "never_provision", "costs")?, "never_provision")?;
    for (name, total) in [
        ("policy", policy_cost),
        ("always", always),
        ("never", never),
    ] {
        if oracle > total {
            return Err(format!(
                "{what}: oracle cost {oracle} exceeds {name} {total}"
            ));
        }
    }
    Ok(SummaryFacts {
        rows,
        reviews: action_counts[Action::Review.index()],
        policy_cost,
        always_provision_cost: always,
        never_provision_cost: never,
    })
}

struct SummaryFacts {
    rows: u64,
    reviews: u64,
    policy_cost: u64,
    always_provision_cost: u64,
    never_provision_cost: u64,
}

struct SweepFacts {
    best_threshold: f64,
    best_cost: u64,
}

fn validate_sweep(
    value: &JsonV,
    rows: u64,
    grid_points: u64,
    what: &str,
) -> Result<SweepFacts, String> {
    let fields = expect_obj(value, what)?;
    expect_keys(fields, &["rows", "points", "best"], what)?;
    if expect_uint(field(fields, "rows", what)?, "rows")? != rows {
        return Err(format!("{what}: sweep rows disagree with summary rows"));
    }
    let point_keys = ["threshold", "total_cost", "confident_rows"];
    let read_point = |v: &JsonV| -> Result<(f64, u64, u64), String> {
        let f = expect_obj(v, "sweep point")?;
        expect_keys(f, &point_keys, "sweep point")?;
        Ok((
            expect_float(field(f, "threshold", "sweep point")?, "threshold")?,
            expect_uint(field(f, "total_cost", "sweep point")?, "total_cost")?,
            expect_uint(field(f, "confident_rows", "sweep point")?, "confident_rows")?,
        ))
    };
    let points = expect_arr(field(fields, "points", what)?, "points")?;
    if points.len() as u64 != grid_points {
        return Err(format!(
            "{what}: expected {grid_points} sweep points, found {}",
            points.len()
        ));
    }
    let mut parsed = Vec::with_capacity(points.len());
    for point in points {
        parsed.push(read_point(point)?);
    }
    for w in parsed.windows(2) {
        if w[1].0 <= w[0].0 {
            return Err(format!("{what}: sweep thresholds must ascend"));
        }
        if w[1].2 > w[0].2 {
            return Err(format!(
                "{what}: confident rows must shrink as the threshold grows"
            ));
        }
    }
    let (best_threshold, best_cost, _) = read_point(field(fields, "best", what)?)?;
    let min_cost = parsed.iter().map(|p| p.1).min().expect("grid non-empty");
    if best_cost != min_cost {
        return Err(format!(
            "{what}: best cost {best_cost} is not the frontier minimum {min_cost}"
        ));
    }
    let first_min = parsed.iter().find(|p| p.1 == min_cost).expect("min exists");
    if best_threshold != first_min.0 {
        return Err(format!(
            "{what}: best threshold must tie-break to the lowest grid point"
        ));
    }
    Ok(SweepFacts {
        best_threshold,
        best_cost,
    })
}

/// Validates a rendered `policy.json`: envelope, exact key order of
/// every section, counting identities, sweep consistency, recomputed
/// deltas, and the incentive-cliff headline criterion.
pub fn validate_policy(text: &str) -> Result<(), String> {
    let root = validate_envelope(text, POLICY_SCHEMA)?;
    let det = expect_obj(
        root.get("deterministic").expect("envelope checked"),
        "deterministic",
    )?;
    expect_keys(
        det,
        &["config", "model", "spec", "cohorts", "deltas"],
        "deterministic",
    )?;

    let config = expect_obj(field(det, "config", "deterministic")?, "config")?;
    expect_keys(config, &["scale", "seed", "grid_points"], "config")?;
    if expect_float(field(config, "scale", "config")?, "scale")? <= 0.0 {
        return Err("config scale must be positive".to_string());
    }
    expect_uint(field(config, "seed", "config")?, "seed")?;
    let grid_points = expect_uint(field(config, "grid_points", "config")?, "grid_points")?;
    if grid_points < 2 {
        return Err("config grid_points must be at least 2".to_string());
    }

    let model = expect_obj(field(det, "model", "deterministic")?, "model")?;
    expect_keys(
        model,
        &["feature_count", "positive_fraction", "confidence_threshold"],
        "model",
    )?;
    if expect_uint(field(model, "feature_count", "model")?, "feature_count")? == 0 {
        return Err("model feature_count must be positive".to_string());
    }
    let q = expect_float(
        field(model, "positive_fraction", "model")?,
        "positive_fraction",
    )?;
    if !(0.0..=1.0).contains(&q) {
        return Err(format!("positive_fraction {q} out of [0, 1]"));
    }
    let t = expect_float(
        field(model, "confidence_threshold", "model")?,
        "confidence_threshold",
    )?;
    if !(0.5..=1.0).contains(&t) {
        return Err(format!("confidence_threshold {t} out of [0.5, 1]"));
    }

    let spec = expect_obj(field(det, "spec", "deterministic")?, "spec")?;
    expect_keys(spec, &["bands", "overrides", "costs"], "spec")?;
    let band_keys = ["defer_below", "preprovision_above"];
    let bands = expect_obj(field(spec, "bands", "spec")?, "bands")?;
    expect_keys(bands, &band_keys, "bands")?;
    for entry in expect_arr(field(spec, "overrides", "spec")?, "overrides")? {
        let entry_fields = expect_obj(entry, "override")?;
        expect_keys(
            entry_fields,
            &["region", "edition", "defer_below", "preprovision_above"],
            "override",
        )?;
    }
    let costs = expect_obj(field(spec, "costs", "spec")?, "costs")?;
    expect_keys(
        costs,
        &[
            "defer_cost",
            "provision_cost",
            "premium_carry_cost",
            "migration_cost",
            "late_penalty",
            "waste_penalty",
            "review_cost",
        ],
        "costs",
    )?;
    for (key, value) in costs {
        expect_uint(value, key)?;
    }

    let cohorts = expect_arr(field(det, "cohorts", "deterministic")?, "cohorts")?;
    let expected_labels: Vec<&str> = ScenarioKind::ALL.iter().map(|k| k.label()).collect();
    if cohorts.len() != expected_labels.len() {
        return Err(format!(
            "expected {} cohorts, found {}",
            expected_labels.len(),
            cohorts.len()
        ));
    }
    let mut summaries = Vec::new();
    let mut sweeps = Vec::new();
    for (cohort, label) in cohorts.iter().zip(&expected_labels) {
        let fields = expect_obj(cohort, "cohort")?;
        expect_keys(fields, &["scenario", "summary", "sweep"], "cohort")?;
        let scenario = expect_str(field(fields, "scenario", "cohort")?, "scenario")?;
        if scenario != *label {
            return Err(format!(
                "cohort order: expected {label:?}, found {scenario:?}"
            ));
        }
        let what = format!("cohort {label} summary");
        let summary = validate_summary(field(fields, "summary", "cohort")?, &what)?;
        if summary.rows == 0 {
            return Err(format!("cohort {label} decided no rows"));
        }
        let sweep = validate_sweep(
            field(fields, "sweep", "cohort")?,
            summary.rows,
            grid_points,
            &format!("cohort {label} sweep"),
        )?;
        summaries.push(summary);
        sweeps.push(sweep);
    }

    // The headline criterion: on the adversarial incentive-cliff
    // cohort the best sweep threshold strictly beats both naive
    // baselines.
    let cliff = expected_labels
        .iter()
        .position(|l| *l == ScenarioKind::IncentiveCliff.label())
        .expect("incentive cliff is always run");
    let cliff_summary = &summaries[cliff];
    let cliff_best = sweeps[cliff].best_cost;
    if cliff_best >= cliff_summary.always_provision_cost
        || cliff_best >= cliff_summary.never_provision_cost
    {
        return Err(format!(
            "incentive-cliff best threshold cost {cliff_best} must strictly beat \
             always-provision {} and never-provision {}",
            cliff_summary.always_provision_cost, cliff_summary.never_provision_cost
        ));
    }

    let deltas = expect_arr(field(det, "deltas", "deterministic")?, "deltas")?;
    let delta_labels: Vec<&str> = delta_kinds().iter().map(|k| k.label()).collect();
    if deltas.len() != delta_labels.len() {
        return Err(format!(
            "expected {} delta rows, found {}",
            delta_labels.len(),
            deltas.len()
        ));
    }
    for (entry, label) in deltas.iter().zip(&delta_labels) {
        let fields = expect_obj(entry, "delta")?;
        expect_keys(
            fields,
            &[
                "scenario",
                "rows_delta",
                "policy_cost_delta",
                "review_delta",
                "best_cost_delta",
                "best_threshold_shift",
            ],
            "delta",
        )?;
        let scenario = expect_str(field(fields, "scenario", "delta")?, "scenario")?;
        if scenario != *label {
            return Err(format!(
                "delta order: expected {label:?}, found {scenario:?}"
            ));
        }
        let idx = expected_labels
            .iter()
            .position(|l| l == &scenario)
            .expect("delta scenarios are cohort scenarios");
        let checks = [
            (
                "rows_delta",
                summaries[idx].rows as f64 - summaries[0].rows as f64,
            ),
            (
                "policy_cost_delta",
                summaries[idx].policy_cost as f64 - summaries[0].policy_cost as f64,
            ),
            (
                "review_delta",
                summaries[idx].reviews as f64 - summaries[0].reviews as f64,
            ),
            (
                "best_cost_delta",
                sweeps[idx].best_cost as f64 - sweeps[0].best_cost as f64,
            ),
            (
                "best_threshold_shift",
                sweeps[idx].best_threshold - sweeps[0].best_threshold,
            ),
        ];
        for (key, expected) in checks {
            let found = expect_float(field(fields, key, "delta")?, key)?;
            if found != expected {
                return Err(format!(
                    "delta {label} {key}: artifact says {found}, cohorts say {expected}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_source::{obtain_model, ModelSpec};

    fn tiny_options(dir: &Path) -> PolicyBenchOptions {
        PolicyBenchOptions {
            scale: 0.02,
            seed: 7,
            shards: 1,
            grid_points: 5,
            model: None,
            artifact_dir: dir.to_path_buf(),
        }
    }

    fn tiny_model(dir: &Path, options: &PolicyBenchOptions) -> SavedModel {
        let data = crate::model_source::fixture_dataset(options.scale, options.seed);
        obtain_model(
            &data,
            &ModelSpec {
                load_from: None,
                seed: options.seed,
                tune: false,
                save_dir: dir.to_path_buf(),
            },
        )
        .expect("tiny model trains")
    }

    #[test]
    fn parse_policy_flags() {
        let opts = parse_policy_options(&[]).unwrap();
        assert_eq!(opts.shards, 4);
        assert_eq!(opts.grid_points, 11);
        let args: Vec<String> = [
            "--scale", "0.1", "--seed", "9", "--shards", "2", "--grid", "6",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_policy_options(&args).unwrap();
        assert_eq!(opts.scale, 0.1);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.shards, 2);
        assert_eq!(opts.grid_points, 6);
        assert!(parse_policy_options(&["--nope".to_string()]).is_err());
        assert!(parse_policy_options(&["--grid".to_string(), "1".to_string()]).is_err());
    }

    #[test]
    fn canonical_spec_has_overrides() {
        let spec = canonical_spec();
        assert_eq!(spec.overrides.len(), 2);
    }

    #[test]
    fn deterministic_section_is_shard_invariant_and_valid() {
        let dir = std::env::temp_dir().join("survdb_policyart_test");
        let _ = std::fs::remove_dir_all(&dir);
        let options = tiny_options(&dir);
        let model = tiny_model(&dir, &options);

        let report_1 = run_policybench(&options, &model);
        let text_1 = render_policy(&report_1);
        validate_policy(&text_1).expect("one-shard artifact validates");

        let sharded = PolicyBenchOptions {
            shards: 3,
            ..options.clone()
        };
        let report_3 = run_policybench(&sharded, &model);
        let text_3 = render_policy(&report_3);
        validate_policy(&text_3).expect("three-shard artifact validates");

        assert_eq!(
            deterministic_policy_section(&text_1).unwrap(),
            deterministic_policy_section(&text_3).unwrap(),
            "deterministic section must not depend on the shard layout"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_and_table_roundtrip() {
        let dir = std::env::temp_dir().join("survdb_policyart_write_test");
        let _ = std::fs::remove_dir_all(&dir);
        let options = tiny_options(&dir);
        let model = tiny_model(&dir, &options);
        let report = run_policybench(&options, &model);
        let path = write_policy(&dir, &report).expect("write succeeds");
        let text = std::fs::read_to_string(&path).expect("readable");
        validate_policy(&text).expect("written artifact validates");
        let table = cohort_table(&report);
        for kind in ScenarioKind::ALL {
            assert!(table.contains(kind.label()), "table lists {}", kind.label());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validation_rejects_tampering() {
        let dir = std::env::temp_dir().join("survdb_policyart_tamper_test");
        let _ = std::fs::remove_dir_all(&dir);
        let options = tiny_options(&dir);
        let model = tiny_model(&dir, &options);
        let report = run_policybench(&options, &model);
        let text = render_policy(&report);
        // Break a count: the identity check must notice.
        let broken = text.replacen("\"rows\": ", "\"rows\": 1", 1);
        assert!(validate_policy(&broken).is_err());
        // Wrong schema.
        assert!(validate_policy(&text.replace(POLICY_SCHEMA, "survdb-policy/v0")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
