//! End-to-end robustness: how §5 prediction quality degrades as
//! telemetry quality degrades.
//!
//! The paper's models are trained on production telemetry, which is
//! lossy in practice. This module quantifies the cost: it injects each
//! fault class from [`telemetry::faults`] into a fleet's event stream
//! at a ladder of rates, recovers records through the lenient ingest
//! path, re-runs the §5 classification protocol on the recovered
//! population, and reports accuracy / precision / recall deltas
//! against the clean baseline. The `faultsweep` binary in
//! `crates/bench` renders the result as `artifacts/robustness.json`.

use crate::experiment::{Experiment, ExperimentConfig, ExperimentError, GridPreset};
use forest::parallel::run_units;
use forest::ClassificationScores;
use telemetry::{
    reconstruct_records_lenient, Census, EventStream, FaultClass, FaultInjector, FaultPlan,
    FaultSummary, Fleet, FleetConfig, IngestReport, RecoveryPolicy, RegionConfig,
};

/// Configuration of a degradation sweep.
#[derive(Debug, Clone)]
pub struct DegradationConfig {
    /// Region-1 population scale (the §5 protocol needs ≥ 40 usable
    /// examples per cell, so keep this well above test scales).
    pub scale: f64,
    /// Seed for fleet generation and every fault plan.
    pub seed: u64,
    /// The fault-rate ladder, applied to every fault class.
    pub fault_rates: Vec<f64>,
    /// Fault classes to sweep.
    pub classes: Vec<FaultClass>,
    /// Recovery policy used for every ingest, clean baseline included.
    pub policy: RecoveryPolicy,
    /// The §5 protocol configuration shared by every cell.
    pub experiment: ExperimentConfig,
}

impl Default for DegradationConfig {
    fn default() -> DegradationConfig {
        DegradationConfig {
            scale: 0.12,
            seed: 2018,
            fault_rates: vec![0.05, 0.15, 0.30],
            classes: FaultClass::ALL.to_vec(),
            policy: RecoveryPolicy::default(),
            // Two repetitions without tuning keep the full
            // (classes × rates) sweep tractable while preserving the
            // protocol's split/train/score structure.
            experiment: ExperimentConfig {
                repetitions: 2,
                grid: GridPreset::Off,
                ..ExperimentConfig::default()
            },
        }
    }
}

/// The score triple the sweep tracks per cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scores {
    /// Correct classification rate.
    pub accuracy: f64,
    /// Positive predictive value.
    pub precision: f64,
    /// True positive rate.
    pub recall: f64,
}

impl Scores {
    fn of(s: &ClassificationScores) -> Scores {
        Scores {
            accuracy: s.accuracy,
            precision: s.precision,
            recall: s.recall,
        }
    }

    fn delta(self, baseline: Scores) -> Scores {
        Scores {
            accuracy: self.accuracy - baseline.accuracy,
            precision: self.precision - baseline.precision,
            recall: self.recall - baseline.recall,
        }
    }
}

/// One (fault class × rate) cell of the sweep.
#[derive(Debug, Clone)]
pub struct DegradationCell {
    /// Fault class injected.
    pub class: FaultClass,
    /// Fault rate injected.
    pub rate: f64,
    /// What the injector did to the stream.
    pub faults: FaultSummary,
    /// What lenient ingest did to recover it.
    pub ingest: IngestReport,
    /// §5 scores on the recovered population; `None` when the cell's
    /// population was too small to evaluate.
    pub scores: Option<Scores>,
    /// `scores - baseline`; `None` when `scores` is.
    pub delta: Option<Scores>,
}

/// A full degradation sweep: clean baseline plus every cell.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Population scale swept.
    pub scale: f64,
    /// Seed for fleet and fault plans.
    pub seed: u64,
    /// Databases in the clean recovered population.
    pub population: usize,
    /// §5 scores on the clean (fault-free, leniently ingested) fleet.
    pub baseline: Scores,
    /// One cell per (class × rate), classes outermost.
    pub cells: Vec<DegradationCell>,
}

/// Runs the sweep. Errors only when the *clean* population is too
/// small to evaluate — degraded cells that shrink below the floor are
/// reported as cells with `scores: None` instead.
pub fn run_degradation_sweep(
    config: &DegradationConfig,
) -> Result<RobustnessReport, ExperimentError> {
    let _span = obs::span!("degradation_sweep");
    let fleet = Fleet::generate(FleetConfig::new(
        RegionConfig::region_1().scaled(config.scale),
        config.seed,
    ));
    let stream = EventStream::of_fleet(&fleet);
    let experiment = Experiment::new(config.experiment.clone());

    // Clean baseline goes through the same lenient path as the cells
    // so the comparison isolates the faults, not the ingest mode.
    let (clean_records, clean_report) = reconstruct_records_lenient(&stream, &config.policy);
    debug_assert!(clean_report.is_clean(), "clean stream needed repairs");
    let clean_fleet = recovered_fleet(&fleet, clean_records);
    let baseline_result = experiment.try_run(&Census::new(&clean_fleet), None)?;
    let baseline = Scores::of(&baseline_result.forest);

    // Cells are independent given (class, rate): each derives its own
    // fault plan from the shared seed, so they can run on the work
    // queue and still land in deterministic (classes outermost) order.
    let grid: Vec<(FaultClass, f64)> = config
        .classes
        .iter()
        .flat_map(|&class| config.fault_rates.iter().map(move |&rate| (class, rate)))
        .collect();
    let cells = run_units(grid.len(), |unit| {
        let _span = obs::span!("cell");
        let (class, rate) = grid[unit];
        let injector = FaultInjector::new(FaultPlan::single(class, rate, config.seed));
        let (faulted, faults) = injector.inject(&stream);
        let (records, ingest) = reconstruct_records_lenient(&faulted, &config.policy);
        let cell_fleet = recovered_fleet(&fleet, records);
        let scores = experiment
            .try_run(&Census::new(&cell_fleet), None)
            .ok()
            .map(|r| Scores::of(&r.forest));
        DegradationCell {
            class,
            rate,
            faults,
            ingest,
            delta: scores.map(|s| s.delta(baseline)),
            scores,
        }
    });

    obs::count("core.degradation_cells", cells.len() as u64);
    Ok(RobustnessReport {
        scale: config.scale,
        seed: config.seed,
        population: clean_fleet.databases.len(),
        baseline,
        cells,
    })
}

/// A fleet with the generated config and subscriptions but recovered
/// records — what the downstream pipeline sees after degraded ingest.
fn recovered_fleet(original: &Fleet, databases: Vec<telemetry::DatabaseRecord>) -> Fleet {
    Fleet {
        config: original.config.clone(),
        subscriptions: original.subscriptions.clone(),
        databases,
    }
}

// --- deterministic JSON rendering -----------------------------------
//
// The acceptance bar is byte-determinism: same seed ⇒ same
// `robustness.json`. Rust's shortest-roundtrip f64 Display is
// deterministic across platforms, so the report renders itself rather
// than depending on a serializer's map ordering or float formatting.

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Integral values still need a decimal point to read as
        // floats downstream.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null");
    }
}

fn push_scores(out: &mut String, s: &Scores) {
    out.push_str("{\"accuracy\": ");
    push_f64(out, s.accuracy);
    out.push_str(", \"precision\": ");
    push_f64(out, s.precision);
    out.push_str(", \"recall\": ");
    push_f64(out, s.recall);
    out.push('}');
}

impl RobustnessReport {
    /// Renders the report as deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"scale\": {},\n", {
            let mut s = String::new();
            push_f64(&mut s, self.scale);
            s
        }));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"population\": {},\n", self.population));
        out.push_str("  \"baseline\": ");
        push_scores(&mut out, &self.baseline);
        out.push_str(",\n  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"class\": \"{}\", ", cell.class));
            out.push_str("\"rate\": ");
            push_f64(&mut out, cell.rate);
            out.push_str(&format!(
                ", \"events_in\": {}, \"events_out\": {}, \"injected\": {}",
                cell.faults.events_in,
                cell.faults.events_out,
                cell.faults.dropped_events
                    + cell.faults.duplicated_events
                    + cell.faults.reordered_events
                    + cell.faults.corrupted_slos
                    + cell.faults.truncated_events
                    + cell.faults.orphaned_databases,
            ));
            out.push_str(&format!(
                ", \"recovered\": {}, \"quarantined\": {}, \"repairs\": {}, \"discarded\": {}",
                cell.ingest.databases_recovered,
                cell.ingest.databases_quarantined,
                cell.ingest.repairs.total(),
                cell.ingest.events_discarded,
            ));
            out.push_str(", \"scores\": ");
            match &cell.scores {
                Some(s) => push_scores(&mut out, s),
                None => out.push_str("null"),
            }
            out.push_str(", \"delta\": ");
            match &cell.delta {
                Some(s) => push_scores(&mut out, s),
                None => out.push_str("null"),
            }
            out.push('}');
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> DegradationConfig {
        DegradationConfig {
            scale: 0.12,
            seed: 7,
            fault_rates: vec![0.2],
            classes: vec![FaultClass::DropSamples],
            ..DegradationConfig::default()
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let config = tiny_config();
        let a = run_degradation_sweep(&config).unwrap();
        let b = run_degradation_sweep(&config).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn sweep_reports_baseline_and_cells() {
        let report = run_degradation_sweep(&tiny_config()).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert!(report.population >= 40);
        assert!(report.baseline.accuracy > 0.0);
        let cell = &report.cells[0];
        assert!(cell.faults.dropped_events > 0);
        let json = report.to_json();
        assert!(json.contains("\"class\": \"drop-samples\""));
        assert!(json.contains("\"baseline\""));
    }
}
