//! The paper's §5 evaluation protocol for one (region × edition)
//! subgroup.

use features::{FeatureConfig, FeatureExtractor, NgramVocabulary};
use forest::parallel::{derive_seed, run_units};
use forest::tree::TreeParams;
use forest::{
    train_test_split_indices, ClassificationScores, ConfusionMatrix, Dataset, GridSearch,
    MaxFeatures, PartitionedPredictions, RandomForest, RandomForestParams,
    WeightedRandomClassifier,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use survival::{logrank_test, KaplanMeier, SurvivalData};
use telemetry::{Census, Edition};

/// Grid-search breadth (the paper tunes via grid search with 5-fold
/// cross-validation; the presets bound harness runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridPreset {
    /// No tuning: use the default forest parameters.
    Off,
    /// A small grid (2 candidates) with 3-fold CV.
    Light,
    /// A broader grid (6 candidates) with 5-fold CV.
    Full,
}

impl GridPreset {
    fn candidates(self) -> Vec<RandomForestParams> {
        let base = RandomForestParams::default();
        match self {
            GridPreset::Off => vec![base],
            GridPreset::Light => vec![
                RandomForestParams {
                    n_trees: 40,
                    ..base
                },
                RandomForestParams {
                    n_trees: 40,
                    tree: TreeParams {
                        min_samples_leaf: 5,
                        ..base.tree
                    },
                    ..base
                },
            ],
            GridPreset::Full => {
                let mut out = Vec::new();
                for &n_trees in &[40, 80] {
                    for &min_samples_leaf in &[1, 5] {
                        out.push(RandomForestParams {
                            n_trees,
                            tree: TreeParams {
                                min_samples_leaf,
                                ..base.tree
                            },
                            ..base
                        });
                    }
                }
                for &max_features in &[MaxFeatures::Log2, MaxFeatures::Count(16)] {
                    out.push(RandomForestParams {
                        n_trees: 80,
                        max_features,
                        ..base
                    });
                }
                out
            }
        }
    }

    fn folds(self) -> usize {
        match self {
            GridPreset::Off => 0,
            GridPreset::Light => 3,
            GridPreset::Full => 5,
        }
    }
}

/// Experiment configuration (paper defaults: x = 2 days, y = 30 days,
/// 20% test, 5 repetitions, grid-search tuning).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Observation prefix in days.
    pub x_days: f64,
    /// Short/long class boundary in days.
    pub y_days: f64,
    /// Held-out test fraction.
    pub test_fraction: f64,
    /// Repetitions averaged over (the paper uses 5).
    pub repetitions: usize,
    /// Tuning breadth.
    pub grid: GridPreset,
    /// Base seed for splits / models.
    pub seed: u64,
    /// Optional n-gram features (for the §5.4 ablation).
    pub ngrams: Option<(usize, usize)>,
    /// Include the utilization feature family (extension; the paper's
    /// feature list omits it).
    pub include_utilization: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            x_days: 2.0,
            y_days: 30.0,
            test_fraction: 0.2,
            repetitions: 5,
            grid: GridPreset::Light,
            seed: 2018,
            ngrams: None,
            include_utilization: false,
        }
    }
}

/// A `(t, S(t))` series for one predicted grouping's KM curve.
#[derive(Debug, Clone)]
pub struct KmSeries {
    /// Group label (e.g. "predicted-long").
    pub label: String,
    /// Number of databases in the group.
    pub n: usize,
    /// Sampled `(day, survival)` points.
    pub points: Vec<(f64, f64)>,
}

/// KM curves plus log-rank significance of a short/long grouping.
#[derive(Debug, Clone)]
pub struct GroupingAnalysis {
    /// Predicted short-lived group curve.
    pub short_curve: KmSeries,
    /// Predicted long-lived group curve.
    pub long_curve: KmSeries,
    /// Log-rank p-value between the two groups (1.0 when either group
    /// is empty).
    pub logrank_p: f64,
    /// Log-rank statistic.
    pub logrank_statistic: f64,
}

/// The outcome of one subgroup experiment.
#[derive(Debug, Clone)]
pub struct SubgroupResult {
    /// Region label.
    pub region: String,
    /// Edition label ("all" for whole-region runs).
    pub edition: String,
    /// Training positive-class fraction (q).
    pub positive_fraction: f64,
    /// Confidence threshold t = max(q, 1 − q).
    pub confidence_threshold: f64,
    /// Examples in the subgroup.
    pub population: usize,
    /// Mean random-forest scores over repetitions (Figure 5's blue
    /// bars).
    pub forest: ClassificationScores,
    /// Mean baseline scores (Figure 5's yellow bars).
    pub baseline: ClassificationScores,
    /// Mean scores over confident predictions (Figure 7's green bars).
    pub confident: ClassificationScores,
    /// Mean scores over uncertain predictions (Figure 7's red bars).
    pub uncertain: ClassificationScores,
    /// Fraction of predictions that were confident (Table 1).
    pub confident_fraction: f64,
    /// Whole-population predicted grouping (Figure 6 panel).
    pub whole_grouping: GroupingAnalysis,
    /// Baseline predicted grouping (§5.2: not significant).
    pub baseline_grouping: GroupingAnalysis,
    /// Confident-only grouping (Figure 8 panel).
    pub confident_grouping: GroupingAnalysis,
    /// Uncertain-only grouping (Figure 9 panel, Table 2 p-value).
    pub uncertain_grouping: GroupingAnalysis,
    /// Mean OOB accuracy of the tuned forests.
    pub oob_accuracy: f64,
    /// Gini feature importances averaged over repetitions, descending.
    pub importances: Vec<(String, f64)>,
    /// The tuned parameter description.
    pub tuned_params: String,
}

/// Runs the paper's §5 protocol on one subgroup.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ExperimentConfig,
}

/// Why an experiment could not run on a subgroup. Degraded-telemetry
/// sweeps hit these routinely (quarantines shrink populations), so
/// they are errors rather than panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// Fewer examples than the evaluation protocol can split and
    /// cross-validate (minimum 40).
    SubgroupTooSmall {
        /// Examples available.
        examples: usize,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::SubgroupTooSmall { examples } => {
                write!(f, "subgroup too small to evaluate ({examples} examples)")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

impl Experiment {
    /// Creates an experiment runner.
    pub fn new(config: ExperimentConfig) -> Experiment {
        assert!(config.repetitions >= 1, "need at least one repetition");
        Experiment { config }
    }

    /// Runs on the given region census, restricted to one creation
    /// edition (`None` = the whole region population). Panics when the
    /// subgroup is too small — use [`Experiment::try_run`] for
    /// populations that may not be evaluable (e.g. degraded streams).
    pub fn run(&self, census: &Census<'_>, edition: Option<Edition>) -> SubgroupResult {
        match self.try_run(census, edition) {
            Ok(result) => result,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs on the given region census, returning an error instead of
    /// panicking when the subgroup cannot be evaluated.
    pub fn try_run(
        &self,
        census: &Census<'_>,
        edition: Option<Edition>,
    ) -> Result<SubgroupResult, ExperimentError> {
        let ngrams = self.config.ngrams.map(|(n, k)| {
            NgramVocabulary::fit(
                census
                    .fleet()
                    .databases
                    .iter()
                    .map(|d| d.database_name.as_str()),
                n,
                k,
            )
        });
        let extractor = FeatureExtractor::new(
            census,
            FeatureConfig {
                x_days: self.config.x_days,
                y_days: self.config.y_days,
                ngrams,
                include_utilization: self.config.include_utilization,
            },
        );
        let (dataset, survival) = extractor.build_dataset(census, edition);
        if dataset.len() < 40 {
            return Err(ExperimentError::SubgroupTooSmall {
                examples: dataset.len(),
            });
        }
        Ok(self.run_on_dataset(dataset, survival, census, edition))
    }

    /// Runs the protocol on an explicit dataset (exposed for ablations).
    ///
    /// Repetitions are independent work units: repetition `r` derives
    /// every seed it needs (split, grid search, model, baseline) from
    /// `derive_seed(cfg.seed, r)`, and results are merged in repetition
    /// order — so the outcome is identical whatever the thread count.
    /// Splits, folds, and training sets are index views over the one
    /// dataset; no feature value is copied per repetition.
    pub fn run_on_dataset(
        &self,
        dataset: Dataset,
        survival: Vec<(f64, bool)>,
        census: &Census<'_>,
        edition: Option<Edition>,
    ) -> SubgroupResult {
        let _span = obs::span!("experiment");
        let cfg = &self.config;
        let q = dataset.class_fraction(1);
        let threshold = forest::confidence_threshold(q);

        let reps = run_units(cfg.repetitions, |rep| {
            let _span = obs::span!("repetition");
            let rep_seed = derive_seed(cfg.seed, rep as u64);
            let (train_rows, test_rows) =
                train_test_split_indices(&dataset, cfg.test_fraction, rep_seed);
            let train = dataset.view(&train_rows);

            // Tune on the training set.
            let params = match cfg.grid {
                GridPreset::Off => RandomForestParams::default(),
                preset => {
                    GridSearch::new(preset.candidates(), preset.folds())
                        .run_on(&dataset, &train_rows, derive_seed(rep_seed, 1))
                        .best_params
                }
            };
            let tuned = format!(
                "trees={} depth={} leaf={} max_features={:?}",
                params.n_trees,
                params.tree.max_depth,
                params.tree.min_samples_leaf,
                params.max_features
            );

            let model = RandomForest::fit_view(&train, &params, derive_seed(rep_seed, 2));

            // Forest predictions on the test set.
            let probs: Vec<f64> = test_rows
                .iter()
                .map(|&i| model.predict_positive_proba_row(&dataset, i))
                .collect();
            let predicted: Vec<usize> = probs.iter().map(|&p| (p > 0.5) as usize).collect();
            let actual: Vec<usize> = test_rows.iter().map(|&i| dataset.label(i)).collect();
            let forest_scores = ConfusionMatrix::from_predictions(&predicted, &actual).scores();

            // Baseline.
            let baseline = WeightedRandomClassifier::fit_view(&train);
            let mut rng = SmallRng::seed_from_u64(derive_seed(rep_seed, 3));
            let baseline_preds = baseline.predict_many(test_rows.len(), &mut rng);
            let baseline_scores =
                ConfusionMatrix::from_predictions(&baseline_preds, &actual).scores();

            // Confidence partition.
            let partition = PartitionedPredictions::partition(&probs, train.class_fraction(1));
            let score_of = |subset: &[(usize, f64, usize)]| -> ClassificationScores {
                let mut m = ConfusionMatrix::default();
                for &(i, _, pred) in subset {
                    m.record(pred == 1, actual[i] == 1);
                }
                m.scores()
            };
            let confident_scores = score_of(&partition.confident);
            let uncertain_scores = score_of(&partition.uncertain);

            // Survival groupings for this repetition's test set.
            let mut whole = Vec::with_capacity(test_rows.len());
            let mut confident_pool = Vec::new();
            let mut uncertain_pool = Vec::new();
            for (i, (&pred, &p)) in predicted.iter().zip(&probs).enumerate() {
                let pair = survival[test_rows[i]];
                whole.push((pred, pair));
                let confident = p >= threshold || p <= 1.0 - threshold;
                if confident {
                    confident_pool.push((pred, pair));
                } else {
                    uncertain_pool.push((pred, pair));
                }
            }
            let baseline_pool: Vec<(usize, (f64, bool))> = baseline_preds
                .iter()
                .enumerate()
                .map(|(i, &pred)| (pred, survival[test_rows[i]]))
                .collect();

            RepOutcome {
                forest: forest_scores,
                baseline: baseline_scores,
                confident: confident_scores,
                uncertain: uncertain_scores,
                confident_count: partition.confident.len(),
                uncertain_count: partition.uncertain.len(),
                oob: model.oob_accuracy(),
                importances: model.feature_importances(),
                tuned,
                whole,
                baseline_pool,
                confident_pool,
                uncertain_pool,
            }
        });
        obs::count("core.repetitions_completed", reps.len() as u64);

        // Merge in repetition order.
        let mut forest_scores = Vec::with_capacity(reps.len());
        let mut baseline_scores = Vec::with_capacity(reps.len());
        let mut confident_scores = Vec::with_capacity(reps.len());
        let mut uncertain_scores = Vec::with_capacity(reps.len());
        let mut confident_counts = (0usize, 0usize);
        let mut oob_sum = 0.0;
        let mut oob_n = 0usize;
        let mut importance_acc: Vec<f64> = vec![0.0; dataset.feature_count()];
        let mut pool_whole = GroupPool::default();
        let mut pool_baseline = GroupPool::default();
        let mut pool_confident = GroupPool::default();
        let mut pool_uncertain = GroupPool::default();
        let tuned_desc = reps.first().map_or_else(String::new, |r| r.tuned.clone());

        for rep in &reps {
            forest_scores.push(rep.forest);
            baseline_scores.push(rep.baseline);
            confident_scores.push(rep.confident);
            uncertain_scores.push(rep.uncertain);
            confident_counts.0 += rep.confident_count;
            confident_counts.1 += rep.uncertain_count;
            if let Some(oob) = rep.oob {
                oob_sum += oob;
                oob_n += 1;
            }
            for (acc, v) in importance_acc.iter_mut().zip(&rep.importances) {
                *acc += v;
            }
            for &(pred, pair) in &rep.whole {
                pool_whole.push(pred, pair);
            }
            for &(pred, pair) in &rep.baseline_pool {
                pool_baseline.push(pred, pair);
            }
            for &(pred, pair) in &rep.confident_pool {
                pool_confident.push(pred, pair);
            }
            for &(pred, pair) in &rep.uncertain_pool {
                pool_uncertain.push(pred, pair);
            }
        }

        let total = importance_acc.iter().sum::<f64>();
        if total > 0.0 {
            importance_acc.iter_mut().for_each(|v| *v /= total);
        }
        let mut importances: Vec<(String, f64)> = dataset
            .feature_names()
            .iter()
            .cloned()
            .zip(importance_acc)
            .collect();
        // total_cmp: importances can be NaN-free by construction today,
        // but a degenerate dataset must not turn a sort into a panic.
        importances.sort_by(|a, b| b.1.total_cmp(&a.1));

        SubgroupResult {
            region: census.fleet().config.region.id.to_string(),
            edition: edition.map_or_else(|| "all".to_string(), |e| e.to_string()),
            positive_fraction: q,
            confidence_threshold: threshold,
            population: dataset.len(),
            forest: ClassificationScores::mean(&forest_scores),
            baseline: ClassificationScores::mean(&baseline_scores),
            confident: ClassificationScores::mean(&confident_scores),
            uncertain: ClassificationScores::mean(&uncertain_scores),
            confident_fraction: confident_counts.0 as f64
                / (confident_counts.0 + confident_counts.1).max(1) as f64,
            whole_grouping: pool_whole.analyze(),
            baseline_grouping: pool_baseline.analyze(),
            confident_grouping: pool_confident.analyze(),
            uncertain_grouping: pool_uncertain.analyze(),
            oob_accuracy: if oob_n > 0 {
                oob_sum / oob_n as f64
            } else {
                0.0
            },
            importances,
            tuned_params: tuned_desc,
        }
    }
}

/// Everything one repetition contributes to the subgroup result.
#[derive(Debug, Clone)]
struct RepOutcome {
    forest: ClassificationScores,
    baseline: ClassificationScores,
    confident: ClassificationScores,
    uncertain: ClassificationScores,
    confident_count: usize,
    uncertain_count: usize,
    oob: Option<f64>,
    importances: Vec<f64>,
    tuned: String,
    whole: Vec<(usize, (f64, bool))>,
    baseline_pool: Vec<(usize, (f64, bool))>,
    confident_pool: Vec<(usize, (f64, bool))>,
    uncertain_pool: Vec<(usize, (f64, bool))>,
}

/// Survival pairs pooled per predicted class.
#[derive(Debug, Clone, Default)]
struct GroupPool {
    short: Vec<(f64, bool)>,
    long: Vec<(f64, bool)>,
}

impl GroupPool {
    fn push(&mut self, predicted: usize, pair: (f64, bool)) {
        if predicted == 1 {
            self.long.push(pair);
        } else {
            self.short.push(pair);
        }
    }

    fn analyze(&self) -> GroupingAnalysis {
        let curve = |pairs: &[(f64, bool)], label: &str| -> KmSeries {
            let km = KaplanMeier::fit(&SurvivalData::from_pairs(pairs));
            KmSeries {
                label: label.to_string(),
                n: pairs.len(),
                points: km.sample_curve(150.0, 51),
            }
        };
        let (p, stat) = if self.short.is_empty() || self.long.is_empty() {
            (1.0, 0.0)
        } else {
            let r = logrank_test(
                &SurvivalData::from_pairs(&self.short),
                &SurvivalData::from_pairs(&self.long),
            );
            (r.p_value, r.statistic)
        };
        GroupingAnalysis {
            short_curve: curve(&self.short, "predicted-short"),
            long_curve: curve(&self.long, "predicted-long"),
            logrank_p: p,
            logrank_statistic: stat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};
    use telemetry::RegionId;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            repetitions: 2,
            grid: GridPreset::Off,
            ..ExperimentConfig::default()
        }
    }

    fn study() -> Study {
        Study::load_region(
            StudyConfig {
                scale: 0.12,
                seed: 99,
            },
            RegionId::Region1,
        )
    }

    #[test]
    fn forest_beats_baseline_significantly() {
        let study = study();
        let census = study.census(RegionId::Region1);
        let result = Experiment::new(quick_config()).run(&census, None);
        assert!(
            result.forest.accuracy > result.baseline.accuracy + 0.1,
            "forest {:.3} vs baseline {:.3}",
            result.forest.accuracy,
            result.baseline.accuracy
        );
        assert!(result.forest.accuracy > 0.7);
        // Forest grouping separates; baseline does not.
        assert!(result.whole_grouping.logrank_p < 1e-4);
        assert!(result.baseline_grouping.logrank_p > 0.001);
    }

    #[test]
    fn confident_scores_dominate_whole_population() {
        let study = study();
        let census = study.census(RegionId::Region1);
        let result = Experiment::new(quick_config()).run(&census, None);
        assert!(result.confident.accuracy >= result.forest.accuracy - 0.02);
        assert!(result.confident_fraction > 0.3 && result.confident_fraction <= 1.0);
        // Threshold formula.
        let q = result.positive_fraction;
        assert!((result.confidence_threshold - q.max(1.0 - q)).abs() < 1e-12);
    }

    #[test]
    fn km_series_shapes() {
        let study = study();
        let census = study.census(RegionId::Region1);
        let result = Experiment::new(quick_config()).run(&census, None);
        for g in [&result.whole_grouping, &result.confident_grouping] {
            assert_eq!(g.long_curve.points.len(), 51);
            assert_eq!(g.long_curve.points[0].1, 1.0);
            // Long group survives better at day 30.
            let s_long = g
                .long_curve
                .points
                .iter()
                .find(|(t, _)| *t >= 30.0)
                .unwrap()
                .1;
            let s_short = g
                .short_curve
                .points
                .iter()
                .find(|(t, _)| *t >= 30.0)
                .unwrap()
                .1;
            assert!(s_long > s_short, "{s_long} vs {s_short}");
        }
    }

    #[test]
    fn importances_are_normalized_and_ranked() {
        let study = study();
        let census = study.census(RegionId::Region1);
        let result = Experiment::new(quick_config()).run(&census, None);
        let total: f64 = result.importances.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-6);
        for w in result.importances.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn repetitions_are_thread_count_invariant() {
        let study = study();
        let census = study.census(RegionId::Region1);
        let experiment = Experiment::new(quick_config());
        forest::set_thread_limit(Some(1));
        let sequential = experiment.run(&census, None);
        forest::set_thread_limit(Some(4));
        let threaded = experiment.run(&census, None);
        forest::set_thread_limit(None);
        assert_eq!(sequential.forest, threaded.forest);
        assert_eq!(sequential.baseline, threaded.baseline);
        assert_eq!(sequential.confident_fraction, threaded.confident_fraction);
        assert_eq!(sequential.oob_accuracy, threaded.oob_accuracy);
        assert_eq!(sequential.importances, threaded.importances);
        assert_eq!(
            sequential.whole_grouping.logrank_p,
            threaded.whole_grouping.logrank_p
        );
    }
}
