//! Deterministic JSON rendering for artifacts.
//!
//! The reproduction's acceptance bar is byte-determinism: re-running
//! `repro` or `faultsweep` with the same seed must leave every
//! `artifacts/*.json` byte-identical. A generic serializer makes that
//! promise fragile — map iteration order and float formatting are
//! implementation details — so artifacts render through this small
//! value tree instead. Floats follow one rule everywhere (finite
//! integral values print with a trailing `.0`, everything else prints
//! Rust's shortest roundtrip form, non-finite prints `null`), object
//! keys appear in the order the code pushes them, and hash maps are
//! sorted before rendering.

use crate::degradation::Scores;
use crate::experiment::{GroupingAnalysis, KmSeries, SubgroupResult};
use crate::observations::{EditionSurvival, ObservationReport};
use crate::provisioning::{PlacementPolicy, ProvisioningOutcome};
use crate::segments::SegmentReport;
use forest::ClassificationScores;
use std::collections::{BTreeMap, HashMap};

/// A JSON value with deterministic rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (renders without a decimal point).
    UInt(u64),
    /// A signed integer (renders without a decimal point).
    Int(i64),
    /// A float (renders with at least one decimal; non-finite → null).
    Float(f64),
    /// A string (escaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in push order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as pretty-printed JSON (two-space indent),
    /// with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => push_f64(out, *v),
            Json::Str(s) => push_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    push_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// The one float rule (shared with `RobustnessReport::to_json`):
/// integral finite values keep a decimal point so they read as floats
/// downstream; everything else uses Rust's shortest-roundtrip Display;
/// non-finite values become `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null");
    }
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the deterministic JSON tree. Every artifact type
/// implements this; the harness's `write_artifact` accepts any
/// implementor.
pub trait ToJson {
    /// The value as a JSON tree.
    fn to_json_value(&self) -> Json;
}

impl ToJson for Json {
    fn to_json_value(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json_value(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for usize {
    fn to_json_value(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for u32 {
    fn to_json_value(&self) -> Json {
        Json::UInt(u64::from(*self))
    }
}

impl ToJson for u64 {
    fn to_json_value(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for i64 {
    fn to_json_value(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for f64 {
    fn to_json_value(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json_value(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Json {
        match self {
            Some(v) => v.to_json_value(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json_value(&self) -> Json {
        (*self).to_json_value()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json_value(&self) -> Json {
        Json::Arr(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json_value(&self) -> Json {
        Json::Arr(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson, D: ToJson> ToJson for (A, B, C, D) {
    fn to_json_value(&self) -> Json {
        Json::Arr(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
            self.3.to_json_value(),
        ])
    }
}

impl<T: ToJson> ToJson for BTreeMap<String, T> {
    fn to_json_value(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<T: ToJson> ToJson for HashMap<String, T> {
    fn to_json_value(&self) -> Json {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Json::Obj(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_json_value()))
                .collect(),
        )
    }
}

impl ToJson for ClassificationScores {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("accuracy", Json::Float(self.accuracy)),
            ("precision", Json::Float(self.precision)),
            ("recall", Json::Float(self.recall)),
            ("support", Json::UInt(self.support as u64)),
        ])
    }
}

impl ToJson for Scores {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("accuracy", Json::Float(self.accuracy)),
            ("precision", Json::Float(self.precision)),
            ("recall", Json::Float(self.recall)),
        ])
    }
}

impl ToJson for KmSeries {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.to_json_value()),
            ("n", self.n.to_json_value()),
            ("points", self.points.to_json_value()),
        ])
    }
}

impl ToJson for GroupingAnalysis {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("short_curve", self.short_curve.to_json_value()),
            ("long_curve", self.long_curve.to_json_value()),
            ("logrank_p", Json::Float(self.logrank_p)),
            ("logrank_statistic", Json::Float(self.logrank_statistic)),
        ])
    }
}

impl ToJson for SubgroupResult {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("region", self.region.to_json_value()),
            ("edition", self.edition.to_json_value()),
            ("positive_fraction", Json::Float(self.positive_fraction)),
            (
                "confidence_threshold",
                Json::Float(self.confidence_threshold),
            ),
            ("population", self.population.to_json_value()),
            ("forest", self.forest.to_json_value()),
            ("baseline", self.baseline.to_json_value()),
            ("confident", self.confident.to_json_value()),
            ("uncertain", self.uncertain.to_json_value()),
            ("confident_fraction", Json::Float(self.confident_fraction)),
            ("whole_grouping", self.whole_grouping.to_json_value()),
            ("baseline_grouping", self.baseline_grouping.to_json_value()),
            (
                "confident_grouping",
                self.confident_grouping.to_json_value(),
            ),
            (
                "uncertain_grouping",
                self.uncertain_grouping.to_json_value(),
            ),
            ("oob_accuracy", Json::Float(self.oob_accuracy)),
            ("importances", self.importances.to_json_value()),
            ("tuned_params", self.tuned_params.to_json_value()),
        ])
    }
}

impl ToJson for EditionSurvival {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("edition", self.edition.to_json_value()),
            ("n", self.n.to_json_value()),
            ("s30", Json::Float(self.s30)),
            ("s60", Json::Float(self.s60)),
            ("s120", Json::Float(self.s120)),
            ("always_s60", Json::Float(self.always_s60)),
            ("always_n", self.always_n.to_json_value()),
            ("changed_s60", Json::Float(self.changed_s60)),
            ("changed_n", self.changed_n.to_json_value()),
        ])
    }
}

impl ToJson for ObservationReport {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("region", self.region.to_json_value()),
            (
                "ephemeral_only_subscription_share",
                Json::Float(self.ephemeral_only_subscription_share),
            ),
            (
                "ephemeral_only_database_share",
                Json::Float(self.ephemeral_only_database_share),
            ),
            ("edition_survival", self.edition_survival.to_json_value()),
            ("edition_logrank_p", Json::Float(self.edition_logrank_p)),
            (
                "edition_change_rates",
                self.edition_change_rates.to_json_value(),
            ),
        ])
    }
}

impl ToJson for PlacementPolicy {
    fn to_json_value(&self) -> Json {
        Json::Str(
            match self {
                PlacementPolicy::Agnostic => "Agnostic",
                PlacementPolicy::LongevityGuided => "LongevityGuided",
            }
            .to_string(),
        )
    }
}

impl ToJson for ProvisioningOutcome {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("policy", self.policy.to_json_value()),
            ("placed", self.placed.to_json_value()),
            ("clusters_opened", self.clusters_opened.to_json_value()),
            ("disruptions", self.disruptions.to_json_value()),
            (
                "wasted_disruptions",
                self.wasted_disruptions.to_json_value(),
            ),
            ("moves", self.moves.to_json_value()),
            ("wasted_moves", self.wasted_moves.to_json_value()),
        ])
    }
}

impl ToJson for SegmentReport {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("cutoff_epoch_seconds", Json::Int(self.cutoff_epoch_seconds)),
            ("segment_sizes", self.segment_sizes.to_json_value()),
            (
                "out_of_time_accuracy",
                self.out_of_time_accuracy.to_json_value(),
            ),
            ("cycler_precision", self.cycler_precision.to_json_value()),
            ("evaluated", self.evaluated.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::UInt(17).render(), "17\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::Float(17.0).render(), "17.0\n");
        assert_eq!(Json::Float(0.125).render(), "0.125\n");
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
        assert_eq!(Json::Str("a\"b".into()).render(), "\"a\\\"b\"\n");
    }

    #[test]
    fn nested_pretty_layout() {
        let v = Json::obj(vec![
            ("name", Json::Str("x".into())),
            ("points", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.render(),
            "{\n  \"name\": \"x\",\n  \"points\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}\n"
        );
    }

    #[test]
    fn hash_maps_render_sorted() {
        let mut m: HashMap<String, usize> = HashMap::new();
        m.insert("zeta".into(), 1);
        m.insert("alpha".into(), 2);
        m.insert("mid".into(), 3);
        let rendered = m.to_json_value().render();
        let alpha = rendered.find("alpha").unwrap();
        let mid = rendered.find("mid").unwrap();
        let zeta = rendered.find("zeta").unwrap();
        assert!(alpha < mid && mid < zeta, "{rendered}");
    }

    #[test]
    fn rendering_is_reproducible() {
        let scores = ClassificationScores {
            accuracy: 0.875,
            precision: 1.0 / 3.0,
            recall: 1.0,
            support: 40,
        };
        let a = scores.to_json_value().render();
        let b = scores.to_json_value().render();
        assert_eq!(a, b);
        assert!(a.contains("\"support\": 40"));
        assert!(a.contains("\"recall\": 1.0"));
    }
}
