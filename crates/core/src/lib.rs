//! # survdb — Survivability of Cloud Databases: Factors and Prediction
//!
//! A full reproduction of the SIGMOD'18 study *Survivability of Cloud
//! Databases — Factors and Prediction* (Picado, Lang, Thayer) on a
//! synthetic, Azure-SQLDB-like fleet (real telemetry is closed; see
//! DESIGN.md for the substitution argument).
//!
//! The crate ties the workspace substrates together:
//!
//! * [`study`] — loads the three-region population and exposes
//!   region censuses (the paper's §3.3 dataset).
//! * [`experiment`] — the §5 evaluation protocol: per (region ×
//!   creation-edition) subgroup, an 80/20 stratified split, grid-search
//!   tuning with 5-fold cross-validation, five repetitions, random
//!   forest vs weighted-random baseline, confidence partitioning, KM
//!   curves of the predicted groups, and log-rank significance.
//! * [`degradation`] — robustness: the §5 protocol re-run on
//!   fault-injected telemetry recovered through lenient ingest, with
//!   score deltas against the clean baseline.
//! * [`observations`] — the §3.3 observations (3.1–3.3) as checkable
//!   statistics.
//! * [`provisioning`] — the §3.1 motivation made concrete: a
//!   longevity-guided tenant-placement simulator comparing a
//!   prediction-guided policy against a longevity-agnostic one.
//! * [`segments`] — §7's actionable conclusion: subscription-level
//!   behaviour segments assigned from history and validated out of
//!   time.
//! * [`report`] — plain-text tables and ASCII survival curves used by
//!   the `repro` harness and the examples.
//! * [`json`] — deterministic JSON rendering (stable key order,
//!   one float rule) so re-running a harness leaves artifacts
//!   byte-identical.
//!
//! # Quickstart
//!
//! ```no_run
//! use survdb::study::{Study, StudyConfig};
//! use survdb::experiment::{Experiment, ExperimentConfig};
//! use telemetry::{Edition, RegionId};
//!
//! let study = Study::load(StudyConfig { scale: 0.2, ..StudyConfig::default() });
//! let census = study.census(RegionId::Region1);
//! let result = Experiment::new(ExperimentConfig::default())
//!     .run(&census, Some(Edition::Standard));
//! println!("accuracy {:.2} (baseline {:.2})",
//!          result.forest.accuracy, result.baseline.accuracy);
//! ```

pub mod degradation;
pub mod experiment;
pub mod json;
pub mod observations;
pub mod provisioning;
pub mod report;
pub mod segments;
pub mod study;

pub use degradation::{run_degradation_sweep, DegradationConfig, RobustnessReport};
pub use experiment::{Experiment, ExperimentConfig, ExperimentError, GridPreset, SubgroupResult};
pub use json::{Json, ToJson};
pub use observations::ObservationReport;
pub use provisioning::{PlacementPolicy, ProvisioningConfig, ProvisioningOutcome};
pub use segments::{segment_report, Segment, SegmentConfig, SegmentReport};
pub use study::{Study, StudyConfig};
