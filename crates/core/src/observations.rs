//! The paper's §3.3 observations as checkable statistics.

use survival::{logrank_test_k, KaplanMeier, SurvivalData};
use telemetry::{Census, Edition};

/// Obs 3.1 acceptance bound on the subscription side: the paper's §3.1
/// finding is that a *small minority* of subscriptions create only
/// ephemeral (≤ 30-day) databases, so the share must stay strictly
/// below this cap.
pub const OBS31_EPHEMERAL_SUBSCRIPTION_SHARE_MAX: f64 = 0.25;

/// Obs 3.1 acceptance bound on the database side: those few
/// subscriptions nonetheless own a *disproportionate* slice of all
/// databases — the database share must strictly exceed the
/// subscription share by at least this multiple.
pub const OBS31_DATABASE_TO_SUBSCRIPTION_SHARE_RATIO: f64 = 2.0;

/// Quantified observations 3.1–3.3 for one region.
#[derive(Debug, Clone)]
pub struct ObservationReport {
    /// Region label.
    pub region: String,
    /// Obs 3.1: share of subscriptions creating only ephemeral
    /// databases.
    pub ephemeral_only_subscription_share: f64,
    /// Obs 3.1: share of all databases owned by those subscriptions.
    pub ephemeral_only_database_share: f64,
    /// Obs 3.2: per-edition KM survival at day 30 / 60 / 120
    /// (2-day-minimum population).
    pub edition_survival: Vec<EditionSurvival>,
    /// Obs 3.2: k-sample log-rank p-value across the three editions.
    pub edition_logrank_p: f64,
    /// Obs 3.3: per-edition fraction of databases that changed edition.
    pub edition_change_rates: Vec<(String, f64)>,
}

/// One edition's survival snapshot.
#[derive(Debug, Clone)]
pub struct EditionSurvival {
    /// Edition label.
    pub edition: String,
    /// Population size (2-day minimum).
    pub n: usize,
    /// `S(30)`.
    pub s30: f64,
    /// `S(60)`.
    pub s60: f64,
    /// `S(120)`.
    pub s120: f64,
    /// Sub-categorized curves: survival at day 60 for databases that
    /// never changed edition ("always") vs those that did ("changed"),
    /// with group sizes — Figure 3's sub-categorization.
    pub always_s60: f64,
    /// "always" group size.
    pub always_n: usize,
    /// "changed" group survival at day 60.
    pub changed_s60: f64,
    /// "changed" group size.
    pub changed_n: usize,
}

impl ObservationReport {
    /// Computes the report for one region census.
    pub fn compute(census: &Census<'_>) -> ObservationReport {
        let (sub_share, db_share) = census.ephemeral_only_stats();

        let mut edition_survival = Vec::new();
        let mut edition_data = Vec::new();
        for edition in Edition::ALL {
            let pairs = census.survival_pairs_where(2.0, |db| db.creation_edition() == edition);
            let always = census.survival_pairs_where(2.0, |db| {
                db.creation_edition() == edition && !db.changed_edition()
            });
            let changed = census.survival_pairs_where(2.0, |db| {
                db.creation_edition() == edition && db.changed_edition()
            });
            let km = KaplanMeier::fit(&SurvivalData::from_pairs(&pairs));
            let km_always = KaplanMeier::fit(&SurvivalData::from_pairs(&always));
            let km_changed = KaplanMeier::fit(&SurvivalData::from_pairs(&changed));
            edition_survival.push(EditionSurvival {
                edition: edition.to_string(),
                n: pairs.len(),
                s30: km.survival_at(30.0),
                s60: km.survival_at(60.0),
                s120: km.survival_at(120.0),
                always_s60: km_always.survival_at(60.0),
                always_n: always.len(),
                changed_s60: km_changed.survival_at(60.0),
                changed_n: changed.len(),
            });
            edition_data.push(SurvivalData::from_pairs(&pairs));
        }

        let refs: Vec<&SurvivalData> = edition_data.iter().collect();
        let edition_logrank_p = logrank_test_k(&refs).p_value;

        let edition_change_rates = Edition::ALL
            .iter()
            .map(|&e| (e.to_string(), census.edition_change_rate(e)))
            .collect();

        ObservationReport {
            region: census.fleet().config.region.id.to_string(),
            ephemeral_only_subscription_share: sub_share,
            ephemeral_only_database_share: db_share,
            edition_survival,
            edition_logrank_p,
            edition_change_rates,
        }
    }

    /// True when all three observations hold in this region:
    /// 3.1 few subscriptions / many databases; 3.2 editions differ
    /// significantly; 3.3 Premium changes edition far more often.
    pub fn all_hold(&self) -> bool {
        let obs31 = self.ephemeral_only_subscription_share < OBS31_EPHEMERAL_SUBSCRIPTION_SHARE_MAX
            && self.ephemeral_only_database_share
                > OBS31_DATABASE_TO_SUBSCRIPTION_SHARE_RATIO
                    * self.ephemeral_only_subscription_share;
        let obs32 = self.edition_logrank_p < 0.001;
        let basic = self.edition_change_rates[0].1;
        let standard = self.edition_change_rates[1].1;
        let premium = self.edition_change_rates[2].1;
        let obs33 = premium > 3.0 * standard.max(basic).max(1e-9);
        obs31 && obs32 && obs33
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};
    use telemetry::RegionId;

    #[test]
    fn observations_hold_in_every_region() {
        let study = Study::load(StudyConfig {
            scale: 0.15,
            seed: 4,
        });
        for id in RegionId::ALL {
            let census = study.census(id);
            let report = ObservationReport::compute(&census);
            assert!(report.all_hold(), "{id}: {report:?}");
        }
    }

    #[test]
    fn edition_logrank_p_values_are_pinned() {
        // Region-2 once sat at p = 0.00103 — an accepted failure just
        // above the 0.001 acceptance line. The per-subscription
        // generator (telemetry::fleet) moved every region decisively
        // below the line; pin the exact deterministic values so any
        // calibration drift back toward the boundary fails loudly here
        // instead of flaking `observations_hold_in_every_region`.
        let study = Study::load(StudyConfig {
            scale: 0.15,
            seed: 4,
        });
        let pinned = [
            2.90889399896201e-12,
            3.0121445914552712e-24,
            4.218103995338016e-5,
        ];
        for (id, expected) in RegionId::ALL.into_iter().zip(pinned) {
            let report = ObservationReport::compute(&study.census(id));
            assert_eq!(
                report.edition_logrank_p, expected,
                "{id}: log-rank p drifted from its pinned value"
            );
            // Regardless of the exact pin, every region must clear the
            // acceptance line with at least an order of magnitude.
            assert!(report.edition_logrank_p < 1e-4, "{id}: margin eroded");
        }
    }

    /// A synthetic report where Obs 3.2 and 3.3 comfortably hold, so
    /// `all_hold` isolates the Obs 3.1 thresholds.
    fn synthetic_report(sub_share: f64, db_share: f64) -> ObservationReport {
        ObservationReport {
            region: "synthetic".to_string(),
            ephemeral_only_subscription_share: sub_share,
            ephemeral_only_database_share: db_share,
            edition_survival: Vec::new(),
            edition_logrank_p: 1e-6,
            edition_change_rates: vec![
                ("Basic".to_string(), 0.01),
                ("Standard".to_string(), 0.02),
                ("Premium".to_string(), 0.50),
            ],
        }
    }

    #[test]
    fn obs31_thresholds_are_pinned() {
        // The named constants carry the §3.1 acceptance semantics; a
        // drive-by change to either must fail here, not silently
        // loosen the reproduction.
        assert_eq!(OBS31_EPHEMERAL_SUBSCRIPTION_SHARE_MAX, 0.25);
        assert_eq!(OBS31_DATABASE_TO_SUBSCRIPTION_SHARE_RATIO, 2.0);

        // Comfortably inside both bounds.
        assert!(synthetic_report(0.10, 0.30).all_hold());
        // The subscription cap is strict: exactly 0.25 fails.
        assert!(!synthetic_report(0.25, 0.90).all_hold());
        assert!(synthetic_report(0.2499, 0.90).all_hold());
        // The database-share ratio is strict: exactly 2x fails.
        assert!(!synthetic_report(0.10, 0.20).all_hold());
        assert!(synthetic_report(0.10, 0.2001).all_hold());
    }

    #[test]
    fn basic_outlives_premium() {
        // Obs 3.2's specific direction: "Basic databases have a rate of
        // decay significantly lower than Premium databases."
        let study = Study::load_region(
            StudyConfig {
                scale: 0.15,
                seed: 4,
            },
            RegionId::Region1,
        );
        let report = ObservationReport::compute(&study.census(RegionId::Region1));
        let basic = &report.edition_survival[0];
        let premium = &report.edition_survival[2];
        assert!(basic.s60 > premium.s60, "{} vs {}", basic.s60, premium.s60);
        assert!(basic.s30 > premium.s30);
    }

    #[test]
    fn premium_population_is_smallest() {
        let study = Study::load_region(
            StudyConfig {
                scale: 0.15,
                seed: 4,
            },
            RegionId::Region1,
        );
        let report = ObservationReport::compute(&study.census(RegionId::Region1));
        assert!(report.edition_survival[2].n < report.edition_survival[0].n);
        assert!(report.edition_survival[2].n < report.edition_survival[1].n);
    }
}
