//! Longevity-guided resource provisioning (paper §3.1).
//!
//! The paper motivates lifespan prediction with two back-end policies:
//! sparing soon-to-be-dropped databases from non-critical update
//! disruptions, and keeping churning databases away from load-balancer
//! consolidation. This module makes that concrete: a daily-tick
//! placement simulation comparing a longevity-agnostic policy against a
//! prediction-guided one on the *actual* (simulated-ground-truth) drop
//! times.

use simtime::{Duration, Timestamp};
use std::collections::HashMap;
use telemetry::Census;

/// A database's predicted longevity bucket at placement time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictedLongevity {
    /// Confidently predicted to die within 30 days.
    Short,
    /// Confidently predicted to outlive 30 days.
    Long,
    /// Prediction fell in the uncertain band (§5.3): route to the
    /// designated mixed pool.
    Uncertain,
}

impl PredictedLongevity {
    /// Buckets a positive-class probability with the paper's confidence
    /// threshold.
    pub fn from_probability(p: f64, threshold: f64) -> PredictedLongevity {
        if p >= threshold {
            PredictedLongevity::Long
        } else if p <= 1.0 - threshold {
            PredictedLongevity::Short
        } else {
            PredictedLongevity::Uncertain
        }
    }
}

/// Placement policy under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// One pool; every cluster receives updates and consolidation.
    Agnostic,
    /// Three pools keyed by [`PredictedLongevity`]; the short pool is
    /// exempt from non-critical updates and from consolidation (it
    /// drains by itself).
    LongevityGuided,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct ProvisioningConfig {
    /// Databases per cluster.
    pub cluster_capacity: usize,
    /// Days between non-critical update waves.
    pub update_interval_days: i64,
    /// A disruption is wasted if the database drops within this many
    /// days after it.
    pub wasted_horizon_days: f64,
    /// Clusters at or below this live fraction get consolidated.
    pub consolidation_threshold: f64,
}

impl Default for ProvisioningConfig {
    fn default() -> Self {
        ProvisioningConfig {
            cluster_capacity: 50,
            update_interval_days: 21,
            wasted_horizon_days: 7.0,
            consolidation_threshold: 0.25,
        }
    }
}

/// Metrics of one simulated policy run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProvisioningOutcome {
    /// Policy simulated.
    pub policy: PlacementPolicy,
    /// Databases placed.
    pub placed: usize,
    /// Clusters ever opened.
    pub clusters_opened: usize,
    /// Update disruptions delivered to live databases.
    pub disruptions: usize,
    /// Disruptions to databases that dropped within the waste horizon
    /// (pure loss — the user would have received the update on their
    /// next database anyway).
    pub wasted_disruptions: usize,
    /// Consolidation migrations performed.
    pub moves: usize,
    /// Migrations of databases that dropped within 7 days (the paper's
    /// "dropping a database after a load-balancer has moved it lowers
    /// operational efficiency").
    pub wasted_moves: usize,
}

#[derive(Debug)]
struct Cluster {
    pool: PredictedLongevity,
    live: Vec<usize>, // indices into the placement list
}

struct Placement {
    placed_at: Timestamp,
    drop_at: Option<Timestamp>,
    pool: PredictedLongevity,
}

/// Simulates one policy over a region, given per-database predictions
/// (keyed by fleet database index; databases absent from the map are
/// not placed — they never reached the prediction instant).
pub fn simulate(
    census: &Census<'_>,
    predictions: &HashMap<usize, PredictedLongevity>,
    policy: PlacementPolicy,
    config: &ProvisioningConfig,
) -> ProvisioningOutcome {
    assert!(config.cluster_capacity > 0, "capacity must be positive");
    let fleet = census.fleet();
    let window_end = census.window_end();
    let x = Duration::days(2);

    // Build placements ordered by placement time.
    let mut placements: Vec<Placement> = Vec::new();
    for (&idx, &pred) in predictions {
        let db = &fleet.databases[idx];
        let pool = match policy {
            PlacementPolicy::Agnostic => PredictedLongevity::Uncertain, // single pool
            PlacementPolicy::LongevityGuided => pred,
        };
        placements.push(Placement {
            placed_at: db.created_at + x,
            drop_at: db.dropped_at,
            pool,
        });
    }
    placements.sort_by_key(|p| p.placed_at);

    let mut clusters: Vec<Cluster> = Vec::new();
    let mut outcome = ProvisioningOutcome {
        policy,
        placed: 0,
        clusters_opened: 0,
        disruptions: 0,
        wasted_disruptions: 0,
        moves: 0,
        wasted_moves: 0,
    };

    let start = census.fleet().window_start();
    let total_days = ((window_end - start).whole_days()).max(1);
    let mut next_placement = 0usize;

    let wasted = |p: &Placement, now: Timestamp| -> bool {
        match p.drop_at {
            Some(d) => (d - now).as_days_f64() <= 7.0 && d > now,
            None => false,
        }
    };

    for day in 0..=total_days {
        let now = start + Duration::days(day);

        // 1. Place databases whose prediction instant has arrived.
        while next_placement < placements.len() && placements[next_placement].placed_at <= now {
            let pool = placements[next_placement].pool;
            let slot = clusters
                .iter_mut()
                .find(|c| c.pool == pool && c.live.len() < config.cluster_capacity);
            match slot {
                Some(c) => c.live.push(next_placement),
                None => {
                    clusters.push(Cluster {
                        pool,
                        live: vec![next_placement],
                    });
                    outcome.clusters_opened += 1;
                }
            }
            outcome.placed += 1;
            next_placement += 1;
        }

        // 2. Process drops.
        for cluster in &mut clusters {
            cluster
                .live
                .retain(|&i| placements[i].drop_at.is_none_or(|d| d > now));
        }

        // 3. Non-critical update wave.
        if day > 0 && day % config.update_interval_days == 0 {
            for cluster in &clusters {
                if policy == PlacementPolicy::LongevityGuided
                    && cluster.pool == PredictedLongevity::Short
                {
                    continue; // deferred: these databases churn out anyway
                }
                for &i in &cluster.live {
                    outcome.disruptions += 1;
                    let p = &placements[i];
                    if let Some(d) = p.drop_at {
                        if (d - now).as_days_f64() <= config.wasted_horizon_days {
                            outcome.wasted_disruptions += 1;
                        }
                    }
                }
            }
        }

        // 4. Weekly consolidation: drain near-empty clusters into
        //    healthy ones to release hardware (except the guided
        //    policy's short pool, which empties on its own). Databases
        //    with no healthy target stay put — consolidation must never
        //    open new clusters.
        if day > 0 && day % 7 == 0 {
            let threshold =
                (config.cluster_capacity as f64 * config.consolidation_threshold) as usize;
            for source in 0..clusters.len() {
                if policy == PlacementPolicy::LongevityGuided
                    && clusters[source].pool == PredictedLongevity::Short
                {
                    continue;
                }
                if clusters[source].live.is_empty() || clusters[source].live.len() > threshold {
                    continue;
                }
                let members = std::mem::take(&mut clusters[source].live);
                let mut stay = Vec::new();
                for i in members {
                    let pool = placements[i].pool;
                    let target = clusters.iter_mut().enumerate().find(|(t, c)| {
                        *t != source
                            && c.pool == pool
                            && c.live.len() > threshold
                            && c.live.len() < config.cluster_capacity
                    });
                    match target {
                        Some((_, c)) => {
                            c.live.push(i);
                            outcome.moves += 1;
                            if wasted(&placements[i], now) {
                                outcome.wasted_moves += 1;
                            }
                        }
                        None => stay.push(i),
                    }
                }
                clusters[source].live = stay;
            }
        }
        clusters.retain(|c| !c.live.is_empty());
    }

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};
    use telemetry::RegionId;

    /// Oracle predictions: the simulator's own ground truth, giving the
    /// guided policy its best case (the experiment harness substitutes
    /// real model output).
    fn oracle_predictions(census: &Census<'_>) -> HashMap<usize, PredictedLongevity> {
        census
            .prediction_population(2.0)
            .into_iter()
            .map(|idx| {
                let db = &census.fleet().databases[idx];
                let pred = if census.is_long_lived(db) {
                    PredictedLongevity::Long
                } else {
                    PredictedLongevity::Short
                };
                (idx, pred)
            })
            .collect()
    }

    #[test]
    fn guided_policy_wastes_less() {
        let study = Study::load_region(
            StudyConfig {
                scale: 0.12,
                seed: 31,
            },
            RegionId::Region1,
        );
        let census = study.census(RegionId::Region1);
        let predictions = oracle_predictions(&census);
        let config = ProvisioningConfig::default();
        let agnostic = simulate(&census, &predictions, PlacementPolicy::Agnostic, &config);
        let guided = simulate(
            &census,
            &predictions,
            PlacementPolicy::LongevityGuided,
            &config,
        );
        assert_eq!(agnostic.placed, guided.placed);
        assert!(
            guided.wasted_disruptions < agnostic.wasted_disruptions,
            "guided {} vs agnostic {}",
            guided.wasted_disruptions,
            agnostic.wasted_disruptions
        );
        assert!(
            guided.wasted_moves <= agnostic.wasted_moves,
            "guided {} vs agnostic {}",
            guided.wasted_moves,
            agnostic.wasted_moves
        );
    }

    #[test]
    fn probability_bucketing() {
        assert_eq!(
            PredictedLongevity::from_probability(0.9, 0.7),
            PredictedLongevity::Long
        );
        assert_eq!(
            PredictedLongevity::from_probability(0.1, 0.7),
            PredictedLongevity::Short
        );
        assert_eq!(
            PredictedLongevity::from_probability(0.5, 0.7),
            PredictedLongevity::Uncertain
        );
    }

    #[test]
    fn conservation_of_databases() {
        let study = Study::load_region(
            StudyConfig {
                scale: 0.06,
                seed: 32,
            },
            RegionId::Region2,
        );
        let census = study.census(RegionId::Region2);
        let predictions = oracle_predictions(&census);
        let outcome = simulate(
            &census,
            &predictions,
            PlacementPolicy::Agnostic,
            &ProvisioningConfig::default(),
        );
        assert_eq!(outcome.placed, predictions.len());
        assert!(outcome.clusters_opened > 0);
        assert!(outcome.disruptions >= outcome.wasted_disruptions);
        assert!(outcome.moves >= outcome.wasted_moves);
    }
}
