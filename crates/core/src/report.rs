//! Plain-text reporting: paper-style score tables and ASCII survival
//! curves for the `repro` harness and the examples, plus human-readable
//! renderings of an [`obs`] snapshot (per-phase timing breakdown and
//! counter table).

use crate::experiment::{KmSeries, SubgroupResult};
use forest::ClassificationScores;

/// Renders one or more KM curves as an ASCII chart (time on x, survival
/// on y). Each curve gets a distinct glyph; overlaps show the later
/// curve's glyph.
pub fn ascii_km_chart(curves: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    assert!(width >= 20 && height >= 5, "chart too small");
    assert!(!curves.is_empty(), "need at least one curve");
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

    let max_t = curves
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|(t, _)| *t))
        .fold(0.0_f64, f64::max)
        .max(1.0);

    let mut grid = vec![vec![' '; width]; height];
    for (ci, (_, pts)) in curves.iter().enumerate() {
        let glyph = GLYPHS[ci % GLYPHS.len()];
        // `col` picks both the x position and (via the looked-up
        // survival) a per-column row, so an iterator over `grid` —
        // which is row-major — cannot replace it.
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            let t = max_t * col as f64 / (width - 1) as f64;
            // Step-function lookup over the sampled points.
            let mut s = 1.0;
            for &(pt, ps) in pts.iter() {
                if pt <= t {
                    s = ps;
                } else {
                    break;
                }
            }
            let row = ((1.0 - s) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = glyph;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            "1.0 |"
        } else if r == height - 1 {
            "0.0 |"
        } else if r == height / 2 {
            "0.5 |"
        } else {
            "    |"
        };
        out.push_str(label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("    +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "     0 days {:>w$.0} days\n",
        max_t,
        w = width - 8
    ));
    for (ci, (name, _)) in curves.iter().enumerate() {
        out.push_str(&format!("     {} {}\n", GLYPHS[ci % GLYPHS.len()], name));
    }
    out
}

/// Convenience: chart from [`KmSeries`] values.
pub fn ascii_km_series(series: &[&KmSeries], width: usize, height: usize) -> String {
    let curves: Vec<(&str, &[(f64, f64)])> = series
        .iter()
        .map(|s| (s.label.as_str(), s.points.as_slice()))
        .collect();
    ascii_km_chart(&curves, width, height)
}

/// Formats a Figure-5/7-style score row.
pub fn score_row(label: &str, s: &ClassificationScores) -> String {
    format!(
        "{label:<28} acc {:.3}  prec {:.3}  rec {:.3}  (n = {})",
        s.accuracy, s.precision, s.recall, s.support
    )
}

/// Formats a compact one-line p-value with the paper's significance
/// convention.
pub fn p_value_cell(p: f64) -> String {
    if p < 1e-7 {
        "< 0.0000001".to_string()
    } else {
        format!("{p:.6}")
    }
}

/// Full plain-text block for one subgroup result (one Figure-5 panel
/// triple + its Figure-6/8/9 significance lines).
pub fn subgroup_block(r: &SubgroupResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "--- {} / {} (n = {}, q = {:.3}, t = {:.3}, tuned: {})\n",
        r.region,
        r.edition,
        r.population,
        r.positive_fraction,
        r.confidence_threshold,
        r.tuned_params
    ));
    out.push_str(&score_row("  forest", &r.forest));
    out.push('\n');
    out.push_str(&score_row("  baseline", &r.baseline));
    out.push('\n');
    out.push_str(&score_row("  confident", &r.confident));
    out.push('\n');
    out.push_str(&score_row("  uncertain", &r.uncertain));
    out.push('\n');
    out.push_str(&format!(
        "  confident coverage {:.1}%   oob {:.3}\n",
        r.confident_fraction * 100.0,
        r.oob_accuracy
    ));
    out.push_str(&format!(
        "  log-rank p: whole {}  baseline {}  confident {}  uncertain {}\n",
        p_value_cell(r.whole_grouping.logrank_p),
        p_value_cell(r.baseline_grouping.logrank_p),
        p_value_cell(r.confident_grouping.logrank_p),
        p_value_cell(r.uncertain_grouping.logrank_p),
    ));
    out
}

/// Plain-text block for a batch-scoring run (`scored` binary): counts,
/// confident coverage, and the positive-probability spectrum.
pub fn scoring_block(s: &serve::ScoreSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "--- scored {} rows (q = {:.3}, t = {:.3})\n",
        s.rows, s.positive_fraction, s.threshold
    ));
    let pct = |part: usize| {
        if s.rows == 0 {
            0.0
        } else {
            part as f64 * 100.0 / s.rows as f64
        }
    };
    out.push_str(&format!(
        "  predicted   {} positive / {} negative   mean p+ {:.3}\n",
        s.predicted_positive, s.predicted_negative, s.mean_positive
    ));
    out.push_str(&format!(
        "  confident   {} ({:.1}%)   positive {} / negative {}\n",
        s.confident,
        pct(s.confident),
        s.confident_positive,
        s.confident_negative
    ));
    out.push_str(&format!(
        "  uncertain   {} ({:.1}%)\n",
        s.uncertain,
        pct(s.uncertain)
    ));
    let peak = s.histogram.iter().copied().max().unwrap_or(0).max(1);
    for (b, &count) in s.histogram.iter().enumerate() {
        let close = if b == 9 { ']' } else { ')' };
        let bar = "#".repeat((count * 40 / peak) as usize);
        out.push_str(&format!(
            "  p+ [{:.1}, {:.1}{close} {count:>7}  {bar}\n",
            b as f64 / 10.0,
            (b + 1) as f64 / 10.0,
        ));
    }
    out
}

/// Plain-text block for a closed-loop serving run (`loadgen` binary):
/// outcome counts, throughput/latency, and the positive-probability
/// spectrum over every scored row.
pub fn serving_block(counts: &survd::ServingCounts, timing: &survd::ServingTiming) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "--- served {} requests: {} ok / {} shed / {} error ({} rows scored)\n",
        counts.requests_sent,
        counts.responses_ok,
        counts.responses_shed,
        counts.responses_error,
        counts.rows_scored
    ));
    out.push_str(&format!(
        "  throughput  {:.0} req/s   {:.0} rows/s   ({:.1} ms elapsed)\n",
        timing.requests_per_second, timing.rows_per_second, timing.elapsed_ms
    ));
    out.push_str(&format!(
        "  latency ms  p50 {:.2}   p95 {:.2}   p99 {:.2}   max {:.2}   mean {:.2}\n",
        timing.latency_p50_ms,
        timing.latency_p95_ms,
        timing.latency_p99_ms,
        timing.latency_max_ms,
        timing.latency_mean_ms
    ));
    let peak = counts
        .score_histogram
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(1);
    for (b, &count) in counts.score_histogram.iter().enumerate() {
        let close = if b == 9 { ']' } else { ')' };
        let bar = "#".repeat((count * 40 / peak) as usize);
        out.push_str(&format!(
            "  p+ [{:.1}, {:.1}{close} {count:>7}  {bar}\n",
            b as f64 / 10.0,
            (b + 1) as f64 / 10.0,
        ));
    }
    out
}

/// Plain-text block for the serving-latency breakdown: per-stage
/// observation counts and sketch quantiles, and the drift monitor's
/// reference-vs-live calibration histograms with the TV divergence.
pub fn latency_block(
    run: &survd::LatencyRun,
    stages: &[obs::Sketch; survd::STAGE_COUNT],
    drift: &obs::DriftSnapshot,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "--- lifecycle: {} requests, {} ok, {} rows scored\n",
        run.requests_sent, run.responses_ok, run.rows_scored
    ));
    for (name, sketch) in survd::STAGE_NAMES.iter().zip(stages.iter()) {
        out.push_str(&format!(
            "  {name:<12} {:>8} obs   p50 {:>10} ms   p95 {:>10} ms   p99 {:>10} ms\n",
            sketch.total(),
            sketch.quantile(0.50),
            sketch.quantile(0.95),
            sketch.quantile(0.99),
        ));
    }
    out.push_str(&format!(
        "  drift: {} scored vs {} reference, divergence {:.4}\n",
        drift.total(),
        drift.reference_total(),
        drift.divergence()
    ));
    let peak = drift
        .reference
        .iter()
        .chain(drift.live.iter())
        .copied()
        .max()
        .unwrap_or(0)
        .max(1);
    for b in 0..obs::DRIFT_BUCKETS {
        let close = if b == obs::DRIFT_BUCKETS - 1 {
            ']'
        } else {
            ')'
        };
        let reference_bar = "#".repeat((drift.reference[b] * 20 / peak) as usize);
        let live_bar = "#".repeat((drift.live[b] * 20 / peak) as usize);
        out.push_str(&format!(
            "  p+ [{:.1}, {:.1}{close} ref {:>7} {reference_bar:<20} live {:>7} {live_bar}\n",
            b as f64 / 10.0,
            (b + 1) as f64 / 10.0,
            drift.reference[b],
            drift.live[b],
        ));
    }
    out
}

/// Renders an indented span-tree timing table from an [`obs`]
/// snapshot: one row per span path, indented by nesting depth, with
/// call count, total and mean wall time, and the number of distinct
/// threads that recorded under the path. Span paths are
/// lexicographically sorted, which groups children under their parent
/// (a child path extends its parent's with `/`).
pub fn phase_table(snapshot: &obs::Snapshot) -> String {
    if snapshot.spans.is_empty() {
        return "  (no spans recorded)\n".to_string();
    }
    let mut out = String::new();
    for (path, span) in &snapshot.spans {
        let depth = path.matches('/').count();
        let name = path.rsplit('/').next().unwrap_or(path);
        let total_ms = span.total_ns as f64 / 1e6;
        let mean_ms = total_ms / span.count.max(1) as f64;
        out.push_str(&format!(
            "  {:indent$}{name:<width$} {:>7} calls  {total_ms:>10.2} ms total  \
             {mean_ms:>9.3} ms/call  {} thread{}\n",
            "",
            span.count,
            span.threads,
            if span.threads == 1 { "" } else { "s" },
            indent = depth * 2,
            width = 24usize.saturating_sub(depth * 2),
        ));
    }
    out
}

/// Renders the counter and gauge table from an [`obs`] snapshot, one
/// `name = value` row per entry in name order.
pub fn counter_table(snapshot: &obs::Snapshot) -> String {
    if snapshot.counters.is_empty() && snapshot.gauges.is_empty() {
        return "  (no counters recorded)\n".to_string();
    }
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        out.push_str(&format!("  {name:<44} = {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        out.push_str(&format!("  {name:<44} = {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_and_counter_tables_render() {
        let mut snapshot = obs::Snapshot::default();
        snapshot.spans.insert(
            "experiment".to_string(),
            obs::SpanSnapshot {
                count: 1,
                total_ns: 2_500_000,
                threads: 1,
            },
        );
        snapshot.spans.insert(
            "experiment/repetition".to_string(),
            obs::SpanSnapshot {
                count: 5,
                total_ns: 2_000_000,
                threads: 2,
            },
        );
        snapshot
            .counters
            .insert("forest.trees_built".to_string(), 40);
        snapshot.gauges.insert("grid.best_score".to_string(), 0.75);

        let phases = phase_table(&snapshot);
        assert!(phases.contains("experiment"), "{phases}");
        assert!(phases.contains("repetition"), "{phases}");
        assert!(phases.contains("5 calls"), "{phases}");
        assert!(phases.contains("2 threads"), "{phases}");

        let counters = counter_table(&snapshot);
        assert!(counters.contains("forest.trees_built"), "{counters}");
        assert!(counters.contains("= 40"), "{counters}");
        assert!(counters.contains("grid.best_score"), "{counters}");

        assert_eq!(
            phase_table(&obs::Snapshot::default()),
            "  (no spans recorded)\n"
        );
        assert_eq!(
            counter_table(&obs::Snapshot::default()),
            "  (no counters recorded)\n"
        );
    }

    #[test]
    fn latency_block_renders_stages_and_drift() {
        let run = survd::LatencyRun {
            connections: 2,
            rows_per_request: 4,
            requests_sent: 8,
            responses_ok: 8,
            rows_scored: 32,
        };
        let mut stages: [obs::Sketch; survd::STAGE_COUNT] = Default::default();
        for stage in stages.iter_mut() {
            stage.observe_n(1.5, 8);
        }
        stages[2].observe_n(0.1, 24);
        let drift = obs::DriftSnapshot {
            reference: [4, 4, 4, 4, 4, 4, 4, 4, 4, 4],
            live: [0, 0, 16, 0, 0, 0, 0, 16, 0, 0],
        };
        let block = latency_block(&run, &stages, &drift);
        assert!(
            block.contains("8 requests, 8 ok, 32 rows scored"),
            "{block}"
        );
        assert!(block.contains("queue_wait"), "{block}");
        assert!(block.contains("score"), "{block}");
        assert!(block.contains("divergence"), "{block}");
        assert!(block.contains("p+ [0.0, 0.1)"), "{block}");
        assert!(block.contains("p+ [0.9, 1.0]"), "{block}");
    }

    #[test]
    fn chart_renders_monotone_curve() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64 * 5.0, 1.0 - i as f64 * 0.04))
            .collect();
        let chart = ascii_km_chart(&[("test", &pts)], 40, 10);
        assert!(chart.contains("1.0 |"));
        assert!(chart.contains("0.0 |"));
        assert!(chart.contains("* test"));
        // First column should show the curve at the top row.
        let first_line = chart.lines().next().unwrap();
        assert!(first_line.contains('*'));
    }

    #[test]
    fn chart_multiple_curves_distinct_glyphs() {
        let a: Vec<(f64, f64)> = vec![(0.0, 1.0), (10.0, 0.9)];
        let b: Vec<(f64, f64)> = vec![(0.0, 1.0), (10.0, 0.2)];
        let chart = ascii_km_chart(&[("high", &a), ("low", &b)], 30, 8);
        assert!(chart.contains('*') && chart.contains('o'));
    }

    #[test]
    fn scoring_block_renders_counts_and_histogram() {
        let summary = serve::ScoreSummary {
            rows: 100,
            confident: 80,
            uncertain: 20,
            predicted_positive: 60,
            predicted_negative: 40,
            confident_positive: 50,
            confident_negative: 30,
            positive_fraction: 0.6,
            threshold: 0.6,
            mean_positive: 0.55,
            histogram: [5, 5, 10, 10, 10, 10, 10, 10, 20, 20],
        };
        let block = scoring_block(&summary);
        assert!(block.contains("scored 100 rows"), "{block}");
        assert!(block.contains("confident   80 (80.0%)"), "{block}");
        assert!(block.contains("uncertain   20 (20.0%)"), "{block}");
        assert!(block.contains("p+ [0.0, 0.1)"), "{block}");
        assert!(block.contains("p+ [0.9, 1.0]"), "{block}");
        // The fullest bucket gets the longest bar.
        assert!(block.contains(&"#".repeat(40)), "{block}");
    }

    #[test]
    fn serving_block_renders_counts_and_latency() {
        let counts = survd::ServingCounts {
            requests_sent: 200,
            responses_ok: 198,
            responses_shed: 2,
            responses_error: 0,
            rows_scored: 792,
            score_histogram: [99, 99, 79, 79, 40, 40, 79, 79, 99, 99],
        };
        let timing = survd::ServingTiming {
            elapsed_ms: 125.0,
            requests_per_second: 1584.0,
            rows_per_second: 6336.0,
            retries_429: 0,
            latency_p50_ms: 1.25,
            latency_p95_ms: 3.5,
            latency_p99_ms: 4.75,
            latency_max_ms: 9.0,
            latency_mean_ms: 1.5,
        };
        let block = serving_block(&counts, &timing);
        assert!(
            block.contains("served 200 requests: 198 ok / 2 shed / 0 error"),
            "{block}"
        );
        assert!(block.contains("792 rows scored"), "{block}");
        assert!(block.contains("p50 1.25"), "{block}");
        assert!(block.contains("p+ [0.9, 1.0]"), "{block}");
        assert!(block.contains(&"#".repeat(40)), "{block}");
    }

    #[test]
    fn p_value_formatting() {
        assert_eq!(p_value_cell(1e-9), "< 0.0000001");
        assert_eq!(p_value_cell(0.925429), "0.925429");
    }

    #[test]
    #[should_panic]
    fn chart_rejects_empty() {
        ascii_km_chart(&[], 40, 10);
    }
}
