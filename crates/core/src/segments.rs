//! Subscription segmentation (paper §7's actionable conclusion).
//!
//! "Importantly, doing so allows us to identify users (subscriptions)
//! that generally create short-lived or long-lived databases and with
//! this knowledge, we will intelligently provision designated resources
//! for different pools of databases." — and Obs 3.1: "by simply looking
//! at historical data, we can identify customers that follow this
//! pattern".
//!
//! This module segments subscriptions from their database history up to
//! a cutoff instant, then validates the segments **out of time**: does
//! a subscription's first-half behaviour predict its second-half
//! databases' lifespans?

use simtime::Timestamp;
use std::collections::HashMap;
use telemetry::{Census, DatabaseRecord, LifespanClass, SubscriptionId};

/// A subscription's behavioural segment, assigned from history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Every decided database so far was ephemeral (Obs 3.1's cyclers).
    EphemeralCycler,
    /// Most decided databases died within 30 days.
    ShortLivedHeavy,
    /// Most decided databases outlived 30 days.
    LongLivedHeavy,
    /// Genuinely mixed behaviour.
    Mixed,
    /// Too little decided history to call (fewer than `min_history`).
    Unknown,
}

/// Segmentation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Minimum decided databases before a segment is assigned.
    pub min_history: usize,
    /// Share of one class needed for a Short/LongLivedHeavy call.
    pub dominance: f64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            min_history: 3,
            dominance: 0.75,
        }
    }
}

/// Per-subscription class counts observed before the cutoff.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistoryCounts {
    /// Databases decided ephemeral.
    pub ephemeral: usize,
    /// Databases decided short-lived.
    pub short_lived: usize,
    /// Databases decided long-lived.
    pub long_lived: usize,
}

impl HistoryCounts {
    /// All decided databases.
    pub fn total(&self) -> usize {
        self.ephemeral + self.short_lived + self.long_lived
    }

    /// Assigns the segment under a config.
    pub fn segment(&self, config: &SegmentConfig) -> Segment {
        let total = self.total();
        if total < config.min_history {
            return Segment::Unknown;
        }
        let t = total as f64;
        if self.ephemeral == total {
            Segment::EphemeralCycler
        } else if (self.short_lived + self.ephemeral) as f64 / t >= config.dominance {
            Segment::ShortLivedHeavy
        } else if self.long_lived as f64 / t >= config.dominance {
            Segment::LongLivedHeavy
        } else {
            Segment::Mixed
        }
    }
}

/// Segments assigned at a cutoff, with out-of-time validation counts.
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// Cutoff epoch seconds.
    pub cutoff_epoch_seconds: i64,
    /// Number of subscriptions per segment.
    pub segment_sizes: HashMap<String, usize>,
    /// Out-of-time accuracy of the naive segment rule: among databases
    /// created after the cutoff with a decided class, the share whose
    /// class matched the segment's implied prediction (long-lived for
    /// `LongLivedHeavy`, otherwise not-long). `None` if no post-cutoff
    /// databases were decided.
    pub out_of_time_accuracy: Option<f64>,
    /// Same, restricted to `EphemeralCycler` subscriptions predicting
    /// "ephemeral".
    pub cycler_precision: Option<f64>,
    /// Databases evaluated out of time.
    pub evaluated: usize,
}

/// Computes per-subscription history counts using only drops observed
/// before `cutoff` (creation before cutoff is not enough: the class
/// must be *decided* by then).
pub fn history_counts(
    census: &Census<'_>,
    cutoff: Timestamp,
) -> HashMap<SubscriptionId, HistoryCounts> {
    let mut map: HashMap<SubscriptionId, HistoryCounts> = HashMap::new();
    for (_, db) in census.study_population() {
        if let Some(class) = decided_class_by(census, db, cutoff) {
            let counts = map.entry(db.subscription_id).or_default();
            match class {
                LifespanClass::Ephemeral => counts.ephemeral += 1,
                LifespanClass::ShortLived => counts.short_lived += 1,
                LifespanClass::LongLived => counts.long_lived += 1,
            }
        }
    }
    map
}

/// The class of `db` using only information available at `cutoff`:
/// dropped before the cutoff → its class; alive with > 30 days observed
/// by the cutoff → long-lived; otherwise undecided.
fn decided_class_by(
    census: &Census<'_>,
    db: &DatabaseRecord,
    cutoff: Timestamp,
) -> Option<LifespanClass> {
    if db.created_at >= cutoff {
        return None;
    }
    match db.dropped_at {
        Some(dropped) if dropped <= cutoff => census.classify(db),
        _ => {
            let observed_days = (cutoff - db.created_at).as_days_f64();
            (observed_days > telemetry::census::LONG_LIVED_MIN_DAYS)
                .then_some(LifespanClass::LongLived)
        }
    }
}

/// Segments every subscription at `cutoff` and validates out of time
/// against databases created after the cutoff (using the full window's
/// knowledge for their true class).
pub fn segment_report(
    census: &Census<'_>,
    cutoff: Timestamp,
    config: &SegmentConfig,
) -> SegmentReport {
    let history = history_counts(census, cutoff);
    let segments: HashMap<SubscriptionId, Segment> = history
        .iter()
        .map(|(&id, counts)| (id, counts.segment(config)))
        .collect();

    let mut segment_sizes: HashMap<String, usize> = HashMap::new();
    for segment in segments.values() {
        *segment_sizes.entry(format!("{segment:?}")).or_insert(0) += 1;
    }

    // Out-of-time validation on post-cutoff creations.
    let mut correct = 0usize;
    let mut evaluated = 0usize;
    let mut cycler_tp = 0usize;
    let mut cycler_n = 0usize;
    for (_, db) in census.study_population() {
        if db.created_at < cutoff {
            continue;
        }
        let Some(actual) = census.classify(db) else {
            continue;
        };
        let Some(&segment) = segments.get(&db.subscription_id) else {
            continue;
        };
        if segment == Segment::Unknown || segment == Segment::Mixed {
            continue;
        }
        evaluated += 1;
        let predicted_long = segment == Segment::LongLivedHeavy;
        let actually_long = actual == LifespanClass::LongLived;
        if predicted_long == actually_long {
            correct += 1;
        }
        if segment == Segment::EphemeralCycler {
            cycler_n += 1;
            if actual == LifespanClass::Ephemeral {
                cycler_tp += 1;
            }
        }
    }

    SegmentReport {
        cutoff_epoch_seconds: cutoff.epoch_seconds(),
        segment_sizes,
        out_of_time_accuracy: (evaluated > 0).then(|| correct as f64 / evaluated as f64),
        cycler_precision: (cycler_n > 0).then(|| cycler_tp as f64 / cycler_n as f64),
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};
    use simtime::Duration;
    use telemetry::RegionId;

    fn census_fixture() -> Study {
        Study::load_region(
            StudyConfig {
                scale: 0.15,
                seed: 0x5E6,
            },
            RegionId::Region1,
        )
    }

    #[test]
    fn segment_assignment_rules() {
        let config = SegmentConfig::default();
        let cycler = HistoryCounts {
            ephemeral: 5,
            ..Default::default()
        };
        assert_eq!(cycler.segment(&config), Segment::EphemeralCycler);
        let keeper = HistoryCounts {
            long_lived: 4,
            short_lived: 1,
            ..Default::default()
        };
        assert_eq!(keeper.segment(&config), Segment::LongLivedHeavy);
        let churner = HistoryCounts {
            short_lived: 4,
            long_lived: 1,
            ..Default::default()
        };
        assert_eq!(churner.segment(&config), Segment::ShortLivedHeavy);
        let mixed = HistoryCounts {
            short_lived: 2,
            long_lived: 2,
            ..Default::default()
        };
        assert_eq!(mixed.segment(&config), Segment::Mixed);
        let thin = HistoryCounts {
            long_lived: 2,
            ..Default::default()
        };
        assert_eq!(thin.segment(&config), Segment::Unknown);
    }

    #[test]
    fn history_respects_cutoff() {
        let study = census_fixture();
        let census = study.census(RegionId::Region1);
        let fleet = census.fleet();
        let early = fleet.window_start() + Duration::days(60);
        let counts = history_counts(&census, early);
        // No database created after the cutoff contributes.
        for (&id, counts) in &counts {
            let decided_before: usize = census
                .study_population()
                .filter(|(_, db)| db.subscription_id == id && db.created_at < early)
                .count();
            assert!(counts.total() <= decided_before);
        }
    }

    #[test]
    fn segments_predict_the_future() {
        // The paper's claim: history identifies the pattern. Halfway
        // through the window, segment; the second half must be
        // predictable well above chance.
        let study = census_fixture();
        let census = study.census(RegionId::Region1);
        let cutoff = census.fleet().window_start() + Duration::days(76);
        let report = segment_report(&census, cutoff, &SegmentConfig::default());
        assert!(report.evaluated > 100, "evaluated {}", report.evaluated);
        let accuracy = report.out_of_time_accuracy.expect("evaluated > 0");
        assert!(accuracy > 0.75, "out-of-time accuracy {accuracy}");
        let cycler_precision = report.cycler_precision.expect("cyclers exist");
        assert!(
            cycler_precision > 0.8,
            "cycler precision {cycler_precision}"
        );
    }
}
