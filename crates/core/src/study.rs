//! Study-level dataset construction: the three regional populations.

use telemetry::{Census, Fleet, FleetConfig, RegionConfig, RegionId};

/// Study parameters.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Population scale relative to the canonical region sizes (1.0 ≈
    /// 18k databases across three regions). Tests and benches use
    /// smaller scales.
    pub scale: f64,
    /// Master seed for fleet generation.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            scale: 1.0,
            seed: 0x05DB_2018,
        }
    }
}

/// The loaded study: one generated fleet per region.
#[derive(Debug, Clone)]
pub struct Study {
    config: StudyConfig,
    fleets: Vec<Fleet>,
}

impl Study {
    /// Generates all three regional fleets.
    pub fn load(config: StudyConfig) -> Study {
        let fleets = RegionId::ALL
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                Fleet::generate(FleetConfig::new(
                    RegionConfig::canonical(id).scaled(config.scale),
                    // Distinct per-region streams from the master seed.
                    config.seed.wrapping_add(i as u64 * 0x9E37_79B9),
                ))
            })
            .collect();
        Study { config, fleets }
    }

    /// Generates a single-region study (cheaper for examples).
    pub fn load_region(config: StudyConfig, id: RegionId) -> Study {
        let fleet = Fleet::generate(FleetConfig::new(
            RegionConfig::canonical(id).scaled(config.scale),
            config.seed,
        ));
        Study {
            config,
            fleets: vec![fleet],
        }
    }

    /// The configuration used.
    pub fn config(&self) -> StudyConfig {
        self.config
    }

    /// Fleets, in [`RegionId::ALL`] order (or the single loaded region).
    pub fn fleets(&self) -> &[Fleet] {
        &self.fleets
    }

    /// The fleet of one region.
    ///
    /// # Panics
    ///
    /// Panics if the region was not loaded.
    pub fn fleet(&self, id: RegionId) -> &Fleet {
        self.fleets
            .iter()
            .find(|f| f.config.region.id == id)
            .unwrap_or_else(|| panic!("region {id} not loaded"))
    }

    /// A census over one region's fleet.
    pub fn census(&self, id: RegionId) -> Census<'_> {
        Census::new(self.fleet(id))
    }

    /// Total database count across loaded regions.
    pub fn database_count(&self) -> usize {
        self.fleets.iter().map(|f| f.databases.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_three_regions() {
        let study = Study::load(StudyConfig {
            scale: 0.02,
            seed: 7,
        });
        assert_eq!(study.fleets().len(), 3);
        for id in RegionId::ALL {
            assert_eq!(study.fleet(id).config.region.id, id);
            assert!(!study.census(id).fleet().databases.is_empty());
        }
        assert!(study.database_count() > 100);
    }

    #[test]
    fn regions_use_distinct_seeds() {
        let study = Study::load(StudyConfig {
            scale: 0.02,
            seed: 7,
        });
        let a = &study.fleet(RegionId::Region1).databases;
        let b = &study.fleet(RegionId::Region2).databases;
        assert!(a[0].database_name != b[0].database_name || a.len() != b.len());
    }

    #[test]
    fn single_region_load() {
        let study = Study::load_region(
            StudyConfig {
                scale: 0.02,
                seed: 9,
            },
            RegionId::Region2,
        );
        assert_eq!(study.fleets().len(), 1);
        assert_eq!(study.fleets()[0].config.region.id, RegionId::Region2);
    }

    #[test]
    #[should_panic]
    fn missing_region_panics() {
        let study = Study::load_region(
            StudyConfig {
                scale: 0.02,
                seed: 9,
            },
            RegionId::Region2,
        );
        study.fleet(RegionId::Region3);
    }
}
