//! Feature engineering for database-lifespan prediction (paper §4.2).
//!
//! Turns the raw telemetry of a [`telemetry::DatabaseRecord`] — using
//! only what is observable in the first `x` days after creation — into
//! the named feature vector the random forest consumes:
//!
//! * [`time`] — creation-time features (day of week/month, week, month,
//!   hour; plus weekend/holiday extensions).
//! * [`name`] — server- and database-name shape features, plus optional
//!   character n-gram features (§5.4 found the latter do not help —
//!   the `factors` experiment reproduces that finding).
//! * [`size`] — absolute size statistics over the observation prefix
//!   and the creation→prediction growth rate.
//! * [`slo`] — edition / performance-level history features (counts,
//!   current values, differences, DTU statistics).
//! * [`subscription`] — offer-type one-hot and the three
//!   subscription-history groups (the paper's most predictive family).
//! * [`utilization`] — DTU-utilization statistics over the prefix
//!   (the telemetry family the paper's §2 describes but keeps private).
//! * [`pipeline`] — the combined extractor and dataset builder.
//!
//! Everything is computed strictly from telemetry available at
//! prediction time `Tp = created_at + x days`; tests assert there is no
//! leakage from beyond `Tp`.
//!
//! # Example
//!
//! ```
//! use features::{FeatureExtractor, FeatureConfig};
//! use telemetry::{Fleet, FleetConfig, RegionConfig, Census};
//!
//! let fleet = Fleet::generate(FleetConfig::new(
//!     RegionConfig::region_1().scaled(0.02),
//!     7,
//! ));
//! let census = Census::new(&fleet);
//! let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
//! let (dataset, survival) = extractor.build_dataset(&census, None);
//! assert_eq!(dataset.len(), survival.len());
//! assert_eq!(dataset.feature_count(), extractor.feature_names().len());
//! ```

pub mod name;
pub mod pipeline;
pub mod size;
pub mod slo;
pub mod stream;
pub mod subscription;
pub mod time;
pub mod utilization;

pub use name::{name_features, NgramVocabulary, NAME_FEATURE_COUNT};
pub use pipeline::{feature_schema, FeatureConfig, FeatureExtractor};
pub use stream::StreamingDatasetBuilder;
pub use subscription::SubscriptionHistoryIndex;
