//! Server/database name features.
//!
//! Paper §4.2: for both names — length, number of distinct characters,
//! distinct-character rate, whether the name mixes letters and digits,
//! whether it mixes upper and lower case, and whether it contains
//! non-alphanumeric symbols. "The goal of these features is to
//! determine whether a server/database is created manually or by an
//! automated process."
//!
//! The paper also experimented with character-level n-gram features and
//! found they did not improve accuracy (top n-grams came from common
//! names and caused overfitting). [`NgramVocabulary`] implements them so
//! the `factors` experiment can reproduce that negative result.

use std::collections::HashMap;

/// Number of shape features emitted per name.
pub const NAME_FEATURE_COUNT: usize = 6;

/// Feature names for one named entity (prefix distinguishes
/// server/database).
pub fn name_feature_names(prefix: &str) -> Vec<String> {
    [
        "len",
        "distinct_chars",
        "distinct_rate",
        "has_letters_and_digits",
        "has_upper_and_lower",
        "has_symbols",
    ]
    .iter()
    .map(|s| format!("{prefix}_{s}"))
    .collect()
}

/// Extracts the six shape features from one name.
pub fn name_features(name: &str) -> [f64; NAME_FEATURE_COUNT] {
    let len = name.chars().count();
    let mut distinct = std::collections::HashSet::new();
    let mut has_letter = false;
    let mut has_digit = false;
    let mut has_upper = false;
    let mut has_lower = false;
    let mut has_symbol = false;
    for c in name.chars() {
        distinct.insert(c);
        if c.is_alphabetic() {
            has_letter = true;
            if c.is_uppercase() {
                has_upper = true;
            }
            if c.is_lowercase() {
                has_lower = true;
            }
        } else if c.is_ascii_digit() {
            has_digit = true;
        } else {
            has_symbol = true;
        }
    }
    let distinct_rate = if len == 0 {
        0.0
    } else {
        distinct.len() as f64 / len as f64
    };
    [
        len as f64,
        distinct.len() as f64,
        distinct_rate,
        (has_letter && has_digit) as u8 as f64,
        (has_upper && has_lower) as u8 as f64,
        has_symbol as u8 as f64,
    ]
}

/// A fitted character-level n-gram vocabulary: the `k` most frequent
/// n-grams in a training corpus of names. Each vocabulary entry becomes
/// one presence feature.
#[derive(Debug, Clone, PartialEq)]
pub struct NgramVocabulary {
    n: usize,
    grams: Vec<String>,
}

impl NgramVocabulary {
    /// Builds the vocabulary from training names.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn fit<'a>(names: impl Iterator<Item = &'a str>, n: usize, k: usize) -> NgramVocabulary {
        assert!(n > 0, "n-gram size must be positive");
        assert!(k > 0, "vocabulary size must be positive");
        let mut counts: HashMap<String, u64> = HashMap::new();
        for name in names {
            let lower = name.to_lowercase();
            let chars: Vec<char> = lower.chars().collect();
            for window in chars.windows(n) {
                *counts.entry(window.iter().collect()).or_insert(0) += 1;
            }
        }
        let mut pairs: Vec<(String, u64)> = counts.into_iter().collect();
        // Sort by frequency descending, then lexicographically for
        // determinism across hash orders.
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs.truncate(k);
        NgramVocabulary {
            n,
            grams: pairs.into_iter().map(|(g, _)| g).collect(),
        }
    }

    /// The vocabulary entries, most frequent first.
    pub fn grams(&self) -> &[String] {
        &self.grams
    }

    /// Number of features this vocabulary emits.
    pub fn len(&self) -> usize {
        self.grams.len()
    }

    /// True if the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.grams.is_empty()
    }

    /// Presence features (0/1 per vocabulary gram) for one name.
    pub fn features(&self, name: &str) -> Vec<f64> {
        let lower = name.to_lowercase();
        self.grams
            .iter()
            .map(|g| lower.contains(g.as_str()) as u8 as f64)
            .collect()
    }

    /// Feature names.
    pub fn feature_names(&self, prefix: &str) -> Vec<String> {
        self.grams
            .iter()
            .map(|g| format!("{prefix}_ngram_{g}"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_name_shape() {
        let f = name_features("payroll-db");
        assert_eq!(f[0], 10.0); // length
        assert_eq!(f[1], 9.0); // p,a,y,r,o,l,-,d,b (one repeated l)
        assert!((f[2] - 0.9).abs() < 1e-12);
        assert_eq!(f[3], 0.0); // no digits
        assert_eq!(f[4], 0.0); // all lower
        assert_eq!(f[5], 1.0); // the dash
    }

    #[test]
    fn automated_name_shape() {
        let f = name_features("ci-04731");
        assert_eq!(f[3], 1.0); // letters + digits
        let g = name_features("MyApp");
        assert_eq!(g[4], 1.0); // mixed case
        assert_eq!(g[5], 0.0);
    }

    #[test]
    fn empty_name_is_safe() {
        let f = name_features("");
        assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ngram_vocabulary_finds_frequent_grams() {
        let names = ["prod-db", "prod-api", "prod-web", "xyz"];
        let vocab = NgramVocabulary::fit(names.iter().copied(), 3, 3);
        assert!(vocab.grams().contains(&"pro".to_string()));
        assert!(vocab.grams().contains(&"rod".to_string()));
        assert_eq!(vocab.len(), 3);
    }

    #[test]
    fn ngram_features_are_presence_flags() {
        let vocab = NgramVocabulary::fit(["abcabc", "abcd"].iter().copied(), 3, 2);
        let f = vocab.features("xxabcxx");
        assert_eq!(f.len(), 2);
        assert!(f.contains(&1.0));
        let none = vocab.features("zzzz");
        assert!(none.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ngram_fit_is_deterministic() {
        let names: Vec<String> = (0..100).map(|i| format!("db-{i:03}")).collect();
        let a = NgramVocabulary::fit(names.iter().map(|s| s.as_str()), 2, 10);
        let b = NgramVocabulary::fit(names.iter().map(|s| s.as_str()), 2, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn case_insensitive_matching() {
        let vocab = NgramVocabulary::fit(["ABC"].iter().copied(), 3, 1);
        assert_eq!(vocab.features("xabcx"), vec![1.0]);
    }
}
