//! The combined feature pipeline and prediction-dataset builder.

use crate::name::{name_feature_names, name_features, NgramVocabulary};
use crate::size::{size_features, SIZE_FEATURE_NAMES};
use crate::slo::{slo_features, SLO_FEATURE_NAMES};
use crate::subscription::{
    subscription_feature_names, subscription_type_features, SubscriptionHistoryIndex,
};
use crate::time::{time_features, TIME_FEATURE_NAMES};
use crate::utilization::{utilization_features, UTILIZATION_FEATURE_NAMES};
use forest::Dataset;
use simtime::Duration;
use telemetry::{Census, DatabaseRecord, Edition, LifespanClass};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct FeatureConfig {
    /// Observation prefix in days (the paper's `x`; default 2).
    pub x_days: f64,
    /// Short/long class boundary in days (the paper's `y`; default 30).
    pub y_days: f64,
    /// Optional character n-gram features for database names (§5.4's
    /// negative result; off by default).
    pub ngrams: Option<NgramVocabulary>,
    /// Include DTU-utilization features. Off by default: the paper's
    /// §4.2 feature list does not include utilization (that telemetry
    /// family stayed private), so the faithful reproduction excludes
    /// it; the `factors` experiment measures what it would add.
    pub include_utilization: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            x_days: 2.0,
            y_days: 30.0,
            ngrams: None,
            include_utilization: false,
        }
    }
}

/// Extracts feature vectors for databases of one fleet.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    config: FeatureConfig,
    history: SubscriptionHistoryIndex,
    feature_names: Vec<String>,
}

/// The feature schema a [`FeatureConfig`] produces, independent of any
/// fleet. The streaming pipeline uses this to construct a merged
/// dataset's schema before (or without) seeing a single shard; it is
/// exactly the schema [`FeatureExtractor::feature_names`] reports.
pub fn feature_schema(config: &FeatureConfig) -> Vec<String> {
    let mut feature_names: Vec<String> = TIME_FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    feature_names.extend(name_feature_names("server"));
    feature_names.extend(name_feature_names("db"));
    feature_names.extend(SIZE_FEATURE_NAMES.iter().map(|s| s.to_string()));
    if config.include_utilization {
        feature_names.extend(UTILIZATION_FEATURE_NAMES.iter().map(|s| s.to_string()));
    }
    feature_names.extend(SLO_FEATURE_NAMES.iter().map(|s| s.to_string()));
    feature_names.extend(subscription_feature_names());
    if let Some(vocab) = &config.ngrams {
        feature_names.extend(vocab.feature_names("db"));
    }
    feature_names
}

impl FeatureExtractor {
    /// Builds the extractor (indexes the fleet's subscription history).
    pub fn new(census: &Census<'_>, config: FeatureConfig) -> FeatureExtractor {
        assert!(config.x_days > 0.0, "observation prefix must be positive");
        assert!(
            config.y_days > config.x_days,
            "class boundary must exceed the observation prefix"
        );
        let history = SubscriptionHistoryIndex::build(census.fleet());
        let feature_names = feature_schema(&config);

        FeatureExtractor {
            config,
            history,
            feature_names,
        }
    }

    /// The feature schema, aligned with [`FeatureExtractor::extract`].
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The observation prefix.
    pub fn x_days(&self) -> f64 {
        self.config.x_days
    }

    /// Extracts one database's feature vector using only telemetry from
    /// `[created_at, created_at + x_days]`.
    pub fn extract(&self, census: &Census<'_>, db: &DatabaseRecord) -> Vec<f64> {
        let horizon = Duration::days_f64(self.config.x_days);
        let prediction_at = db.created_at + horizon;
        let holidays = &census.fleet().config.region.holidays;

        let mut out = time_features(db.created_at, holidays);
        out.extend(name_features(&db.server_name));
        out.extend(name_features(&db.database_name));
        out.extend(size_features(&db.size_trace, horizon));
        if self.config.include_utilization {
            out.extend(utilization_features(
                &db.utilization_trace,
                db.created_at,
                horizon,
            ));
        }
        out.extend(slo_features(db, prediction_at));
        out.extend(subscription_type_features(db.subscription_type));
        out.extend(self.history.history_features(db, prediction_at));
        if let Some(vocab) = &self.config.ngrams {
            out.extend(vocab.features(&db.database_name));
        }
        debug_assert_eq!(out.len(), self.feature_names.len());
        out
    }

    /// Builds the labeled prediction dataset for one creation edition
    /// (or the whole population with `edition = None`): the paper's
    /// task, positive class = long-lived (> 30 days).
    ///
    /// Returns the dataset plus, aligned row-for-row, the observed
    /// `(duration, event)` survival pairs used to draw KM curves of
    /// predicted groups (Figures 6, 8, 9).
    pub fn build_dataset(
        &self,
        census: &Census<'_>,
        edition: Option<Edition>,
    ) -> (Dataset, Vec<(f64, bool)>) {
        let (dataset, survival, _indices) = self.build_dataset_indexed(census, edition);
        (dataset, survival)
    }

    /// [`FeatureExtractor::build_dataset`] plus, aligned row-for-row,
    /// the fleet database index each row was extracted from — the join
    /// key the policy layer uses to attach region/edition subgroups
    /// and provisioning verdicts back to concrete databases.
    pub fn build_dataset_indexed(
        &self,
        census: &Census<'_>,
        edition: Option<Edition>,
    ) -> (Dataset, Vec<(f64, bool)>, Vec<usize>) {
        let _span = obs::span!("build_dataset");
        let mut dataset = Dataset::new(self.feature_names.clone(), 2);
        let mut survival = Vec::new();
        let mut indices = Vec::new();
        let mut skipped_undecidable = 0u64;
        let fleet = census.fleet();
        let y = self.config.y_days;
        for idx in census.prediction_population_with_boundary(self.config.x_days, y) {
            let db = &fleet.databases[idx];
            if let Some(required) = edition {
                if db.creation_edition() != required {
                    continue;
                }
            }
            // The population filter guarantees decidability on
            // generated fleets; recovered fleets from degraded
            // telemetry can violate it (e.g. a lost Dropped event
            // leaves the lifespan open inside the window), so skip
            // such rows instead of panicking.
            let Some(class) = census.classify_with_boundary(db, y) else {
                skipped_undecidable += 1;
                continue;
            };
            // Ephemeral databases never reach the prediction instant
            // alive; the population filter guarantees this.
            debug_assert_ne!(class, LifespanClass::Ephemeral);
            let label = (class == LifespanClass::LongLived) as usize;
            dataset.push(self.extract(census, db), label);
            let (duration, event) = db.observed_lifespan(census.window_end());
            survival.push((duration.as_days_f64(), event));
            indices.push(idx);
        }
        if obs::enabled() {
            obs::count_many(&[
                ("features.datasets_built", 1),
                ("features.rows_extracted", dataset.len() as u64),
                ("features.rows_skipped_undecidable", skipped_undecidable),
            ]);
        }
        (dataset, survival, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{Fleet, FleetConfig, RegionConfig};

    fn fleet() -> Fleet {
        Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.05), 3))
    }

    #[test]
    fn schema_and_vectors_align() {
        let f = fleet();
        let census = Census::new(&f);
        let ex = FeatureExtractor::new(&census, FeatureConfig::default());
        let db = &f.databases[10];
        let v = ex.extract(&census, db);
        assert_eq!(v.len(), ex.feature_names().len());
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn dataset_has_both_classes_and_matching_survival() {
        let f = fleet();
        let census = Census::new(&f);
        let ex = FeatureExtractor::new(&census, FeatureConfig::default());
        let (data, survival) = ex.build_dataset(&census, None);
        assert_eq!(data.len(), survival.len());
        assert!(data.len() > 100);
        let dist = data.class_distribution();
        assert!(dist[0] > 0 && dist[1] > 0, "{dist:?}");
        // Every survival duration is at least the observation prefix.
        assert!(survival.iter().all(|&(d, _)| d >= 2.0 - 1e-9));
    }

    #[test]
    fn edition_datasets_partition_population() {
        let f = fleet();
        let census = Census::new(&f);
        let ex = FeatureExtractor::new(&census, FeatureConfig::default());
        let (all, _) = ex.build_dataset(&census, None);
        let per_edition: usize = Edition::ALL
            .iter()
            .map(|&e| ex.build_dataset(&census, Some(e)).0.len())
            .sum();
        assert_eq!(all.len(), per_edition);
    }

    #[test]
    fn indexed_dataset_joins_back_to_fleet_records() {
        let f = fleet();
        let census = Census::new(&f);
        let ex = FeatureExtractor::new(&census, FeatureConfig::default());
        let (data, survival, indices) = ex.build_dataset_indexed(&census, None);
        assert_eq!(data.len(), indices.len());
        assert_eq!(survival.len(), indices.len());
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "indices must ascend in row order");
        }
        for (row, &idx) in indices.iter().enumerate().step_by(17) {
            let db = &f.databases[idx];
            // The row's label is the census label of the joined record.
            assert_eq!(data.label(row), census.is_long_lived(db) as usize);
            // And the features re-extract bitwise.
            assert_eq!(data.row(row), ex.extract(&census, db));
        }
        // The unindexed path is the indexed path minus the join key.
        let (plain, plain_survival) = ex.build_dataset(&census, None);
        assert_eq!(plain.len(), data.len());
        assert_eq!(plain_survival, survival);
    }

    #[test]
    fn labels_match_census() {
        let f = fleet();
        let census = Census::new(&f);
        let ex = FeatureExtractor::new(&census, FeatureConfig::default());
        let (data, survival) = ex.build_dataset(&census, None);
        for (i, &(days, event)) in survival.iter().take(200).enumerate() {
            if event {
                assert_eq!(
                    data.label(i),
                    (days > 30.0) as usize,
                    "label/lifespan mismatch at {i}: {days} days"
                );
            } else {
                // Censored rows in the dataset are long-lived by
                // construction (outlived day 30 inside the window).
                assert_eq!(data.label(i), 1);
                assert!(days > 30.0);
            }
        }
    }

    #[test]
    fn ngram_config_extends_schema() {
        let f = fleet();
        let census = Census::new(&f);
        let base = FeatureExtractor::new(&census, FeatureConfig::default());
        let vocab =
            NgramVocabulary::fit(f.databases.iter().map(|d| d.database_name.as_str()), 3, 20);
        let with = FeatureExtractor::new(
            &census,
            FeatureConfig {
                ngrams: Some(vocab),
                ..FeatureConfig::default()
            },
        );
        assert_eq!(with.feature_names().len(), base.feature_names().len() + 20);
        let db = &f.databases[0];
        assert_eq!(with.extract(&census, db).len(), with.feature_names().len());
    }

    #[test]
    fn larger_x_changes_features_not_schema() {
        let f = fleet();
        let census = Census::new(&f);
        let ex2 = FeatureExtractor::new(&census, FeatureConfig::default());
        let ex4 = FeatureExtractor::new(
            &census,
            FeatureConfig {
                x_days: 4.0,
                ..FeatureConfig::default()
            },
        );
        assert_eq!(ex2.feature_names(), ex4.feature_names());
        // A longer window sees at least as much history.
        let (d2, _) = ex2.build_dataset(&census, None);
        let (d4, _) = ex4.build_dataset(&census, None);
        // With x = 4 the population shrinks (must survive 4 days and be
        // labelable by the window end).
        assert!(d4.len() <= d2.len());
    }
}
