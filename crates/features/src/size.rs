//! Database-size features over the observation prefix.
//!
//! Paper §4.2: "Maximum, minimum, average, and standard deviation of
//! the absolute database size in megabytes; Rate of change in size from
//! day of creation to day of prediction."

use simtime::Duration;
use stats::Summary;
use telemetry::SizeTrace;

/// Names of the size features.
pub const SIZE_FEATURE_NAMES: [&str; 5] = [
    "size_max_mb",
    "size_min_mb",
    "size_avg_mb",
    "size_std_mb",
    "size_change_rate",
];

/// Extracts size features from the trace prefix up to `horizon` (the
/// prediction offset `x`).
pub fn size_features(trace: &SizeTrace, horizon: Duration) -> Vec<f64> {
    let prefix = trace.prefix(horizon);
    let mut summary = Summary::new();
    for &(_, size) in prefix {
        summary.push(size);
    }
    let initial = trace.initial_size_mb();
    let final_size = prefix.last().map(|&(_, s)| s).unwrap_or(initial);
    // Relative growth creation → prediction; 0 when the database never
    // reported (or started empty).
    let change_rate = if initial > 0.0 {
        (final_size - initial) / initial
    } else {
        0.0
    };
    vec![
        summary.max(),
        summary.min(),
        summary.mean(),
        summary.std_dev(),
        change_rate,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> SizeTrace {
        SizeTrace::new(vec![
            (Duration::hours(0), 100.0),
            (Duration::hours(12), 110.0),
            (Duration::hours(24), 130.0),
            (Duration::hours(72), 500.0),
        ])
    }

    #[test]
    fn prefix_statistics() {
        let f = size_features(&trace(), Duration::days(1));
        assert_eq!(f[0], 130.0); // max
        assert_eq!(f[1], 100.0); // min
        assert!((f[2] - (100.0 + 110.0 + 130.0) / 3.0).abs() < 1e-9);
        assert!(f[3] > 0.0);
        assert!((f[4] - 0.3).abs() < 1e-12); // (130-100)/100
    }

    #[test]
    fn no_leakage_beyond_horizon() {
        // The 500 MB sample at 72h must not affect 2-day features.
        let f = size_features(&trace(), Duration::days(2));
        assert_eq!(f[0], 130.0);
    }

    #[test]
    fn flat_trace_has_zero_change() {
        let t = SizeTrace::new(vec![(Duration::hours(0), 50.0), (Duration::hours(6), 50.0)]);
        let f = size_features(&t, Duration::days(2));
        assert_eq!(f[3], 0.0);
        assert_eq!(f[4], 0.0);
    }

    #[test]
    fn single_sample_trace() {
        let t = SizeTrace::new(vec![(Duration::hours(0), 75.0)]);
        let f = size_features(&t, Duration::days(2));
        assert_eq!(f, vec![75.0, 75.0, 75.0, 0.0, 0.0]);
    }
}
