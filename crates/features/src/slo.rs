//! Edition and performance-level (SLO) features.
//!
//! Paper §4.2: number of edition/performance-level changes, number of
//! distinct editions/levels, edition and level at prediction time, the
//! difference between creation and prediction values, and max/min/avg
//! DTUs — all over the observation prefix only.

use simtime::Timestamp;
use telemetry::catalog::SLOS;
use telemetry::DatabaseRecord;

/// Names of the SLO features.
pub const SLO_FEATURE_NAMES: [&str; 11] = [
    "edition_changes",
    "slo_changes",
    "distinct_editions",
    "distinct_slos",
    "edition_at_prediction",
    "dtus_at_prediction",
    "edition_rank_delta",
    "dtu_delta",
    "dtus_max",
    "dtus_min",
    "dtus_avg",
];

/// Extracts SLO features from the history prefix up to `prediction_at`.
pub fn slo_features(db: &DatabaseRecord, prediction_at: Timestamp) -> Vec<f64> {
    // History entries in effect during [created, prediction].
    let mut prefix: Vec<usize> = db
        .slo_history
        .iter()
        .filter(|c| c.at <= prediction_at)
        .map(|c| c.slo_index)
        .collect();
    // Generated records always carry their creation entry at
    // `created_at <= prediction_at`, but recovered records from
    // degraded telemetry may not (a reordered creation can land after
    // the horizon). Fall back to the earliest known SLO so the feature
    // vector stays defined instead of panicking on index 0 below.
    if prefix.is_empty() {
        prefix.push(db.slo_history.first().map_or(0, |c| c.slo_index));
    }

    let mut edition_changes = 0usize;
    let mut slo_changes = 0usize;
    for w in prefix.windows(2) {
        slo_changes += 1;
        if SLOS[w[0]].edition != SLOS[w[1]].edition {
            edition_changes += 1;
        }
    }

    let mut editions: Vec<usize> = prefix.iter().map(|&i| SLOS[i].edition.rank()).collect();
    editions.sort_unstable();
    editions.dedup();
    let mut slos = prefix.clone();
    slos.sort_unstable();
    slos.dedup();

    let first = prefix[0];
    let last = *prefix.last().unwrap_or(&first);
    let dtus: Vec<f64> = prefix.iter().map(|&i| SLOS[i].dtus as f64).collect();
    let dtu_max = dtus.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let dtu_min = dtus.iter().cloned().fold(f64::INFINITY, f64::min);
    let dtu_avg = dtus.iter().sum::<f64>() / dtus.len() as f64;

    vec![
        edition_changes as f64,
        slo_changes as f64,
        editions.len() as f64,
        slos.len() as f64,
        SLOS[last].edition.rank() as f64,
        SLOS[last].dtus as f64,
        SLOS[last].edition.rank() as f64 - SLOS[first].edition.rank() as f64,
        SLOS[last].dtus as f64 - SLOS[first].dtus as f64,
        dtu_max,
        dtu_min,
        dtu_avg,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Duration;
    use telemetry::catalog::SloCatalog;
    use telemetry::{
        RegionId, SizeTrace, SloChange, SubscriptionId, SubscriptionType, UtilizationTrace,
    };

    fn db_with_history(names: &[(&str, i64)]) -> DatabaseRecord {
        let created = Timestamp::from_ymd_hms(2017, 6, 1, 0, 0, 0);
        DatabaseRecord {
            id: 0,
            region: RegionId::Region1,
            server_name: "s".into(),
            database_name: "d".into(),
            subscription_id: SubscriptionId(0),
            subscription_type: SubscriptionType::PayAsYouGo,
            created_at: created,
            dropped_at: None,
            slo_history: names
                .iter()
                .map(|&(name, day)| SloChange {
                    at: created + Duration::days(day),
                    slo_index: SloCatalog::index_of(name).unwrap(),
                })
                .collect(),
            size_trace: SizeTrace::new(vec![(Duration::seconds(0), 10.0)]),
            utilization_trace: UtilizationTrace::new(vec![(Duration::seconds(0), 40.0)]),
            elastic_pool: None,
            is_internal: false,
        }
    }

    #[test]
    fn static_database() {
        let db = db_with_history(&[("S1", 0)]);
        let f = slo_features(&db, db.created_at + Duration::days(2));
        assert_eq!(f[0], 0.0); // edition changes
        assert_eq!(f[1], 0.0); // slo changes
        assert_eq!(f[2], 1.0);
        assert_eq!(f[3], 1.0);
        assert_eq!(f[4], 1.0); // Standard rank
        assert_eq!(f[5], 20.0);
        assert_eq!(f[6], 0.0);
        assert_eq!(f[7], 0.0);
        assert_eq!(f[8], 20.0);
        assert_eq!(f[10], 20.0);
    }

    #[test]
    fn cross_edition_walk() {
        let db = db_with_history(&[("S1", 0), ("S2", 1), ("P1", 2)]);
        let f = slo_features(&db, db.created_at + Duration::days(2));
        assert_eq!(f[0], 1.0); // one edition change (S→P)
        assert_eq!(f[1], 2.0);
        assert_eq!(f[2], 2.0); // Standard + Premium
        assert_eq!(f[3], 3.0);
        assert_eq!(f[4], 2.0); // Premium at prediction
        assert_eq!(f[5], 125.0);
        assert_eq!(f[6], 1.0); // rank delta
        assert_eq!(f[7], 105.0); // 125 − 20
        assert_eq!(f[8], 125.0);
        assert_eq!(f[9], 20.0);
    }

    #[test]
    fn pre_creation_horizon_falls_back_to_first_slo() {
        // Recovered records from degraded telemetry can put the
        // horizon before the (re-dated) creation; the features must
        // stay defined.
        let db = db_with_history(&[("S1", 0)]);
        let f = slo_features(&db, db.created_at - Duration::days(1));
        assert_eq!(f[1], 0.0); // no changes visible
        assert_eq!(f[4], 1.0); // Standard rank from the fallback entry
        assert_eq!(f[5], 20.0);
    }

    #[test]
    fn changes_after_prediction_are_invisible() {
        let db = db_with_history(&[("S1", 0), ("P1", 5)]);
        let f = slo_features(&db, db.created_at + Duration::days(2));
        assert_eq!(f[0], 0.0);
        assert_eq!(f[4], 1.0); // still Standard at Tp
                               // And they ARE visible at a later horizon.
        let g = slo_features(&db, db.created_at + Duration::days(6));
        assert_eq!(g[0], 1.0);
        assert_eq!(g[4], 2.0);
    }
}
