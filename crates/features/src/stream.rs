//! Streaming featurization over fleet shards.
//!
//! The streaming pipeline (`telemetry::stream`) turns a region into
//! shards of whole subscriptions, each a self-contained [`Fleet`]. This
//! module featurizes those shards one at a time and merges the partial
//! datasets deterministically, so a million-database region never holds
//! raw telemetry for more than one shard at once.
//!
//! **Equivalence by construction.** Every judgment the dataset builder
//! makes is local to one database or one subscription:
//!
//! * The census population filters (singleton, internal, 2-day minimum,
//!   decidability) read one database plus its subscription's siblings
//!   and the region window carried in the shard's `FleetConfig`.
//! * The subscription-history features index siblings *within* a
//!   subscription; shards cut at subscription boundaries keep every
//!   sibling together.
//! * Rows are pushed in fleet order (ascending database id), and shard
//!   id-ranges are disjoint and ascending in shard index.
//!
//! Hence appending per-shard datasets in shard order reproduces the
//! whole-fleet dataset bitwise — `tests/stream_equivalence.rs` holds
//! this contract under proptest.

use crate::pipeline::{feature_schema, FeatureConfig, FeatureExtractor};
use forest::Dataset;
use std::collections::BTreeMap;
use telemetry::{Census, Edition, Fleet};

/// Accumulates per-shard datasets and merges them in shard order.
///
/// Shards may arrive in any order (the visit order is a free choice of
/// the driver); the merge sorts by shard index, so the result is
/// visit-order-invariant.
#[derive(Debug)]
pub struct StreamingDatasetBuilder {
    config: FeatureConfig,
    edition: Option<Edition>,
    shards: BTreeMap<usize, (Dataset, Vec<(f64, bool)>)>,
}

impl StreamingDatasetBuilder {
    /// A new builder producing the same dataset
    /// [`FeatureExtractor::build_dataset`] would for `edition`.
    pub fn new(config: FeatureConfig, edition: Option<Edition>) -> StreamingDatasetBuilder {
        StreamingDatasetBuilder {
            config,
            edition,
            shards: BTreeMap::new(),
        }
    }

    /// Featurizes one shard fleet (whole subscriptions only) and stores
    /// its partial dataset under `shard`. Returns the number of rows
    /// the shard contributed. Pushing the same shard index twice
    /// replaces the earlier partial.
    pub fn push_shard(&mut self, shard: usize, fleet: &Fleet) -> usize {
        let census = Census::new(fleet);
        let extractor = FeatureExtractor::new(&census, self.config.clone());
        let (dataset, survival) = extractor.build_dataset(&census, self.edition);
        let rows = dataset.len();
        self.shards.insert(shard, (dataset, survival));
        rows
    }

    /// Rows accumulated so far across all shards.
    pub fn rows(&self) -> usize {
        self.shards.values().map(|(d, _)| d.len()).sum()
    }

    /// Merges the shards in ascending shard index into one dataset plus
    /// the row-aligned survival pairs.
    pub fn finish(self) -> (Dataset, Vec<(f64, bool)>) {
        let mut dataset = Dataset::new(feature_schema(&self.config), 2);
        let mut survival = Vec::new();
        for (_, (shard_dataset, shard_survival)) in self.shards {
            dataset.append(&shard_dataset);
            survival.extend(shard_survival);
        }
        (dataset, survival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{FleetConfig, RegionConfig, ShardPlan};

    fn config() -> FleetConfig {
        FleetConfig::new(RegionConfig::region_1().scaled(0.03), 17)
    }

    #[test]
    fn sharded_featurization_matches_whole_fleet() {
        let whole = Fleet::generate(config());
        let census = Census::new(&whole);
        let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
        let (expected, expected_survival) = extractor.build_dataset(&census, None);

        for shards in [1usize, 3] {
            let plan = ShardPlan::new(config().region.subscription_count, shards);
            let mut builder = StreamingDatasetBuilder::new(FeatureConfig::default(), None);
            // Visit shards back-to-front: the merge must not care.
            for shard in (0..plan.shard_count()).rev() {
                let range = plan.range(shard);
                let shard_fleet = Fleet::generate_range(config(), range);
                builder.push_shard(shard, &shard_fleet);
            }
            assert_eq!(builder.rows(), expected.len());
            let (merged, survival) = builder.finish();
            assert_eq!(merged, expected, "{shards} shards");
            assert_eq!(survival, expected_survival, "{shards} shards");
        }
    }

    #[test]
    fn empty_builder_yields_schema_only_dataset() {
        let builder = StreamingDatasetBuilder::new(FeatureConfig::default(), None);
        assert_eq!(builder.rows(), 0);
        let (dataset, survival) = builder.finish();
        assert!(dataset.is_empty());
        assert!(survival.is_empty());
        assert_eq!(
            dataset.feature_names(),
            feature_schema(&FeatureConfig::default())
        );
    }
}
