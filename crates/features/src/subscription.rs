//! Subscription-type and subscription-history features.
//!
//! Paper §4.2, the family that §5.4 finds most predictive. For a
//! database `I` with creation time `Tc` and prediction time `Tp`, the
//! paper groups the owning subscription's other databases as:
//!
//! 1. created before `Tc` and still alive at `Tc`;
//! 2. created before `Tc`, dropped any time (a superset of group 1);
//! 3. created in `(Tc, Tp)`.
//!
//! For groups 1 and 2 it computes counts plus max/min/avg/std of sizes
//! and lifespans; for group 3 the count. All lifespans are censored at
//! `Tp` — nothing later than the prediction instant may leak in.

use simtime::Timestamp;
use stats::Summary;
use std::collections::HashMap;
use telemetry::{DatabaseRecord, Fleet, SubscriptionId, SubscriptionType};

/// Names of the subscription features (type one-hot + history groups).
pub fn subscription_feature_names() -> Vec<String> {
    let mut names: Vec<String> = SubscriptionType::ALL
        .iter()
        .map(|t| format!("sub_type_{t}"))
        .collect();
    for group in ["g1", "g2"] {
        names.push(format!("hist_{group}_count"));
        for stat in ["max", "min", "avg", "std"] {
            names.push(format!("hist_{group}_size_{stat}"));
        }
        for stat in ["max", "min", "avg", "std"] {
            names.push(format!("hist_{group}_life_{stat}"));
        }
    }
    names.push("hist_g3_count".into());
    names
}

/// A compact sibling-database summary used by the history features.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SiblingRecord {
    created_at: Timestamp,
    dropped_at: Option<Timestamp>,
    max_size_mb: f64,
    id: u64,
}

/// Precomputed per-subscription index over a fleet, so per-database
/// feature extraction is O(siblings) instead of O(fleet).
#[derive(Debug, Clone, Default)]
pub struct SubscriptionHistoryIndex {
    by_subscription: HashMap<SubscriptionId, Vec<SiblingRecord>>,
}

impl SubscriptionHistoryIndex {
    /// Builds the index from a fleet.
    pub fn build(fleet: &Fleet) -> SubscriptionHistoryIndex {
        let mut by_subscription: HashMap<SubscriptionId, Vec<SiblingRecord>> = HashMap::new();
        for db in &fleet.databases {
            let max_size = db
                .size_trace
                .samples()
                .iter()
                .map(|&(_, s)| s)
                .fold(f64::NEG_INFINITY, f64::max);
            by_subscription
                .entry(db.subscription_id)
                .or_default()
                .push(SiblingRecord {
                    created_at: db.created_at,
                    dropped_at: db.dropped_at,
                    max_size_mb: max_size,
                    id: db.id,
                });
        }
        for records in by_subscription.values_mut() {
            records.sort_by_key(|r| (r.created_at, r.id));
        }
        SubscriptionHistoryIndex { by_subscription }
    }

    /// Extracts the history features for `db` at prediction time
    /// `prediction_at` (`Tp`). The record itself is excluded from every
    /// group.
    pub fn history_features(&self, db: &DatabaseRecord, prediction_at: Timestamp) -> Vec<f64> {
        let tc = db.created_at;
        let tp = prediction_at;
        let empty: Vec<SiblingRecord> = Vec::new();
        let siblings = self
            .by_subscription
            .get(&db.subscription_id)
            .unwrap_or(&empty);

        // Group accumulators: (count, size summary, lifespan summary).
        let mut g1_sizes = Summary::new();
        let mut g1_lives = Summary::new();
        let mut g1_count = 0usize;
        let mut g2_sizes = Summary::new();
        let mut g2_lives = Summary::new();
        let mut g2_count = 0usize;
        let mut g3_count = 0usize;

        for s in siblings {
            if s.id == db.id {
                continue;
            }
            // Only telemetry from before Tp exists at prediction time.
            if s.created_at >= tp {
                continue;
            }
            // Observed (possibly Tp-censored) lifespan in days.
            let end = match s.dropped_at {
                Some(d) if d <= tp => d,
                _ => tp,
            };
            let life_days = (end - s.created_at).as_days_f64();

            if s.created_at < tc {
                // Group 2: created before Tc, dropped any time.
                g2_count += 1;
                g2_sizes.push(s.max_size_mb);
                g2_lives.push(life_days);
                // Group 1: additionally still alive at Tc.
                let alive_at_tc = match s.dropped_at {
                    Some(d) => d > tc,
                    None => true,
                };
                if alive_at_tc {
                    g1_count += 1;
                    g1_sizes.push(s.max_size_mb);
                    g1_lives.push(life_days);
                }
            } else {
                // Group 3: created in (Tc, Tp).
                g3_count += 1;
            }
        }

        let mut out = Vec::with_capacity(19);
        for (count, sizes, lives) in [
            (g1_count, g1_sizes, g1_lives),
            (g2_count, g2_sizes, g2_lives),
        ] {
            out.push(count as f64);
            out.extend([sizes.max(), sizes.min(), sizes.mean(), sizes.std_dev()]);
            out.extend([lives.max(), lives.min(), lives.mean(), lives.std_dev()]);
        }
        out.push(g3_count as f64);
        out
    }
}

/// One-hot subscription-type features.
pub fn subscription_type_features(t: SubscriptionType) -> Vec<f64> {
    let mut out = vec![0.0; SubscriptionType::ALL.len()];
    out[t.index()] = 1.0;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Duration;
    use telemetry::{Fleet, FleetConfig, RegionConfig};

    fn fleet() -> Fleet {
        Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.03), 5))
    }

    #[test]
    fn one_hot_is_exclusive() {
        for t in SubscriptionType::ALL {
            let f = subscription_type_features(t);
            assert_eq!(f.iter().sum::<f64>(), 1.0);
            assert_eq!(f[t.index()], 1.0);
        }
    }

    #[test]
    fn feature_name_count_matches_vector() {
        let f = fleet();
        let index = SubscriptionHistoryIndex::build(&f);
        let db = &f.databases[f.databases.len() / 2];
        let features = index.history_features(db, db.created_at + Duration::days(2));
        // 19 history features; the full name list adds 5 type one-hots.
        assert_eq!(features.len() + 5, subscription_feature_names().len());
    }

    #[test]
    fn groups_count_siblings_not_self() {
        let f = fleet();
        let index = SubscriptionHistoryIndex::build(&f);
        // Find a cycler-owned database: many siblings.
        let busy = f
            .databases
            .iter()
            .max_by_key(|db| {
                f.databases
                    .iter()
                    .filter(|o| o.subscription_id == db.subscription_id)
                    .count()
            })
            .unwrap();
        let tp = busy.created_at + Duration::days(2);
        let features = index.history_features(busy, tp);
        let g1 = features[0];
        let g2 = features[9];
        let g3 = features[18];
        // Group 1 ⊆ group 2.
        assert!(g1 <= g2);
        // A busy subscription has some history or concurrent creations.
        assert!(g2 + g3 > 0.0);
    }

    #[test]
    fn no_leakage_of_future_lifespans() {
        // Group-2 lifespans are censored at Tp: none may exceed the
        // sibling's age at Tp.
        let f = fleet();
        let index = SubscriptionHistoryIndex::build(&f);
        for db in f.databases.iter().take(300) {
            let tp = db.created_at + Duration::days(2);
            let features = index.history_features(db, tp);
            let g2_life_max = features[9 + 5];
            for sib in &f.databases {
                if sib.subscription_id == db.subscription_id && sib.id != db.id {
                    let age_at_tp = (tp - sib.created_at).as_days_f64();
                    if age_at_tp > 0.0 {
                        assert!(
                            g2_life_max <= age_at_tp.max(g2_life_max),
                            "future lifespan leaked"
                        );
                    }
                }
            }
            // Strongest check: max observed lifespan cannot exceed the
            // oldest sibling's age at Tp.
            let oldest_age = f
                .databases
                .iter()
                .filter(|s| s.subscription_id == db.subscription_id && s.id != db.id)
                .map(|s| (tp - s.created_at).as_days_f64())
                .fold(0.0_f64, f64::max);
            assert!(g2_life_max <= oldest_age + 1e-9);
        }
    }

    #[test]
    fn empty_history_yields_zeros() {
        let f = fleet();
        let index = SubscriptionHistoryIndex::build(&f);
        // The very first database of a subscription, predicted
        // immediately at creation+ε, can only see group-3 siblings.
        let first = &f.databases[0];
        let features = index.history_features(first, first.created_at + Duration::days(2));
        assert_eq!(features[0], 0.0); // no group-1 siblings before first
    }
}
