//! Creation-time features.
//!
//! Paper §4.2: "Day of the week (1-7), Day of the month (1-31), Week of
//! the year (1-52), Month of the year (1-12), Hour of the day (0-23)",
//! computed after localizing to the hosting region. Our simulator emits
//! region-local timestamps directly. We add two derived indicators the
//! paper discusses in §5.4 (weekend / regional-holiday creation) as
//! extension features.

use simtime::{HolidayCalendar, Timestamp};

/// Names of the creation-time features, aligned with
/// [`time_features`]'s output.
pub const TIME_FEATURE_NAMES: [&str; 7] = [
    "created_day_of_week",
    "created_day_of_month",
    "created_week_of_year",
    "created_month",
    "created_hour",
    "created_on_weekend",
    "created_on_holiday",
];

/// Extracts creation-time features.
pub fn time_features(created_at: Timestamp, holidays: &HolidayCalendar) -> Vec<f64> {
    let dt = created_at.datetime();
    let date = dt.date;
    vec![
        date.weekday().number() as f64,
        date.day() as f64,
        date.iso_week() as f64,
        date.month() as f64,
        dt.hour as f64,
        date.weekday().is_weekend() as u8 as f64,
        holidays.is_holiday(date) as u8 as f64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_timestamp_decomposes() {
        // 2017-07-04 (Tuesday, US-like holiday) 09:30.
        let t = Timestamp::from_ymd_hms(2017, 7, 4, 9, 30, 0);
        let f = time_features(t, &HolidayCalendar::us_like());
        assert_eq!(f.len(), TIME_FEATURE_NAMES.len());
        assert_eq!(f[0], 2.0); // Tuesday
        assert_eq!(f[1], 4.0);
        assert_eq!(f[2], 27.0); // ISO week 27
        assert_eq!(f[3], 7.0);
        assert_eq!(f[4], 9.0);
        assert_eq!(f[5], 0.0);
        assert_eq!(f[6], 1.0);
    }

    #[test]
    fn weekend_flag() {
        let t = Timestamp::from_ymd_hms(2017, 6, 11, 23, 0, 0); // Sunday
        let f = time_features(t, &HolidayCalendar::us_like());
        assert_eq!(f[0], 7.0);
        assert_eq!(f[5], 1.0);
        assert_eq!(f[6], 0.0);
    }

    #[test]
    fn ranges_are_paperlike() {
        let cal = HolidayCalendar::europe_like();
        for day in 0..200 {
            let t = Timestamp::from_ymd_hms(2017, 1, 1, 0, 0, 0)
                + simtime::Duration::days(day)
                + simtime::Duration::hours(day % 24);
            let f = time_features(t, &cal);
            assert!((1.0..=7.0).contains(&f[0]));
            assert!((1.0..=31.0).contains(&f[1]));
            assert!((1.0..=53.0).contains(&f[2]));
            assert!((1.0..=12.0).contains(&f[3]));
            assert!((0.0..=23.0).contains(&f[4]));
        }
    }
}
