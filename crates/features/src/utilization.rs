//! DTU-utilization features over the observation prefix.
//!
//! The paper's telemetry includes utilization levels (§2); an idle
//! database in its first days is more likely to be abandoned. These
//! features summarize the DTU-percent samples inside the first `x`
//! days: level statistics, the fraction of busy samples, and the
//! weekday-vs-weekend activity ratio (the §2 "scale down on Fridays"
//! signature).

use simtime::{Duration, Timestamp};
use stats::Summary;
use telemetry::UtilizationTrace;

/// Names of the utilization features.
pub const UTILIZATION_FEATURE_NAMES: [&str; 6] = [
    "util_avg_pct",
    "util_max_pct",
    "util_min_pct",
    "util_std_pct",
    "util_busy_fraction",
    "util_weekend_ratio",
];

/// DTU percentage above which a sample counts as "busy".
pub const BUSY_THRESHOLD_PCT: f64 = 40.0;

/// Extracts utilization features from the trace prefix up to `horizon`.
///
/// `created_at` anchors weekday/weekend attribution of each sample.
/// The weekend ratio is weekend-mean / weekday-mean, clamped to
/// `[0, 10]`; it is 1 when either side has no samples (no evidence of
/// a weekly pattern within the prefix).
pub fn utilization_features(
    trace: &UtilizationTrace,
    created_at: Timestamp,
    horizon: Duration,
) -> Vec<f64> {
    let prefix = trace.prefix(horizon);
    let mut all = Summary::new();
    let mut weekday = Summary::new();
    let mut weekend = Summary::new();
    let mut busy = 0usize;
    for &(offset, value) in prefix {
        all.push(value);
        if value >= BUSY_THRESHOLD_PCT {
            busy += 1;
        }
        if (created_at + offset).date().weekday().is_weekend() {
            weekend.push(value);
        } else {
            weekday.push(value);
        }
    }
    let busy_fraction = if prefix.is_empty() {
        0.0
    } else {
        busy as f64 / prefix.len() as f64
    };
    let weekend_ratio = if weekend.count() == 0 || weekday.count() == 0 || weekday.mean() <= 0.0 {
        1.0
    } else {
        (weekend.mean() / weekday.mean()).clamp(0.0, 10.0)
    };
    vec![
        all.mean(),
        all.max(),
        all.min(),
        all.std_dev(),
        busy_fraction,
        weekend_ratio,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monday() -> Timestamp {
        Timestamp::from_ymd_hms(2017, 6, 5, 0, 0, 0)
    }

    #[test]
    fn summarizes_prefix_only() {
        let trace = UtilizationTrace::new(vec![
            (Duration::hours(0), 50.0),
            (Duration::hours(12), 70.0),
            (Duration::hours(72), 99.0), // beyond 2-day horizon
        ]);
        let f = utilization_features(&trace, monday(), Duration::days(2));
        assert!((f[0] - 60.0).abs() < 1e-12); // mean of 50, 70
        assert_eq!(f[1], 70.0);
        assert_eq!(f[2], 50.0);
        assert_eq!(f[4], 1.0); // both samples busy
    }

    #[test]
    fn busy_fraction_counts_threshold() {
        let trace = UtilizationTrace::new(vec![
            (Duration::hours(0), 10.0),
            (Duration::hours(6), 45.0),
            (Duration::hours(12), 39.9),
            (Duration::hours(18), 80.0),
        ]);
        let f = utilization_features(&trace, monday(), Duration::days(2));
        assert!((f[4] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weekend_ratio_detects_scale_down() {
        // Friday start: samples at +0h (Fri), +24h (Sat), +48h (Sun),
        // +72h (Mon).
        let friday = Timestamp::from_ymd_hms(2017, 6, 9, 12, 0, 0);
        let trace = UtilizationTrace::new(vec![
            (Duration::hours(0), 80.0),
            (Duration::hours(24), 16.0),
            (Duration::hours(48), 16.0),
            (Duration::hours(72), 80.0),
        ]);
        let f = utilization_features(&trace, friday, Duration::days(4));
        assert!((f[5] - 0.2).abs() < 1e-9, "ratio {}", f[5]);
    }

    #[test]
    fn no_weekend_samples_gives_neutral_ratio() {
        let trace = UtilizationTrace::new(vec![(Duration::hours(0), 42.0)]);
        let f = utilization_features(&trace, monday(), Duration::days(1));
        assert_eq!(f[5], 1.0);
    }
}
