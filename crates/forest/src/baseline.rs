//! The paper's weighted-random baseline classifier (§5.1).

use crate::data::Dataset;
use rand::Rng;

/// A classifier that ignores features entirely: it estimates the
/// positive-class probability `p` from the training distribution and
/// predicts positive with probability `p` by coin flip.
///
/// This is exactly the paper's baseline: "It first computes the
/// probability p that an example is positive solely based on the class
/// distribution in the training data. For each example in the testing
/// set, it computes a random number r between 0 and 1. If r < p, it
/// classifies the example as positive."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedRandomClassifier {
    positive_probability: f64,
}

impl WeightedRandomClassifier {
    /// Fits the baseline: records the positive-class (class 1) fraction.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> WeightedRandomClassifier {
        assert!(!data.is_empty(), "cannot fit baseline on empty data");
        WeightedRandomClassifier {
            positive_probability: data.class_fraction(1),
        }
    }

    /// Fits the baseline from a borrowed view (zero-copy training
    /// path).
    ///
    /// # Panics
    ///
    /// Panics on an empty view.
    pub fn fit_view(view: &crate::data::DatasetView<'_>) -> WeightedRandomClassifier {
        assert!(!view.is_empty(), "cannot fit baseline on empty data");
        WeightedRandomClassifier {
            positive_probability: view.class_fraction(1),
        }
    }

    /// Creates a baseline with an explicit positive probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn with_probability(p: f64) -> WeightedRandomClassifier {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        WeightedRandomClassifier {
            positive_probability: p,
        }
    }

    /// The training positive-class fraction.
    pub fn positive_probability(&self) -> f64 {
        self.positive_probability
    }

    /// Predicts one example's class by weighted coin flip.
    pub fn predict<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        (rng.gen::<f64>() < self.positive_probability) as usize
    }

    /// Predicts `n` examples.
    pub fn predict_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        (0..n).map(|_| self.predict(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn learns_class_fraction() {
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..10 {
            d.push(vec![0.0], (i < 7) as usize);
        }
        let b = WeightedRandomClassifier::fit(&d);
        assert!((b.positive_probability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn prediction_rate_converges() {
        let b = WeightedRandomClassifier::with_probability(0.3);
        let mut rng = SmallRng::seed_from_u64(77);
        let preds = b.predict_many(20_000, &mut rng);
        let rate = preds.iter().sum::<usize>() as f64 / preds.len() as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn expected_baseline_scores() {
        // With positive fraction q, the baseline's expected accuracy is
        // q² + (1−q)² and expected precision/recall are both q — the
        // identities DESIGN.md uses to calibrate the generator.
        let q: f64 = 0.68;
        let b = WeightedRandomClassifier::with_probability(q);
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 100_000;
        let actual: Vec<usize> = (0..n).map(|_| (rng.gen::<f64>() < q) as usize).collect();
        let preds = b.predict_many(n, &mut rng);
        let m = crate::metrics::ConfusionMatrix::from_predictions(&preds, &actual);
        assert!((m.accuracy() - (q * q + (1.0 - q) * (1.0 - q))).abs() < 0.01);
        assert!((m.precision() - q).abs() < 0.01);
        assert!((m.recall() - q).abs() < 0.01);
    }

    #[test]
    fn extreme_probabilities() {
        let mut rng = SmallRng::seed_from_u64(1);
        let zero = WeightedRandomClassifier::with_probability(0.0);
        assert!(zero.predict_many(100, &mut rng).iter().all(|&p| p == 0));
        let one = WeightedRandomClassifier::with_probability(1.0);
        assert!(one.predict_many(100, &mut rng).iter().all(|&p| p == 1));
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_probability() {
        WeightedRandomClassifier::with_probability(1.5);
    }
}
