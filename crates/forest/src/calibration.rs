//! Probability-calibration diagnostics.
//!
//! The paper's confidence partition (§5.3) treats the forest's class
//! probabilities as confidence levels, citing the finding that random
//! forests estimate class probabilities well even without calibration
//! (Zadrozny & Elkan; Caruana & Niculescu-Mizil). This module provides
//! the diagnostics to *verify* that on our data: a reliability diagram
//! (predicted probability vs observed frequency per bin) and the Brier
//! score.

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBin {
    /// Bin lower edge (upper edge is `lo + width`).
    pub lo: f64,
    /// Mean predicted probability of examples in the bin.
    pub mean_predicted: f64,
    /// Observed positive frequency in the bin.
    pub observed_frequency: f64,
    /// Number of examples in the bin.
    pub count: usize,
}

/// A reliability diagram over equal-width probability bins.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityDiagram {
    bins: Vec<ReliabilityBin>,
    brier: f64,
    ece: f64,
}

impl ReliabilityDiagram {
    /// Builds the diagram from positive-class probabilities and 0/1
    /// labels.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, `bins == 0`, or any
    /// probability is outside `[0, 1]`.
    pub fn build(probabilities: &[f64], labels: &[usize], bins: usize) -> ReliabilityDiagram {
        assert_eq!(
            probabilities.len(),
            labels.len(),
            "probability/label length mismatch"
        );
        assert!(bins > 0, "need at least one bin");
        let width = 1.0 / bins as f64;

        let mut counts = vec![0usize; bins];
        let mut prob_sums = vec![0.0_f64; bins];
        let mut pos_counts = vec![0usize; bins];
        let mut brier = 0.0;

        for (&p, &label) in probabilities.iter().zip(labels) {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
            let idx = ((p / width) as usize).min(bins - 1);
            counts[idx] += 1;
            prob_sums[idx] += p;
            pos_counts[idx] += (label == 1) as usize;
            let target = (label == 1) as u8 as f64;
            brier += (p - target) * (p - target);
        }
        let n = probabilities.len().max(1) as f64;
        brier /= n;

        let mut out = Vec::with_capacity(bins);
        let mut ece = 0.0;
        for i in 0..bins {
            let count = counts[i];
            let mean_predicted = if count > 0 {
                prob_sums[i] / count as f64
            } else {
                0.0
            };
            let observed_frequency = if count > 0 {
                pos_counts[i] as f64 / count as f64
            } else {
                0.0
            };
            if count > 0 {
                ece += (count as f64 / n) * (mean_predicted - observed_frequency).abs();
            }
            out.push(ReliabilityBin {
                lo: i as f64 * width,
                mean_predicted,
                observed_frequency,
                count,
            });
        }

        ReliabilityDiagram {
            bins: out,
            brier,
            ece,
        }
    }

    /// The bins, ascending.
    pub fn bins(&self) -> &[ReliabilityBin] {
        &self.bins
    }

    /// Brier score (mean squared error of the probabilities; lower is
    /// better, 0.25 is the score of a constant 0.5 forecast).
    pub fn brier_score(&self) -> f64 {
        self.brier
    }

    /// Expected calibration error: the bin-count-weighted mean absolute
    /// gap between predicted probability and observed frequency.
    pub fn expected_calibration_error(&self) -> f64 {
        self.ece
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfectly_calibrated_probabilities() {
        // Probability p, labels drawn to match p exactly in each bin.
        let mut probs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let p = (i as f64 + 0.5) / 10.0;
            for j in 0..100 {
                probs.push(p);
                labels.push(((j as f64) + 0.5 < p * 100.0) as usize);
            }
        }
        let d = ReliabilityDiagram::build(&probs, &labels, 10);
        assert!(
            d.expected_calibration_error() < 0.01,
            "ece = {}",
            d.expected_calibration_error()
        );
        for bin in d.bins() {
            assert!((bin.mean_predicted - bin.observed_frequency).abs() < 0.01);
        }
    }

    #[test]
    fn overconfident_probabilities_show_large_ece() {
        // Predicts 0.99/0.01 while truth is a coin flip.
        let probs: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 0.99 } else { 0.01 })
            .collect();
        let labels: Vec<usize> = (0..1000).map(|i| ((i / 2) % 2 == 0) as usize).collect();
        let d = ReliabilityDiagram::build(&probs, &labels, 10);
        assert!(d.expected_calibration_error() > 0.3);
        assert!(d.brier_score() > 0.3);
    }

    #[test]
    fn brier_of_constant_half() {
        let probs = vec![0.5; 100];
        let labels: Vec<usize> = (0..100).map(|i| (i % 2) as usize).collect();
        let d = ReliabilityDiagram::build(&probs, &labels, 5);
        assert!((d.brier_score() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_safe() {
        let d = ReliabilityDiagram::build(&[], &[], 5);
        assert_eq!(d.brier_score(), 0.0);
        assert_eq!(d.expected_calibration_error(), 0.0);
        assert!(d.bins().iter().all(|b| b.count == 0));
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_probability() {
        ReliabilityDiagram::build(&[1.5], &[1], 5);
    }

    proptest! {
        #[test]
        fn prop_counts_partition_input(
            probs in prop::collection::vec(0.0..=1.0_f64, 0..300),
            labels in prop::collection::vec(0usize..2, 0..300),
        ) {
            let n = probs.len().min(labels.len());
            let d = ReliabilityDiagram::build(&probs[..n], &labels[..n], 7);
            let total: usize = d.bins().iter().map(|b| b.count).sum();
            prop_assert_eq!(total, n);
        }

        #[test]
        fn prop_brier_in_unit_interval(
            probs in prop::collection::vec(0.0..=1.0_f64, 1..200),
            labels in prop::collection::vec(0usize..2, 1..200),
        ) {
            let n = probs.len().min(labels.len());
            let d = ReliabilityDiagram::build(&probs[..n], &labels[..n], 10);
            prop_assert!((0.0..=1.0).contains(&d.brier_score()));
            prop_assert!((0.0..=1.0).contains(&d.expected_calibration_error()));
        }
    }
}
