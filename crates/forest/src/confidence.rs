//! Confidence partitioning of predictions (paper §5.3).
//!
//! The forest's positive-class probability estimate is treated as a
//! confidence level. With threshold `t = max(q, 1 − q)` (q = training
//! positive fraction), a prediction is **confident** when `p >= t` or
//! `p <= 1 − t`, and **uncertain** when `1 − t < p < t` — i.e. when the
//! probability sits near 0.5 relative to the class balance.

/// Which side of the confidence threshold a prediction fell on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfidenceSplit {
    /// `p >= t` or `p <= 1 − t`: act on this prediction.
    Confident,
    /// `1 − t < p < t`: route to the designated "uncertain" resource
    /// pool instead of acting.
    Uncertain,
}

/// Computes the paper's confidence threshold from the training
/// positive-class fraction: `t = max(q, 1 − q)`.
///
/// # Panics
///
/// Panics unless `0 <= q <= 1`.
pub fn confidence_threshold(positive_fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&positive_fraction),
        "class fraction must be in [0,1], got {positive_fraction}"
    );
    positive_fraction.max(1.0 - positive_fraction)
}

/// Classifies one prediction probability as confident or uncertain
/// under threshold `t`.
///
/// # Panics
///
/// Panics unless `0.5 <= t <= 1`.
pub fn classify_confidence(p: f64, t: f64) -> ConfidenceSplit {
    assert!(
        (0.5..=1.0).contains(&t),
        "threshold must be in [0.5,1], got {t}"
    );
    if p >= t || p <= 1.0 - t {
        ConfidenceSplit::Confident
    } else {
        ConfidenceSplit::Uncertain
    }
}

/// An evenly spaced grid of confidence cutoffs over the legal
/// `[0.5, 1.0]` range of [`classify_confidence`] thresholds —
/// `points` values with `grid[0] = 0.5` and `grid[points − 1] = 1.0`.
/// The policy layer's cost/benefit sweep evaluates the confident /
/// uncertain split at every grid point; keeping the grid definition
/// here means every sweep consumer (policybench, the golden snapshot,
/// the proptests) agrees on the exact cutoff values bit for bit.
///
/// # Panics
///
/// Panics unless `points >= 2`.
pub fn threshold_grid(points: usize) -> Vec<f64> {
    assert!(points >= 2, "a sweep grid needs at least 2 points");
    (0..points)
        .map(|k| 0.5 + 0.5 * k as f64 / (points - 1) as f64)
        .collect()
}

/// Predictions partitioned by confidence, carrying the index of each
/// example in the original evaluation set so callers can join back to
/// labels, lifespans, and KM groups.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedPredictions {
    /// The threshold used.
    pub threshold: f64,
    /// `(example index, positive probability, predicted class)` for
    /// confident predictions.
    pub confident: Vec<(usize, f64, usize)>,
    /// Same, for uncertain predictions.
    pub uncertain: Vec<(usize, f64, usize)>,
}

impl PartitionedPredictions {
    /// Partitions positive-class probabilities with the threshold
    /// derived from `training_positive_fraction`.
    ///
    /// Predicted class is `p > 0.5` (the paper's decision rule),
    /// independent of the confidence threshold.
    pub fn partition(probabilities: &[f64], training_positive_fraction: f64) -> Self {
        let threshold = confidence_threshold(training_positive_fraction);
        let mut confident = Vec::new();
        let mut uncertain = Vec::new();
        for (i, &p) in probabilities.iter().enumerate() {
            let predicted = (p > 0.5) as usize;
            match classify_confidence(p, threshold) {
                ConfidenceSplit::Confident => confident.push((i, p, predicted)),
                ConfidenceSplit::Uncertain => uncertain.push((i, p, predicted)),
            }
        }
        PartitionedPredictions {
            threshold,
            confident,
            uncertain,
        }
    }

    /// Fraction of predictions that were confident (Table 1's
    /// "Confident" column).
    pub fn confident_fraction(&self) -> f64 {
        let total = self.confident.len() + self.uncertain.len();
        if total == 0 {
            return 0.0;
        }
        self.confident.len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn threshold_formula() {
        assert_eq!(confidence_threshold(0.7), 0.7);
        assert_eq!(confidence_threshold(0.3), 0.7);
        assert_eq!(confidence_threshold(0.5), 0.5);
        assert_eq!(confidence_threshold(1.0), 1.0);
    }

    #[test]
    fn paper_example() {
        // "if 70% of the training examples are positive, then q = 0.7.
        // Thus, t = max(0.7, 0.3) = 0.7."
        let t = confidence_threshold(0.7);
        assert_eq!(classify_confidence(0.95, t), ConfidenceSplit::Confident);
        assert_eq!(classify_confidence(0.05, t), ConfidenceSplit::Confident);
        assert_eq!(classify_confidence(0.6, t), ConfidenceSplit::Uncertain);
        assert_eq!(classify_confidence(0.4, t), ConfidenceSplit::Uncertain);
        // Boundary cases are confident (>= / <=).
        assert_eq!(classify_confidence(0.7, t), ConfidenceSplit::Confident);
        assert_eq!(classify_confidence(0.3, t), ConfidenceSplit::Confident);
    }

    #[test]
    fn threshold_grid_spans_the_legal_range() {
        let grid = threshold_grid(6);
        assert_eq!(grid.len(), 6);
        assert_eq!(grid[0], 0.5);
        assert_eq!(grid[5], 1.0);
        for w in grid.windows(2) {
            assert!(w[0] < w[1], "grid must ascend");
        }
        // Every grid point is a legal classify_confidence threshold.
        for &t in &grid {
            let _ = classify_confidence(0.6, t);
        }
        // Minimal grid is exactly the two endpoints.
        assert_eq!(threshold_grid(2), vec![0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn threshold_grid_rejects_degenerate_grids() {
        let _ = threshold_grid(1);
    }

    #[test]
    fn balanced_classes_make_everything_confident() {
        // With q = 0.5, t = 0.5 and no probability can fall strictly
        // between 0.5 and 0.5 — the paper's explanation for Standard
        // edition's ~90%+ confident coverage.
        let p = PartitionedPredictions::partition(&[0.5, 0.51, 0.49, 0.9], 0.5);
        assert_eq!(p.uncertain.len(), 0);
        assert_eq!(p.confident_fraction(), 1.0);
    }

    #[test]
    fn partition_indices_and_classes() {
        let p = PartitionedPredictions::partition(&[0.95, 0.6, 0.1, 0.35], 0.7);
        let confident_idx: Vec<usize> = p.confident.iter().map(|c| c.0).collect();
        assert_eq!(confident_idx, vec![0, 2]);
        let classes: Vec<usize> = p.confident.iter().map(|c| c.2).collect();
        assert_eq!(classes, vec![1, 0]);
        let uncertain_idx: Vec<usize> = p.uncertain.iter().map(|c| c.0).collect();
        assert_eq!(uncertain_idx, vec![1, 3]);
        assert!((p.confident_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_partition() {
        let p = PartitionedPredictions::partition(&[], 0.6);
        assert_eq!(p.confident_fraction(), 0.0);
    }

    #[test]
    fn partition_is_symmetric_in_q() {
        // t = max(q, 1 − q) makes q and 1 − q equivalent: the q > 0.5
        // partition must be identical to its q < 0.5 mirror.
        let probs = [0.95, 0.6, 0.1, 0.35, 0.7, 0.3, 0.5];
        let above = PartitionedPredictions::partition(&probs, 0.7);
        let below = PartitionedPredictions::partition(&probs, 0.3);
        assert_eq!(above, below);
        assert_eq!(above.threshold, 0.7);
    }

    #[test]
    fn ties_at_exactly_t_are_confident_for_q_above_half() {
        // q = 0.75 ⇒ t = 0.75. Probabilities landing exactly on t or
        // on 1 − t sit on the closed boundary of the confident region.
        // (0.75 so both boundaries are exactly representable: the
        // lower edge is the *computed* `1.0 - t`, which for a q like
        // 0.8 rounds to 0.19999999999999996 and would make a literal
        // 0.2 fall just inside the uncertain interval.)
        let t = confidence_threshold(0.75);
        assert_eq!(classify_confidence(0.75, t), ConfidenceSplit::Confident);
        assert_eq!(classify_confidence(0.25, t), ConfidenceSplit::Confident);
        // Just inside the open interval (1 − t, t) stays uncertain.
        assert_eq!(
            classify_confidence(0.75 - 1e-12, t),
            ConfidenceSplit::Uncertain
        );
        assert_eq!(
            classify_confidence(0.25 + 1e-12, t),
            ConfidenceSplit::Uncertain
        );

        let p = PartitionedPredictions::partition(&[0.75, 0.25, 0.74, 0.26], 0.75);
        let confident_idx: Vec<usize> = p.confident.iter().map(|c| c.0).collect();
        assert_eq!(confident_idx, vec![0, 1]);
        let uncertain_idx: Vec<usize> = p.uncertain.iter().map(|c| c.0).collect();
        assert_eq!(uncertain_idx, vec![2, 3]);
        // The tie at t predicts positive (p > 0.5); the tie at 1 − t
        // predicts negative — the decision rule is independent of t.
        assert_eq!(p.confident[0].2, 1);
        assert_eq!(p.confident[1].2, 0);
    }

    proptest! {
        #[test]
        fn prop_partition_is_exhaustive_and_disjoint(
            probs in prop::collection::vec(0.0..=1.0_f64, 0..100),
            q in 0.0..=1.0_f64,
        ) {
            let p = PartitionedPredictions::partition(&probs, q);
            prop_assert_eq!(p.confident.len() + p.uncertain.len(), probs.len());
            let mut seen = std::collections::HashSet::new();
            for (i, _, _) in p.confident.iter().chain(p.uncertain.iter()) {
                prop_assert!(seen.insert(*i));
            }
        }

        #[test]
        fn prop_partition_symmetric_under_q_reflection(
            probs in prop::collection::vec(0.0..=1.0_f64, 0..100),
            q in 0.0..=1.0_f64,
        ) {
            let a = PartitionedPredictions::partition(&probs, q);
            let b = PartitionedPredictions::partition(&probs, 1.0 - q);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_higher_threshold_fewer_confident(
            probs in prop::collection::vec(0.0..=1.0_f64, 1..100),
        ) {
            let loose = PartitionedPredictions::partition(&probs, 0.55);
            let strict = PartitionedPredictions::partition(&probs, 0.9);
            prop_assert!(strict.confident.len() <= loose.confident.len());
        }
    }
}
