//! Feature-matrix dataset for classification.

/// A dense, row-major dataset: one feature vector and one class label
/// per example.
///
/// Labels are `0..class_count`. The paper's task is binary (positive =
/// "lives more than 30 days"), but the implementation is k-class so the
/// same machinery can label ephemeral/short/long in the examples.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    feature_names: Vec<String>,
    class_count: usize,
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates an empty dataset with the given feature schema.
    ///
    /// # Panics
    ///
    /// Panics if there are no features or fewer than two classes.
    pub fn new(feature_names: Vec<String>, class_count: usize) -> Dataset {
        assert!(
            !feature_names.is_empty(),
            "dataset needs at least one feature"
        );
        assert!(class_count >= 2, "dataset needs at least two classes");
        Dataset {
            feature_names,
            class_count,
            rows: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Adds one example.
    ///
    /// # Panics
    ///
    /// Panics on a feature-count mismatch, a non-finite feature, or an
    /// out-of-range label.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "expected {} features, got {}",
            self.feature_names.len(),
            features.len()
        );
        for (j, &v) in features.iter().enumerate() {
            assert!(
                v.is_finite(),
                "non-finite value {v} for feature {}",
                self.feature_names[j]
            );
        }
        assert!(
            label < self.class_count,
            "label {label} out of range (class_count = {})",
            self.class_count
        );
        self.rows.push(features);
        self.labels.push(label);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no examples have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features.
    pub fn feature_count(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// One example's features.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// One example's label.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-class example counts.
    pub fn class_distribution(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.class_count];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Fraction of examples with the given label.
    pub fn class_fraction(&self, label: usize) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l == label).count() as f64 / self.len() as f64
    }

    /// A new dataset containing the rows at `indices` (duplicates
    /// allowed — this is how bootstrap samples are built).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.feature_names.clone(), self.class_count);
        for &i in indices {
            out.rows.push(self.rows[i].clone());
            out.labels.push(self.labels[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        d.push(vec![1.0, 2.0], 0);
        d.push(vec![3.0, 4.0], 1);
        d.push(vec![5.0, 6.0], 1);
        d
    }

    #[test]
    fn basic_accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.feature_count(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.label(2), 1);
        assert_eq!(d.class_distribution(), vec![1, 2]);
        assert!((d.class_fraction(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn select_with_duplicates() {
        let d = tiny();
        let s = d.select(&[0, 0, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(0), s.row(1));
        assert_eq!(s.label(2), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_arity() {
        let mut d = tiny();
        d.push(vec![1.0], 0);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        let mut d = tiny();
        d.push(vec![f64::NAN, 0.0], 0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_label() {
        let mut d = tiny();
        d.push(vec![0.0, 0.0], 2);
    }

    #[test]
    fn empty_class_fraction_is_zero() {
        let d = Dataset::new(vec!["x".into()], 2);
        assert_eq!(d.class_fraction(1), 0.0);
    }
}
