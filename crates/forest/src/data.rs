//! Feature-matrix dataset for classification.

/// A dense, columnar dataset: one feature vector and one class label
/// per example, stored struct-of-arrays (`columns[feature][example]`).
///
/// Columnar storage is what makes the training path fast: split search
/// scans one feature column at a time (sequential memory traffic), and
/// folds / bootstrap samples / grid-search candidates are represented
/// as index slices over a shared dataset ([`DatasetView`]) instead of
/// deep row copies.
///
/// Labels are `0..class_count`. The paper's task is binary (positive =
/// "lives more than 30 days"), but the implementation is k-class so the
/// same machinery can label ephemeral/short/long in the examples.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    feature_names: Vec<String>,
    class_count: usize,
    columns: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates an empty dataset with the given feature schema.
    ///
    /// # Panics
    ///
    /// Panics if there are no features or fewer than two classes.
    pub fn new(feature_names: Vec<String>, class_count: usize) -> Dataset {
        assert!(
            !feature_names.is_empty(),
            "dataset needs at least one feature"
        );
        assert!(class_count >= 2, "dataset needs at least two classes");
        let columns = vec![Vec::new(); feature_names.len()];
        Dataset {
            feature_names,
            class_count,
            columns,
            labels: Vec::new(),
        }
    }

    /// Adds one example.
    ///
    /// # Panics
    ///
    /// Panics on a feature-count mismatch, a non-finite feature, or an
    /// out-of-range label.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "expected {} features, got {}",
            self.feature_names.len(),
            features.len()
        );
        for (j, &v) in features.iter().enumerate() {
            assert!(
                v.is_finite(),
                "non-finite value {v} for feature {}",
                self.feature_names[j]
            );
        }
        assert!(
            label < self.class_count,
            "label {label} out of range (class_count = {})",
            self.class_count
        );
        for (column, v) in self.columns.iter_mut().zip(features) {
            column.push(v);
        }
        self.labels.push(label);
    }

    /// Appends every example of `other`, in order, to this dataset.
    ///
    /// The streaming featurization pipeline builds one dataset per
    /// fleet shard and merges them in shard order; append is the merge
    /// step, so it must preserve example order exactly (the merged
    /// dataset is compared bitwise against the materialized one).
    ///
    /// # Panics
    ///
    /// Panics when the schemas differ: feature names (including order)
    /// and class counts must match exactly.
    pub fn append(&mut self, other: &Dataset) {
        assert_eq!(
            self.feature_names, other.feature_names,
            "appending datasets with different feature schemas"
        );
        assert_eq!(
            self.class_count, other.class_count,
            "appending datasets with different class counts"
        );
        for (column, source) in self.columns.iter_mut().zip(&other.columns) {
            column.extend_from_slice(source);
        }
        self.labels.extend_from_slice(&other.labels);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if no examples have been added.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features.
    pub fn feature_count(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// One feature's value for one example.
    pub fn value(&self, i: usize, feature: usize) -> f64 {
        self.columns[feature][i]
    }

    /// One feature's values across all examples.
    pub fn column(&self, feature: usize) -> &[f64] {
        &self.columns[feature]
    }

    /// One example's features, gathered from the columns.
    pub fn row(&self, i: usize) -> Vec<f64> {
        self.columns.iter().map(|c| c[i]).collect()
    }

    /// Gathers one example's features into a reusable buffer.
    pub fn gather_row_into(&self, i: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.columns.iter().map(|c| c[i]));
    }

    /// One example's label.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-class example counts.
    pub fn class_distribution(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.class_count];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Fraction of examples with the given label.
    pub fn class_fraction(&self, label: usize) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l == label).count() as f64 / self.len() as f64
    }

    /// A new dataset containing the rows at `indices` (duplicates
    /// allowed).
    ///
    /// This copies data; the training path works on [`DatasetView`]s
    /// instead and only materialises when a caller genuinely needs an
    /// owned dataset (e.g. feature ablations that change the schema).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.feature_names.clone(), self.class_count);
        for (column, source) in out.columns.iter_mut().zip(&self.columns) {
            column.extend(indices.iter().map(|&i| source[i]));
        }
        out.labels.extend(indices.iter().map(|&i| self.labels[i]));
        out
    }

    /// A borrowed view over the rows at `indices` (duplicates allowed —
    /// this is how bootstrap samples are built).
    pub fn view<'a>(&'a self, indices: &'a [usize]) -> DatasetView<'a> {
        DatasetView {
            data: self,
            indices,
        }
    }
}

/// A borrowed, zero-copy subset of a [`Dataset`]: the underlying
/// columns plus a slice of row indices (duplicates allowed).
///
/// Folds, train/test splits, and bootstrap samples are all views; no
/// feature value is copied when slicing a dataset for training.
#[derive(Debug, Clone, Copy)]
pub struct DatasetView<'a> {
    data: &'a Dataset,
    indices: &'a [usize],
}

impl<'a> DatasetView<'a> {
    /// Creates a view of `data` over `indices`.
    pub fn new(data: &'a Dataset, indices: &'a [usize]) -> DatasetView<'a> {
        DatasetView { data, indices }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.data
    }

    /// The row indices this view covers, in order.
    pub fn indices(&self) -> &'a [usize] {
        self.indices
    }

    /// Number of examples in the view.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True if the view covers no examples.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of features.
    pub fn feature_count(&self) -> usize {
        self.data.feature_count()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.data.class_count()
    }

    /// Feature names.
    pub fn feature_names(&self) -> &'a [String] {
        self.data.feature_names()
    }

    /// One feature's value for the view's `i`-th example.
    pub fn value(&self, i: usize, feature: usize) -> f64 {
        self.data.value(self.indices[i], feature)
    }

    /// The view's `i`-th example's label.
    pub fn label(&self, i: usize) -> usize {
        self.data.label(self.indices[i])
    }

    /// Fraction of the view's examples with the given label.
    pub fn class_fraction(&self, label: usize) -> f64 {
        if self.indices.is_empty() {
            return 0.0;
        }
        let hits = self
            .indices
            .iter()
            .filter(|&&i| self.data.label(i) == label)
            .count();
        hits as f64 / self.indices.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        d.push(vec![1.0, 2.0], 0);
        d.push(vec![3.0, 4.0], 1);
        d.push(vec![5.0, 6.0], 1);
        d
    }

    #[test]
    fn basic_accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.feature_count(), 2);
        assert_eq!(d.row(1), vec![3.0, 4.0]);
        assert_eq!(d.value(1, 0), 3.0);
        assert_eq!(d.column(1), &[2.0, 4.0, 6.0]);
        assert_eq!(d.label(2), 1);
        assert_eq!(d.class_distribution(), vec![1, 2]);
        assert!((d.class_fraction(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gather_row_reuses_buffer() {
        let d = tiny();
        let mut buf = vec![9.0; 7];
        d.gather_row_into(2, &mut buf);
        assert_eq!(buf, vec![5.0, 6.0]);
    }

    #[test]
    fn select_with_duplicates() {
        let d = tiny();
        let s = d.select(&[0, 0, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(0), s.row(1));
        assert_eq!(s.label(2), 1);
    }

    #[test]
    fn view_matches_select() {
        let d = tiny();
        let indices = [2usize, 0, 2];
        let v = d.view(&indices);
        let s = d.select(&indices);
        assert_eq!(v.len(), s.len());
        for i in 0..v.len() {
            assert_eq!(v.label(i), s.label(i));
            for f in 0..d.feature_count() {
                assert_eq!(v.value(i, f), s.value(i, f));
            }
        }
        assert!((v.class_fraction(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn append_concatenates_in_order() {
        let mut left = tiny();
        let mut right = Dataset::new(vec!["a".into(), "b".into()], 2);
        right.push(vec![7.0, 8.0], 0);
        left.append(&right);
        assert_eq!(left.len(), 4);
        assert_eq!(left.row(3), vec![7.0, 8.0]);
        assert_eq!(left.label(3), 0);
        // Appending shards in order reproduces pushing rows in order.
        let mut whole = tiny();
        whole.push(vec![7.0, 8.0], 0);
        assert_eq!(left, whole);
        // Appending an empty dataset is a no-op.
        left.append(&Dataset::new(vec!["a".into(), "b".into()], 2));
        assert_eq!(left, whole);
    }

    #[test]
    #[should_panic]
    fn append_rejects_schema_mismatch() {
        let mut d = tiny();
        let other = Dataset::new(vec!["a".into(), "c".into()], 2);
        d.append(&other);
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_arity() {
        let mut d = tiny();
        d.push(vec![1.0], 0);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        let mut d = tiny();
        d.push(vec![f64::NAN, 0.0], 0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_label() {
        let mut d = tiny();
        d.push(vec![0.0, 0.0], 2);
    }

    #[test]
    fn empty_class_fraction_is_zero() {
        let d = Dataset::new(vec!["x".into()], 2);
        assert_eq!(d.class_fraction(1), 0.0);
        let indices: [usize; 0] = [];
        assert_eq!(d.view(&indices).class_fraction(1), 0.0);
    }
}
