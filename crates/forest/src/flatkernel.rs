//! Branchless, cache-blocked flat-forest inference kernel.
//!
//! The recursive predictor ([`crate::DecisionTree::predict_proba`])
//! chases `Node` enum pointers and a heap-allocated `Vec<f64>` per
//! leaf — every step is an unpredictable branch plus a cold cache
//! line. This module linearizes the whole forest into one packed node
//! array and replaces the branch with arithmetic node stepping:
//!
//! ```text
//! next = node.kids[(value > node.threshold) | (is_nan & default_right)]
//! ```
//!
//! **Node layout.** Each node is one 24-byte record (16 for the
//! quantized kernel): threshold, feature index packed with the
//! default-direction bit, and both child indices — a step touches at
//! most two cache lines. All trees share the global array; within a
//! tree's slice the internal nodes come first and the leaves after
//! them, so `idx < leaf_start[t]` is the "still walking" test without
//! inspecting the node. Leaves fold into the same array as self-loops
//! (both children point back at the leaf, threshold `+inf`), keeping
//! the step function total.
//!
//! **Missing values.** `NaN` fails every ordered comparison, so the
//! recursive `value <= threshold → left` walk always sends `NaN`
//! right. The kernel encodes that as a *default-direction bit* packed
//! into bit 31 of each node's feature word: the step ORs the bit in
//! when `value != value`. Trainer-built trees set the bit to 1
//! (right) on every node — which is also why they take the
//! single-compare fast path (`!(value <= threshold)` sends `NaN`
//! right with no mask at all, see
//! [`KernelThreshold::goes_right_or_missing`]) — preserving bitwise
//! parity with the recursive path; the encoding leaves room for
//! learned default directions later.
//!
//! **Blocking.** The traversal works on [`ROW_TILE`]-row tiles held
//! feature-major (stride `ROW_TILE`), so one level of stepping reads
//! a handful of consecutive cache lines instead of one line per row.
//! Each tree walks the whole tile one level at a time
//! (level-synchronous, so the independent per-row chains pipeline)
//! while its nodes stay hot across the tile, and rows that reach a
//! leaf compact out of a *live list* so retired rows cost nothing on
//! deeper levels. [`Kernel::score_tile_into`] consumes a
//! pre-gathered feature-major tile (the serving layer fills it with
//! one memcpy per feature column); [`Kernel::score_block_into`]
//! accepts row-major input and transposes each tile into scratch
//! first.
//!
//! **Parity.** Per row, leaf distributions accumulate in ascending
//! tree order and divide by the tree count last — the exact f64
//! operation sequence of `RandomForest::predict_proba`, so the exact
//! kernel ([`ForestKernel`]) agrees *bitwise* with the recursive path
//! on every input, including `NaN`, `±0.0`, and threshold-equal
//! values. The quantized variant ([`QuantizedKernel`], `f32`
//! thresholds, opt-in via [`Kernel::quantize`]) trades that guarantee
//! for a smaller working set; it is only vote-compatible, and callers
//! must verify agreement on their own corpus before trusting it.

use crate::random_forest::RandomForest;
use crate::tree::FlatTree;

/// Rows per traversal tile. 64 rows × ~60 features × 8 bytes ≈ 30 KB
/// of gathered features per tile — sized so the tile plus one tree's
/// node columns fit in L2 comfortably. Matches the serving layer's
/// chunk size, so one scoring chunk is exactly one tile.
pub const ROW_TILE: usize = 64;

/// Bit 31 of the packed `feature` column: send missing (`NaN`) values
/// right when set. Feature indices are confined to the low 31 bits.
const DEFAULT_RIGHT_BIT: u32 = 1 << 31;
const FEATURE_MASK: u32 = DEFAULT_RIGHT_BIT - 1;

/// Threshold representation a kernel compares feature values against.
///
/// `f64` is the exact variant (bitwise parity with the recursive
/// path); `f32` is the quantized variant (both sides of the compare
/// round to `f32`).
pub trait KernelThreshold: Copy + Send + Sync + std::fmt::Debug + 'static {
    /// Converts an exact split threshold into this representation.
    fn from_f64(threshold: f64) -> Self;
    /// Whether `value` takes the right child (`value > threshold` in
    /// this representation). Must return `false` for `NaN` — the
    /// default-direction bit decides missing values.
    fn goes_right(value: f64, threshold: Self) -> bool;
    /// Whether `value` takes the right child on a node whose missing
    /// default is *right*: must equal
    /// `goes_right(value, threshold) || value.is_nan()`. Implemented
    /// as the single comparison `!(value <= threshold)` — `NaN` fails
    /// the ordered compare and falls right for free, which is what
    /// makes the all-default-right fast path one branchless compare
    /// per step.
    fn goes_right_or_missing(value: f64, threshold: Self) -> bool;
}

impl KernelThreshold for f64 {
    #[inline(always)]
    fn from_f64(threshold: f64) -> f64 {
        threshold
    }
    #[inline(always)]
    fn goes_right(value: f64, threshold: f64) -> bool {
        value > threshold
    }
    #[inline(always)]
    // The negated compare is the point: unlike `value > threshold`,
    // `!(value <= threshold)` is true for NaN — missing goes right.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn goes_right_or_missing(value: f64, threshold: f64) -> bool {
        !(value <= threshold)
    }
}

impl KernelThreshold for f32 {
    #[inline(always)]
    fn from_f64(threshold: f64) -> f32 {
        threshold as f32
    }
    #[inline(always)]
    fn goes_right(value: f64, threshold: f32) -> bool {
        (value as f32) > threshold
    }
    #[inline(always)]
    // Same as the f64 impl: the negated compare sends NaN right.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn goes_right_or_missing(value: f64, threshold: f32) -> bool {
        !((value as f32) <= threshold)
    }
}

/// Traversal statistics of one kernel call — fed to the
/// `serve.kernel.*` obs counters by the scoring layer. Deterministic:
/// a pure function of `(kernel, rows, tile boundaries)`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Node-step operations executed — one per internal node actually
    /// visited (retired rows compact out of the working set, so
    /// finished rows cost nothing).
    pub node_steps: u64,
    /// Row tiles traversed.
    pub row_tiles: u64,
}

impl KernelStats {
    /// Accumulates another call's stats into this one.
    pub fn merge(&mut self, other: KernelStats) {
        self.node_steps += other.node_steps;
        self.row_tiles += other.row_tiles;
    }
}

/// Reusable per-worker traversal scratch: the per-row node cursors of
/// the current tile. Construct once per worker and pass to every
/// [`Kernel::score_block_into`] call — the hot loop then allocates
/// nothing.
#[derive(Debug)]
pub struct KernelScratch {
    cursors: Vec<u32>,
    /// Rows of the current tile still walking the current tree.
    live: Vec<u32>,
    /// Column-major (feature-major) copy of the current tile, stride
    /// [`ROW_TILE`]. Grown on first use — the per-tile transpose then
    /// allocates nothing.
    tile: Vec<f64>,
}

impl KernelScratch {
    /// A scratch sized for [`ROW_TILE`]-row tiles (the maximum any
    /// block call uses).
    pub fn new() -> KernelScratch {
        KernelScratch {
            cursors: vec![0; ROW_TILE],
            live: vec![0; ROW_TILE],
            tile: Vec::new(),
        }
    }
}

impl Default for KernelScratch {
    fn default() -> Self {
        KernelScratch::new()
    }
}

/// One linearized node, kept as a single packed record so a step
/// touches one or two cache lines instead of one line per column
/// (24 bytes for the exact `f64` kernel, 16 for the quantized `f32`
/// one).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct Node<T> {
    /// Split threshold (`+inf` for leaves, so every finite value
    /// self-loops left and `NaN` self-loops right).
    threshold: T,
    /// Feature index in the low 31 bits, default-direction bit
    /// (missing goes right) in bit 31. Leaves store feature 0.
    packed: u32,
    /// Absolute child indices; leaves point at themselves.
    kids: [u32; 2],
}

/// The linearized forest: every tree's nodes flattened into one
/// shared node array, internal nodes before leaves per tree, leaves
/// as self-loops. Generic over the threshold representation — see
/// [`ForestKernel`] (exact) and [`QuantizedKernel`] (opt-in).
#[derive(Debug, Clone)]
pub struct Kernel<T: KernelThreshold = f64> {
    feature_count: usize,
    class_count: usize,
    /// All trees' nodes, tree-contiguous, internal-first per tree.
    nodes: Vec<Node<T>>,
    /// Per node: offset of the node's distribution inside
    /// `leaf_probabilities` (leaves only; 0 for internal nodes).
    leaf_off: Vec<u32>,
    /// Leaf class distributions, `class_count` per leaf, concatenated.
    leaf_probabilities: Vec<f64>,
    /// Per tree: absolute index of the root node.
    roots: Vec<u32>,
    /// Per tree: absolute index of the first leaf slot — a cursor has
    /// reached a leaf exactly when `idx >= leaf_start[t]`.
    leaf_start: Vec<u32>,
    /// Whether every node's default direction is *right* (true for
    /// all trainer-built forests). When set, the tile traversal takes
    /// the single-compare fast path
    /// ([`KernelThreshold::goes_right_or_missing`]) instead of
    /// materializing the NaN mask per step.
    all_default_right: bool,
}

/// The exact-`f64` kernel: bitwise-identical to the recursive path.
pub type ForestKernel = Kernel<f64>;

/// The quantized-`f32` kernel: smaller threshold column, *not*
/// bitwise-exact. Opt-in via [`Kernel::quantize`]; verify vote
/// agreement on your corpus before serving with it.
pub type QuantizedKernel = Kernel<f32>;

impl ForestKernel {
    /// Linearizes a fitted forest. The layout build is `O(nodes)` and
    /// timed under the `kernel_build` obs span; do it once per model,
    /// not per batch.
    pub fn from_forest(model: &RandomForest) -> ForestKernel {
        let _span = obs::span!("kernel_build");
        let mut kernel = Kernel {
            feature_count: model.feature_names().len(),
            class_count: model.class_count(),
            nodes: Vec::new(),
            leaf_off: Vec::new(),
            leaf_probabilities: Vec::new(),
            roots: Vec::with_capacity(model.tree_count()),
            leaf_start: Vec::with_capacity(model.tree_count()),
            all_default_right: false,
        };
        for tree in model.trees() {
            kernel.push_tree(&tree.to_flat());
        }
        kernel.all_default_right = kernel
            .nodes
            .iter()
            .all(|n| n.packed & DEFAULT_RIGHT_BIT != 0);
        kernel.validate_layout();
        obs::count("forest.kernel_nodes", kernel.nodes.len() as u64);
        kernel
    }

    /// The quantized variant of this kernel: thresholds narrowed to
    /// `f32`, compares performed in `f32`. Explicitly opt-in — it
    /// does not share the exact kernel's bitwise guarantee.
    pub fn quantize(&self) -> QuantizedKernel {
        let quantized = Kernel {
            feature_count: self.feature_count,
            class_count: self.class_count,
            nodes: self
                .nodes
                .iter()
                .map(|n| Node {
                    threshold: n.threshold as f32,
                    packed: n.packed,
                    kids: n.kids,
                })
                .collect(),
            leaf_off: self.leaf_off.clone(),
            leaf_probabilities: self.leaf_probabilities.clone(),
            roots: self.roots.clone(),
            leaf_start: self.leaf_start.clone(),
            all_default_right: self.all_default_right,
        };
        quantized.validate_layout();
        quantized
    }

    /// Appends one tree, renumbering its nodes internal-first. The
    /// flat layout comes from [`crate::DecisionTree::to_flat`], whose
    /// invariants (children in range and strictly forward, leaf runs
    /// consistent) already held in the validated source tree.
    fn push_tree(&mut self, flat: &FlatTree) {
        let n = flat.kind.len();
        let base = self.nodes.len() as u32;
        let internal_count = flat.kind.iter().filter(|&&k| k == 1).count() as u32;

        // Old node index -> new absolute index: internals keep their
        // relative order in [base, base + internal), leaves theirs in
        // [base + internal, base + n).
        let mut map = vec![0u32; n];
        let mut next_internal = base;
        let mut next_leaf = base + internal_count;
        for (i, &kind) in flat.kind.iter().enumerate() {
            if kind == 1 {
                map[i] = next_internal;
                next_internal += 1;
            } else {
                map[i] = next_leaf;
                next_leaf += 1;
            }
        }

        self.roots.push(map[0]);
        self.leaf_start.push(base + internal_count);
        let total = base as usize + n;
        self.nodes.resize(
            total,
            Node {
                threshold: 0.0,
                packed: 0,
                kids: [0, 0],
            },
        );
        self.leaf_off.resize(total, 0);

        let mut prob_run = 0usize; // cursor into flat.leaf_probabilities
        for (i, &kind) in flat.kind.iter().enumerate() {
            let slot = map[i] as usize;
            if kind == 1 {
                debug_assert!((flat.feature[i] as usize) < self.feature_count);
                // All trainer splits send missing values right,
                // matching the recursive `value <= threshold -> left`
                // walk (NaN fails the compare).
                self.nodes[slot] = Node {
                    threshold: flat.threshold[i],
                    packed: flat.feature[i] | DEFAULT_RIGHT_BIT,
                    kids: [map[flat.left[i] as usize], map[flat.right[i] as usize]],
                };
            } else {
                // Leaf self-loop: threshold +inf keeps every finite
                // value on the left self-edge; the default bit keeps
                // NaN on the right self-edge. Feature 0 is always in
                // range, so the (dead) load stays in bounds.
                self.nodes[slot] = Node {
                    threshold: f64::INFINITY,
                    packed: DEFAULT_RIGHT_BIT,
                    kids: [slot as u32, slot as u32],
                };
                self.leaf_off[slot] = self.leaf_probabilities.len() as u32;
                self.leaf_probabilities.extend_from_slice(
                    &flat.leaf_probabilities[prob_run..prob_run + self.class_count],
                );
                prob_run += self.class_count;
            }
        }
        debug_assert_eq!(prob_run, flat.leaf_probabilities.len());
    }
}

impl<T: KernelThreshold> Kernel<T> {
    /// Verifies the layout invariants the unchecked hot loops rely on
    /// (see [`Kernel::score_block_into`]): every stored child index is
    /// a valid node slot, every packed feature index is in range, and
    /// every leaf's distribution offset stays inside
    /// `leaf_probabilities`. Runs once per build — `O(nodes)` next to
    /// an `O(nodes)` construction — so traversal never needs a bounds
    /// check.
    fn validate_layout(&self) {
        let n = self.nodes.len();
        assert_eq!(self.leaf_off.len(), n);
        assert_eq!(self.roots.len(), self.leaf_start.len());
        assert!(self.feature_count <= FEATURE_MASK as usize);
        for (&root, &leaf_start) in self.roots.iter().zip(&self.leaf_start) {
            assert!((root as usize) < n, "root out of range");
            assert!(leaf_start as usize <= n, "leaf_start out of range");
        }
        for (i, node) in self.nodes.iter().enumerate() {
            assert!(
                ((node.packed & FEATURE_MASK) as usize) < self.feature_count,
                "feature index out of range at node {i}"
            );
            assert!(
                (node.kids[0] as usize) < n && (node.kids[1] as usize) < n,
                "child index out of range at node {i}"
            );
            if node.kids[0] as usize == i {
                assert!(
                    self.leaf_off[i] as usize + self.class_count <= self.leaf_probabilities.len(),
                    "leaf distribution out of range at node {i}"
                );
            }
        }
    }
}

impl<T: KernelThreshold> Kernel<T> {
    /// Features per row this kernel expects.
    pub fn feature_count(&self) -> usize {
        self.feature_count
    }

    /// Classes per output distribution.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Trees in the linearized forest.
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes across all trees (leaves included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// One arithmetic node step: never branches on the outcome.
    /// `idx` must be a valid node slot and `row` must have
    /// `feature_count` entries (checked at the public entry points;
    /// `validate_layout` pins every stored child and feature index in
    /// range at build time, so the loads need no bounds checks).
    #[inline(always)]
    fn step(&self, idx: usize, row: &[f64]) -> u32 {
        // SAFETY: `idx` is a root or a stored child index and `row`
        // has `feature_count` entries — `validate_layout` (run at
        // every build) keeps all of them in bounds.
        unsafe {
            let node = self.nodes.get_unchecked(idx);
            let value = *row.get_unchecked((node.packed & FEATURE_MASK) as usize);
            let missing = (value.is_nan() as u32) & (node.packed >> 31);
            let right = (T::goes_right(value, node.threshold) as u32) | missing;
            *node.kids.get_unchecked(right as usize)
        }
    }

    /// Branchless single-row scoring: averaged class probabilities
    /// into `out`. Bitwise-identical to
    /// `RandomForest::predict_proba` for the exact (`f64`) kernel.
    /// Returns the node steps taken.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != feature_count` or
    /// `out.len() != class_count`.
    pub fn predict_proba_into(&self, row: &[f64], out: &mut [f64]) -> u64 {
        assert_eq!(row.len(), self.feature_count, "row arity mismatch");
        assert_eq!(out.len(), self.class_count, "output arity mismatch");
        out.fill(0.0);
        let mut steps = 0u64;
        for (&root, &leaf_start) in self.roots.iter().zip(&self.leaf_start) {
            let mut idx = root;
            while idx < leaf_start {
                idx = self.step(idx as usize, row);
                steps += 1;
            }
            let off = self.leaf_off[idx as usize] as usize;
            for (acc, p) in out
                .iter_mut()
                .zip(&self.leaf_probabilities[off..off + self.class_count])
            {
                *acc += p;
            }
        }
        let nt = self.tree_count() as f64;
        for acc in out.iter_mut() {
            *acc /= nt;
        }
        steps
    }

    /// Branchless single-row scoring, allocating the output.
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.class_count];
        self.predict_proba_into(row, &mut out);
        out
    }

    /// Cache-blocked batch scoring: `n_rows` rows stored row-major in
    /// `rows` (`n_rows × feature_count`), averaged distributions
    /// written row-major to `out` (`n_rows × class_count`).
    ///
    /// Rows advance in [`ROW_TILE`]-sized tiles; each tile is
    /// transposed feature-major into scratch, then every tree walks
    /// all rows one level at a time (level-synchronous), so the
    /// tree's nodes stay cache-hot across the tile. The hot loop
    /// performs no allocation — `scratch` carries the only mutable
    /// traversal state.
    ///
    /// # Panics
    ///
    /// Panics if the buffer shapes disagree with `n_rows` and the
    /// kernel's arities.
    pub fn score_block_into(
        &self,
        rows: &[f64],
        n_rows: usize,
        scratch: &mut KernelScratch,
        out: &mut [f64],
    ) -> KernelStats {
        let nf = self.feature_count;
        let cc = self.class_count;
        assert_eq!(rows.len(), n_rows * nf, "row buffer shape mismatch");
        assert_eq!(out.len(), n_rows * cc, "output buffer shape mismatch");
        let mut stats = KernelStats::default();

        if scratch.tile.len() < nf * ROW_TILE {
            scratch.tile.resize(nf * ROW_TILE, 0.0);
        }
        let KernelScratch {
            cursors: scratch_cursors,
            live: scratch_live,
            tile,
        } = scratch;

        let mut tile_lo = 0usize;
        while tile_lo < n_rows {
            let tile_len = ROW_TILE.min(n_rows - tile_lo);
            stats.row_tiles += 1;
            let tile_rows = &rows[tile_lo * nf..(tile_lo + tile_len) * nf];
            let tile_out = &mut out[tile_lo * cc..(tile_lo + tile_len) * cc];
            // Transpose the tile feature-major (stride ROW_TILE): at
            // shallow levels every live row probes the same feature,
            // so the value loads of one pass land on a handful of
            // consecutive cache lines instead of one line per row.
            //
            // SAFETY: `tile` holds `nf * ROW_TILE` slots, `tile_rows`
            // holds `tile_len * nf`, and `r < tile_len <= ROW_TILE`,
            // `f < nf`.
            for r in 0..tile_len {
                for f in 0..nf {
                    unsafe {
                        *tile.get_unchecked_mut(f * ROW_TILE + r) =
                            *tile_rows.get_unchecked(r * nf + f);
                    }
                }
            }
            stats.node_steps +=
                self.traverse_tile(tile, tile_len, scratch_cursors, scratch_live, tile_out);
            tile_lo += tile_len;
        }
        stats
    }

    /// Scores one already-gathered feature-major tile — the zero-copy
    /// entry point for callers that own columnar data (the serving
    /// layer's dataset path fills the tile with one memcpy per
    /// feature column, so no transpose sits between the gather and
    /// the traversal).
    ///
    /// `tile` holds `feature_count` columns of stride [`ROW_TILE`]
    /// (`tile[f * ROW_TILE + r]` is feature `f` of row `r`); column
    /// slots at `tile_len..ROW_TILE` are never read. The averaged
    /// distributions for rows `0..tile_len` are written row-major to
    /// `out`, bitwise identical to [`Kernel::score_block_into`] over
    /// the same rows.
    ///
    /// # Panics
    ///
    /// Panics if `tile_len > ROW_TILE` or the buffer shapes disagree
    /// with `tile_len` and the kernel's arities.
    pub fn score_tile_into(
        &self,
        tile: &[f64],
        tile_len: usize,
        scratch: &mut KernelScratch,
        out: &mut [f64],
    ) -> KernelStats {
        assert!(
            tile_len <= ROW_TILE,
            "tile_len {tile_len} exceeds ROW_TILE {ROW_TILE}"
        );
        assert!(
            tile.len() >= self.feature_count * ROW_TILE,
            "tile buffer shape mismatch"
        );
        assert_eq!(
            out.len(),
            tile_len * self.class_count,
            "output buffer shape mismatch"
        );
        KernelStats {
            node_steps: self.traverse_tile(
                tile,
                tile_len,
                &mut scratch.cursors,
                &mut scratch.live,
                out,
            ),
            row_tiles: 1,
        }
    }

    /// The shared per-tile traversal behind [`Kernel::score_block_into`]
    /// and [`Kernel::score_tile_into`]: walks every tree over one
    /// feature-major tile and writes the averaged distributions for
    /// rows `0..tile_len` to `tile_out`. Returns the internal-node
    /// steps taken.
    ///
    /// Callers guarantee `tile.len() >= feature_count * ROW_TILE`,
    /// `cursors.len() >= tile_len`, `live.len() >= tile_len`, and
    /// `tile_out.len() == tile_len * class_count` — together with
    /// `validate_layout` (run at every kernel build) these bound all
    /// the unchecked accesses below.
    ///
    /// Dispatches once per tile on [`Kernel::all_default_right`]:
    /// trainer forests (default bit set everywhere) get the
    /// single-compare step, anything else the general masked step —
    /// both monomorphized, neither branching inside the hot loop.
    fn traverse_tile(
        &self,
        tile: &[f64],
        tile_len: usize,
        cursors: &mut [u32],
        live: &mut [u32],
        tile_out: &mut [f64],
    ) -> u64 {
        if self.all_default_right {
            self.traverse_tile_impl::<true>(tile, tile_len, cursors, live, tile_out)
        } else {
            self.traverse_tile_impl::<false>(tile, tile_len, cursors, live, tile_out)
        }
    }

    /// The monomorphized tile walk behind [`Kernel::traverse_tile`] —
    /// same caller contract.
    fn traverse_tile_impl<const ALL_RIGHT: bool>(
        &self,
        tile: &[f64],
        tile_len: usize,
        cursors: &mut [u32],
        live: &mut [u32],
        tile_out: &mut [f64],
    ) -> u64 {
        let cc = self.class_count;
        let nodes = self.nodes.as_slice();
        let leaf_off = self.leaf_off.as_slice();
        let leaf_probabilities = self.leaf_probabilities.as_slice();
        tile_out.fill(0.0);
        let mut steps = 0u64;
        {
            for (&root, &leaf_start) in self.roots.iter().zip(&self.leaf_start) {
                let cursors = &mut cursors[..tile_len];
                // Level-synchronous walk with live-row compaction:
                // every live row advances one level per pass, and rows
                // that reached a leaf drop out of the live list, so
                // retired rows cost nothing on later passes. Within a
                // pass the rows are independent dependency chains, so
                // the stepping pipelines — which is the entire point
                // of advancing rows level-synchronously instead of
                // walking each row to its leaf.
                //
                // SAFETY: `validate_layout` (run at every kernel
                // build) guarantees all roots/children are valid node
                // slots and every packed feature index is
                // `< feature_count`, so `idx`, `node.kids[right]`,
                // and `feat * ROW_TILE + r` stay in bounds; every `r`
                // in the live list is `< tile_len`, bounding the
                // cursor and live-list accesses.
                if root >= leaf_start {
                    // Leaf-only tree: every row lands on the root.
                    cursors.fill(root);
                } else {
                    let live = &mut live[..tile_len];
                    // Step a row one level. SAFETY: contract above.
                    macro_rules! step_row {
                        ($idx:expr, $r:expr) => {{
                            let node = nodes.get_unchecked($idx as usize);
                            let value = *tile.get_unchecked(
                                (node.packed & FEATURE_MASK) as usize * ROW_TILE + $r,
                            );
                            let right = if ALL_RIGHT {
                                T::goes_right_or_missing(value, node.threshold) as u32
                            } else {
                                let missing = (value.is_nan() as u32) & (node.packed >> 31);
                                (T::goes_right(value, node.threshold) as u32) | missing
                            };
                            *node.kids.get_unchecked(right as usize)
                        }};
                    }
                    // First pass: all rows step from the root; rows
                    // still internal compact into the live list. The
                    // write of `live[w]` is unconditional (branchless)
                    // — `w` only advances for survivors.
                    let mut n_live = 0usize;
                    for r in 0..tile_len {
                        unsafe {
                            let next = step_row!(root, r);
                            *cursors.get_unchecked_mut(r) = next;
                            *live.get_unchecked_mut(n_live) = r as u32;
                            n_live += (next < leaf_start) as usize;
                        }
                    }
                    steps += tile_len as u64;
                    // Later passes: only live rows step.
                    while n_live > 0 {
                        steps += n_live as u64;
                        let mut w = 0usize;
                        for s in 0..n_live {
                            unsafe {
                                let r = *live.get_unchecked(s) as usize;
                                let idx = *cursors.get_unchecked(r) as usize;
                                let next = step_row!(idx, r);
                                *cursors.get_unchecked_mut(r) = next;
                                *live.get_unchecked_mut(w) = r as u32;
                                w += (next < leaf_start) as usize;
                            }
                        }
                        n_live = w;
                    }
                }
                // Accumulate this tree's leaves in tree order — the
                // same f64 op sequence as `average_probas`. The
                // binary-class case (every trained survivability
                // model) gets a branch-free two-lane unrolling.
                //
                // SAFETY: cursors hold validated node slots, and
                // `validate_layout` pins every leaf's distribution
                // inside `leaf_probabilities`.
                if cc == 2 {
                    for r in 0..tile_len {
                        unsafe {
                            let off = *leaf_off.get_unchecked(*cursors.get_unchecked(r) as usize)
                                as usize;
                            *tile_out.get_unchecked_mut(2 * r) +=
                                *leaf_probabilities.get_unchecked(off);
                            *tile_out.get_unchecked_mut(2 * r + 1) +=
                                *leaf_probabilities.get_unchecked(off + 1);
                        }
                    }
                } else {
                    for (r, &cursor) in cursors.iter().enumerate() {
                        let off = self.leaf_off[cursor as usize] as usize;
                        let src = &leaf_probabilities[off..off + cc];
                        for (acc, p) in tile_out[r * cc..(r + 1) * cc].iter_mut().zip(src) {
                            *acc += p;
                        }
                    }
                }
            }
        }
        let nt = self.tree_count() as f64;
        for acc in tile_out.iter_mut() {
            *acc /= nt;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, RandomForestParams};

    fn fixture(n_trees: usize, seed: u64) -> (Dataset, RandomForest) {
        let mut d = Dataset::new(vec!["x0".into(), "x1".into(), "x2".into(), "x3".into()], 2);
        for i in 0..240 {
            let x0 = i as f64 / 240.0;
            let x1 = ((i * 53) % 240) as f64 / 240.0;
            let x2 = ((i * 17) % 240) as f64 / 240.0;
            let x3 = if i % 5 == 0 { 0.0 } else { -0.0 }; // signed zeros
            d.push(vec![x0, x1, x2, x3], (x0 + 0.4 * x1 > 0.7) as usize);
        }
        let params = RandomForestParams {
            n_trees,
            ..RandomForestParams::default()
        };
        let model = RandomForest::fit(&d, &params, seed);
        (d, model)
    }

    #[test]
    fn branchless_matches_recursive_bitwise() {
        let (data, model) = fixture(11, 7);
        let kernel = ForestKernel::from_forest(&model);
        assert_eq!(kernel.tree_count(), 11);
        for i in 0..data.len() {
            let row = data.row(i);
            assert_eq!(
                kernel.predict_proba(&row),
                model.predict_proba(&row),
                "row {i}"
            );
        }
    }

    #[test]
    fn blocked_matches_branchless_bitwise() {
        let (data, model) = fixture(9, 21);
        let kernel = ForestKernel::from_forest(&model);
        // Batch sizes straddling the tile size, including ragged tails.
        for n in [1usize, 7, 63, 64, 65, 200] {
            let n = n.min(data.len());
            let mut rows = Vec::with_capacity(n * kernel.feature_count());
            for i in 0..n {
                rows.extend(data.row(i));
            }
            let mut out = vec![0.0; n * kernel.class_count()];
            let mut scratch = KernelScratch::new();
            let stats = kernel.score_block_into(&rows, n, &mut scratch, &mut out);
            assert!(stats.node_steps > 0);
            assert_eq!(stats.row_tiles as usize, n.div_ceil(ROW_TILE));
            for i in 0..n {
                let expected = kernel.predict_proba(&data.row(i));
                assert_eq!(
                    &out[i * kernel.class_count()..(i + 1) * kernel.class_count()],
                    expected.as_slice(),
                    "row {i} of {n}"
                );
            }
        }
    }

    #[test]
    fn nan_goes_right_like_the_recursive_walk() {
        let (_, model) = fixture(13, 3);
        let kernel = ForestKernel::from_forest(&model);
        // NaN in every position, plus mixed NaN/finite rows: the
        // recursive walk (NaN fails `<=`, goes right) is ground truth.
        let patterns: Vec<Vec<f64>> = vec![
            vec![f64::NAN, 0.5, 0.5, 0.0],
            vec![0.5, f64::NAN, 0.5, -0.0],
            vec![f64::NAN, f64::NAN, f64::NAN, f64::NAN],
            vec![0.1, 0.9, f64::NAN, 0.0],
        ];
        for row in &patterns {
            assert_eq!(kernel.predict_proba(row), model.predict_proba(row));
        }
        // Blocked path agrees too.
        let n = patterns.len();
        let flat: Vec<f64> = patterns.iter().flatten().copied().collect();
        let mut out = vec![0.0; n * kernel.class_count()];
        kernel.score_block_into(&flat, n, &mut KernelScratch::new(), &mut out);
        for (i, row) in patterns.iter().enumerate() {
            assert_eq!(
                &out[i * kernel.class_count()..(i + 1) * kernel.class_count()],
                model.predict_proba(row).as_slice()
            );
        }
    }

    #[test]
    fn signed_zero_and_threshold_equal_values_agree() {
        let (data, model) = fixture(7, 99);
        let kernel = ForestKernel::from_forest(&model);
        // Rows built from the model's own split thresholds hit the
        // `value == threshold` boundary exactly.
        let mut boundary_rows: Vec<Vec<f64>> = Vec::new();
        for tree in model.trees() {
            let flat = tree.to_flat();
            for (i, &k) in flat.kind.iter().enumerate().take(8) {
                if k == 1 {
                    let mut row = data.row(0);
                    row[flat.feature[i] as usize] = flat.threshold[i];
                    boundary_rows.push(row);
                }
            }
        }
        boundary_rows.push(vec![0.0, -0.0, 0.0, -0.0]);
        boundary_rows.push(vec![-0.0, 0.0, -0.0, 0.0]);
        for row in &boundary_rows {
            assert_eq!(kernel.predict_proba(row), model.predict_proba(row));
        }
    }

    #[test]
    fn single_node_trees_score_immediately() {
        // A degenerate dataset (one class value dominates) can yield
        // leaf-only trees; depth-0 roots must terminate instantly.
        let mut d = Dataset::new(vec!["x0".into()], 2);
        for i in 0..40 {
            d.push(vec![i as f64], 0);
        }
        let params = RandomForestParams {
            n_trees: 3,
            ..RandomForestParams::default()
        };
        let model = RandomForest::fit(&d, &params, 5);
        let kernel = ForestKernel::from_forest(&model);
        let steps = kernel.predict_proba_into(&[1.5], &mut [0.0, 0.0]);
        assert_eq!(steps, 0, "leaf-only trees take no steps");
        assert_eq!(kernel.predict_proba(&[1.5]), model.predict_proba(&[1.5]));
    }

    #[test]
    fn quantized_kernel_votes_agree_on_training_data() {
        let (data, model) = fixture(15, 2018);
        let exact = ForestKernel::from_forest(&model);
        let quant = exact.quantize();
        assert_eq!(quant.tree_count(), exact.tree_count());
        for i in 0..data.len() {
            let row = data.row(i);
            let pe = exact.predict_proba(&row);
            let pq = quant.predict_proba(&row);
            // Not bitwise (that's the whole point) — but the vote must
            // agree on this corpus.
            assert_eq!(
                (pe[1] > 0.5) as usize,
                (pq[1] > 0.5) as usize,
                "vote flipped at row {i}: exact {pe:?}, quantized {pq:?}"
            );
        }
    }

    #[test]
    fn layout_is_internal_first_with_leaf_self_loops() {
        let (_, model) = fixture(4, 13);
        let kernel = ForestKernel::from_forest(&model);
        let total: usize = model.trees().iter().map(|t| t.node_count()).sum();
        assert_eq!(kernel.node_count(), total);
        for t in 0..kernel.tree_count() {
            let ls = kernel.leaf_start[t] as usize;
            let end = if t + 1 < kernel.tree_count() {
                // Trees are contiguous; internals of tree t start at
                // the previous tree's end.
                kernel.roots[t + 1].min(kernel.leaf_start[t + 1]) as usize
            } else {
                kernel.node_count()
            };
            for idx in ls..end {
                assert_eq!(kernel.nodes[idx].kids[0] as usize, idx, "leaf self-loop");
                assert_eq!(kernel.nodes[idx].kids[1] as usize, idx);
                assert!(kernel.nodes[idx].threshold.is_infinite());
            }
        }
    }
}
