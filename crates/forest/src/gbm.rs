//! Gradient-boosted decision trees (extension).
//!
//! The paper chose random forests and explicitly did not compare model
//! families (§6), while citing that "ensembles of decision trees …
//! have been known to dominate data science competitions". This module
//! provides the other canonical tree ensemble — gradient boosting with
//! logistic loss — so the reproduction can run that comparison: shallow
//! regression trees fitted to the loss gradient, combined additively,
//! with Newton leaf values and optional row subsampling.

use crate::data::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Gradient-boosting hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbmParams {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Depth of each regression tree (boosting wants shallow trees).
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Fraction of rows sampled (without replacement) per round;
    /// 1.0 = deterministic full-data rounds.
    pub subsample: f64,
}

impl Default for GbmParams {
    fn default() -> Self {
        GbmParams {
            n_rounds: 150,
            learning_rate: 0.1,
            max_depth: 4,
            min_samples_leaf: 5,
            subsample: 0.8,
        }
    }
}

#[derive(Debug, Clone)]
enum RegNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A regression tree fitted to per-row gradients with Newton leaf
/// values (`Σ grad / Σ hess`).
#[derive(Debug, Clone)]
struct RegressionTree {
    nodes: Vec<RegNode>,
}

impl RegressionTree {
    /// Fits on `rows` (indices into `data`), targets `grad`, curvatures
    /// `hess`.
    fn fit(
        data: &Dataset,
        rows: &mut [usize],
        grad: &[f64],
        hess: &[f64],
        max_depth: usize,
        min_samples_leaf: usize,
    ) -> RegressionTree {
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.grow(data, rows, grad, hess, 0, max_depth, min_samples_leaf);
        tree
    }

    #[allow(clippy::too_many_arguments)] // recursive kernel threads its full state
    fn grow(
        &mut self,
        data: &Dataset,
        rows: &mut [usize],
        grad: &[f64],
        hess: &[f64],
        depth: usize,
        max_depth: usize,
        min_samples_leaf: usize,
    ) -> usize {
        let g_sum: f64 = rows.iter().map(|&i| grad[i]).sum();
        let h_sum: f64 = rows.iter().map(|&i| hess[i]).sum();
        // Newton step with a tiny ridge for numerical safety.
        let leaf_value = g_sum / (h_sum + 1e-9);

        if depth >= max_depth || rows.len() < 2 * min_samples_leaf {
            self.nodes.push(RegNode::Leaf { value: leaf_value });
            return self.nodes.len() - 1;
        }

        // Best split by gain = GL²/HL + GR²/HR − G²/H.
        let parent_score = g_sum * g_sum / (h_sum + 1e-9);
        let mut best: Option<(usize, f64, f64)> = None;
        let mut pairs: Vec<(f64, f64, f64)> = Vec::with_capacity(rows.len());
        for feature in 0..data.feature_count() {
            let column = data.column(feature);
            pairs.clear();
            pairs.extend(rows.iter().map(|&i| (column[i], grad[i], hess[i])));
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            if pairs[0].0 == pairs[pairs.len() - 1].0 {
                continue;
            }
            let mut gl = 0.0;
            let mut hl = 0.0;
            for k in 0..pairs.len() - 1 {
                gl += pairs[k].1;
                hl += pairs[k].2;
                if pairs[k].0 == pairs[k + 1].0 {
                    continue;
                }
                let left_n = k + 1;
                let right_n = pairs.len() - left_n;
                if left_n < min_samples_leaf || right_n < min_samples_leaf {
                    continue;
                }
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                let gain = gl * gl / (hl + 1e-9) + gr * gr / (hr + 1e-9) - parent_score;
                if gain > 1e-12 {
                    let mid = pairs[k].0 + (pairs[k + 1].0 - pairs[k].0) / 2.0;
                    let threshold = if mid >= pairs[k + 1].0 {
                        pairs[k].0
                    } else {
                        mid
                    };
                    match best {
                        Some((_, _, best_gain)) if best_gain >= gain => {}
                        _ => best = Some((feature, threshold, gain)),
                    }
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            self.nodes.push(RegNode::Leaf { value: leaf_value });
            return self.nodes.len() - 1;
        };

        let column = data.column(feature);
        let mut mid = 0usize;
        for i in 0..rows.len() {
            if column[rows[i]] <= threshold {
                rows.swap(i, mid);
                mid += 1;
            }
        }
        debug_assert!(mid > 0 && mid < rows.len());

        self.nodes.push(RegNode::Leaf { value: 0.0 }); // placeholder
        let me = self.nodes.len() - 1;
        let (left_rows, right_rows) = rows.split_at_mut(mid);
        let left = self.grow(
            data,
            left_rows,
            grad,
            hess,
            depth + 1,
            max_depth,
            min_samples_leaf,
        );
        let right = self.grow(
            data,
            right_rows,
            grad,
            hess,
            depth + 1,
            max_depth,
            min_samples_leaf,
        );
        self.nodes[me] = RegNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    fn predict(&self, features: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Prediction for row `i` of a columnar dataset (no row gather).
    fn predict_row(&self, data: &Dataset, i: usize) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if data.value(i, *feature) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A fitted gradient-boosting classifier (binary, logistic loss).
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    base_score: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
    feature_count: usize,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl GradientBoosting {
    /// Trains the model. Deterministic in `(data, params, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, not binary, or parameters are
    /// out of range.
    pub fn fit(data: &Dataset, params: &GbmParams, seed: u64) -> GradientBoosting {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert_eq!(data.class_count(), 2, "gradient boosting here is binary");
        assert!(params.n_rounds > 0, "need at least one round");
        assert!(
            params.learning_rate > 0.0 && params.learning_rate <= 1.0,
            "learning rate must be in (0, 1]"
        );
        assert!(
            params.subsample > 0.0 && params.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );

        let n = data.len();
        let q = data.class_fraction(1).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (q / (1.0 - q)).ln();

        let mut scores = vec![base_score; n];
        let mut trees = Vec::with_capacity(params.n_rounds);
        let mut rng = SmallRng::seed_from_u64(seed);
        let sample_size = ((n as f64) * params.subsample).round().max(2.0) as usize;

        let mut grad = vec![0.0_f64; n];
        let mut hess = vec![0.0_f64; n];
        let mut indices: Vec<usize> = (0..n).collect();

        for _round in 0..params.n_rounds {
            for i in 0..n {
                let p = sigmoid(scores[i]);
                let y = data.label(i) as f64;
                grad[i] = y - p; // negative gradient of logloss
                hess[i] = (p * (1.0 - p)).max(1e-9);
            }

            // Subsample rows without replacement (partial Fisher–Yates).
            let rows: &mut [usize] = if sample_size < n {
                for i in 0..sample_size {
                    let j = rng.gen_range(i..n);
                    indices.swap(i, j);
                }
                &mut indices[..sample_size]
            } else {
                &mut indices[..]
            };

            let tree = RegressionTree::fit(
                data,
                rows,
                &grad,
                &hess,
                params.max_depth,
                params.min_samples_leaf,
            );
            for (i, score) in scores.iter_mut().enumerate() {
                *score += params.learning_rate * tree.predict_row(data, i);
            }
            trees.push(tree);
        }

        GradientBoosting {
            base_score,
            learning_rate: params.learning_rate,
            trees,
            feature_count: data.feature_count(),
        }
    }

    /// Positive-class probability.
    pub fn predict_positive_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.feature_count,
            "expected {} features, got {}",
            self.feature_count,
            features.len()
        );
        let mut score = self.base_score;
        for tree in &self.trees {
            score += self.learning_rate * tree.predict(features);
        }
        sigmoid(score)
    }

    /// Predicted class (`p > 0.5`).
    pub fn predict(&self, features: &[f64]) -> usize {
        (self.predict_positive_proba(features) > 0.5) as usize
    }

    /// Number of boosted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut d = Dataset::new(vec!["x0".into(), "x1".into(), "noise".into()], 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            let noise: f64 = rng.gen();
            d.push(vec![x0, x1, noise], ((x0 + x1) > 1.0) as usize);
        }
        d
    }

    #[test]
    fn learns_linear_boundary() {
        let d = dataset(800, 1);
        let model = GradientBoosting::fit(&d, &GbmParams::default(), 7);
        let correct = (0..d.len())
            .filter(|&i| model.predict(&d.row(i)) == d.label(i))
            .count();
        let acc = correct as f64 / d.len() as f64;
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let d = dataset(300, 2);
        let model = GradientBoosting::fit(&d, &GbmParams::default(), 3);
        for i in 0..d.len() {
            let p = model.predict_positive_proba(&d.row(i));
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn more_rounds_fit_better() {
        let d = dataset(600, 3);
        let weak = GradientBoosting::fit(
            &d,
            &GbmParams {
                n_rounds: 3,
                ..GbmParams::default()
            },
            5,
        );
        let strong = GradientBoosting::fit(
            &d,
            &GbmParams {
                n_rounds: 200,
                ..GbmParams::default()
            },
            5,
        );
        let acc = |m: &GradientBoosting| {
            (0..d.len())
                .filter(|&i| m.predict(&d.row(i)) == d.label(i))
                .count() as f64
                / d.len() as f64
        };
        assert!(acc(&strong) > acc(&weak));
    }

    #[test]
    fn deterministic_under_seed() {
        let d = dataset(300, 4);
        let a = GradientBoosting::fit(&d, &GbmParams::default(), 9);
        let b = GradientBoosting::fit(&d, &GbmParams::default(), 9);
        for i in (0..d.len()).step_by(17) {
            assert_eq!(
                a.predict_positive_proba(&d.row(i)),
                b.predict_positive_proba(&d.row(i))
            );
        }
    }

    #[test]
    fn base_score_matches_class_prior() {
        // With zero-depth trees impossible, use 1 round + tiny lr: the
        // prediction stays near the prior.
        let mut d = Dataset::new(vec!["x".into()], 2);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..500 {
            d.push(vec![rng.gen()], (rng.gen::<f64>() < 0.7) as usize);
        }
        let model = GradientBoosting::fit(
            &d,
            &GbmParams {
                n_rounds: 1,
                learning_rate: 1e-6,
                ..GbmParams::default()
            },
            1,
        );
        let p = model.predict_positive_proba(&[0.5]);
        assert!((p - 0.7).abs() < 0.05, "p = {p}");
    }

    #[test]
    #[should_panic]
    fn rejects_multiclass() {
        let mut d = Dataset::new(vec!["x".into()], 3);
        d.push(vec![0.0], 0);
        d.push(vec![1.0], 1);
        d.push(vec![2.0], 2);
        GradientBoosting::fit(&d, &GbmParams::default(), 1);
    }

    #[test]
    fn full_batch_subsample_is_deterministic_in_rows() {
        let d = dataset(200, 8);
        let params = GbmParams {
            subsample: 1.0,
            n_rounds: 20,
            ..GbmParams::default()
        };
        // Different seeds only matter through subsampling; with
        // subsample = 1.0 the fit is seed-independent.
        let a = GradientBoosting::fit(&d, &params, 1);
        let b = GradientBoosting::fit(&d, &params, 2);
        for i in (0..d.len()).step_by(13) {
            assert_eq!(
                a.predict_positive_proba(&d.row(i)),
                b.predict_positive_proba(&d.row(i))
            );
        }
    }
}
