//! Permutation feature importance.
//!
//! Gini importance (the paper's §5.4 measure) is known to be biased
//! toward high-cardinality features; permutation importance — the
//! accuracy drop when one feature's column is shuffled — is the
//! standard cross-check. The `factors` experiment compares both
//! rankings; agreement strengthens the §5.4 conclusions.

use crate::data::Dataset;
use crate::random_forest::RandomForest;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Mean accuracy drop per feature over `repeats` independent shuffles
/// of that feature's column, evaluated on `data` (normally a held-out
/// set). Positive values mean the model relies on the feature; values
/// near zero (or slightly negative, from shuffle noise) mean it does
/// not.
///
/// # Panics
///
/// Panics if `data` is empty or `repeats` is zero.
pub fn permutation_importance(
    model: &RandomForest,
    data: &Dataset,
    repeats: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(!data.is_empty(), "need evaluation data");
    assert!(repeats > 0, "need at least one repeat");

    let n = data.len();
    let baseline = accuracy(model, data, None, 0);

    let mut out = Vec::with_capacity(data.feature_count());
    for feature in 0..data.feature_count() {
        let mut total_drop = 0.0;
        for r in 0..repeats {
            let shuffle_seed = seed
                ^ (feature as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (r as u64).wrapping_mul(0xDEAD_BEEF);
            let permuted = accuracy(model, data, Some(feature), shuffle_seed);
            total_drop += baseline - permuted;
        }
        out.push(total_drop / repeats as f64);
    }
    let _ = n;
    out
}

/// Accuracy of `model` on `data`, optionally with one feature column
/// shuffled (Fisher–Yates on a copy of the column).
fn accuracy(model: &RandomForest, data: &Dataset, shuffled: Option<usize>, seed: u64) -> f64 {
    let n = data.len();
    let permutation: Option<Vec<usize>> = shuffled.map(|_| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx
    });

    let mut correct = 0usize;
    let mut row_buf: Vec<f64> = Vec::new();
    for i in 0..n {
        let prediction = match (shuffled, &permutation) {
            (Some(feature), Some(perm)) => {
                data.gather_row_into(i, &mut row_buf);
                row_buf[feature] = data.value(perm[i], feature);
                model.predict(&row_buf)
            }
            _ => model.predict_row(data, i),
        };
        if prediction == data.label(i) {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

/// `(name, permutation importance)` pairs sorted descending.
pub fn ranked_permutation_importance(
    model: &RandomForest,
    data: &Dataset,
    repeats: usize,
    seed: u64,
) -> Vec<(String, f64)> {
    let importances = permutation_importance(model, data, repeats, seed);
    let mut pairs: Vec<(String, f64)> = data
        .feature_names()
        .iter()
        .cloned()
        .zip(importances)
        .collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importances"));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_forest::RandomForestParams;

    /// Class = x0 > 0.5; x1 is pure noise.
    fn dataset(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["signal".into(), "noise".into()], 2);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            d.push(vec![x0, x1], (x0 > 0.5) as usize);
        }
        d
    }

    #[test]
    fn signal_feature_dominates() {
        let d = dataset(600);
        let model = RandomForest::fit(&d, &RandomForestParams::default(), 3);
        let imp = permutation_importance(&model, &d, 3, 11);
        assert!(imp[0] > 0.2, "signal importance {:?}", imp);
        assert!(imp[1].abs() < 0.05, "noise importance {:?}", imp);
        let ranked = ranked_permutation_importance(&model, &d, 3, 11);
        assert_eq!(ranked[0].0, "signal");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset(300);
        let model = RandomForest::fit(&d, &RandomForestParams::default(), 3);
        let a = permutation_importance(&model, &d, 2, 7);
        let b = permutation_importance(&model, &d, 2, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_with_gini_on_clear_signal() {
        let d = dataset(600);
        let model = RandomForest::fit(&d, &RandomForestParams::default(), 3);
        let gini = model.feature_importances();
        let perm = permutation_importance(&model, &d, 3, 1);
        // Both rank the signal feature first.
        assert!(gini[0] > gini[1]);
        assert!(perm[0] > perm[1]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_data() {
        let d = dataset(10);
        let model = RandomForest::fit(&d, &RandomForestParams::default(), 3);
        let empty = Dataset::new(vec!["signal".into(), "noise".into()], 2);
        permutation_importance(&model, &empty, 1, 0);
    }
}
