//! Decision trees and random forests for database-lifespan
//! classification.
//!
//! A from-scratch implementation of the paper's model of choice (§2,
//! §4.1): CART decision trees with gini impurity, bagged into random
//! forests with per-node random feature subsets, class-probability
//! predictions (used as confidence levels in §5.3), and gini feature
//! importance (§5.4). Around the model sit the standard evaluation
//! tools the paper uses: stratified splits, k-fold cross-validated grid
//! search, accuracy/precision/recall, and the weighted-random baseline
//! classifier.
//!
//! # Example
//!
//! ```
//! use forest::{Dataset, RandomForest, RandomForestParams};
//!
//! // A tiny two-feature dataset: class is 1 iff x0 > 0.
//! let mut data = Dataset::new(vec!["x0".into(), "x1".into()], 2);
//! for i in 0..100 {
//!     let x0 = (i as f64 - 50.0) / 10.0;
//!     let x1 = (i % 7) as f64;
//!     data.push(vec![x0, x1], (x0 > 0.0) as usize);
//! }
//! let model = RandomForest::fit(&data, &RandomForestParams::default(), 42);
//! assert_eq!(model.predict(&[3.0, 1.0]), 1);
//! assert_eq!(model.predict(&[-3.0, 1.0]), 0);
//! ```

pub mod baseline;
pub mod calibration;
pub mod confidence;
pub mod data;
pub mod flatkernel;
pub mod gbm;
pub mod importance;
pub mod metrics;
pub mod model_selection;
pub mod parallel;
pub mod tree;

mod random_forest;

pub use baseline::WeightedRandomClassifier;
pub use calibration::{ReliabilityBin, ReliabilityDiagram};
pub use confidence::{
    confidence_threshold, threshold_grid, ConfidenceSplit, PartitionedPredictions,
};
pub use data::{Dataset, DatasetView};
pub use flatkernel::{ForestKernel, KernelScratch, KernelStats, QuantizedKernel};
pub use gbm::{GbmParams, GradientBoosting};
pub use importance::{permutation_importance, ranked_permutation_importance};
pub use metrics::{roc_auc, ClassificationScores, ConfusionMatrix};
pub use model_selection::{
    cross_val_accuracy, train_test_split, train_test_split_indices, GridSearch, GridSearchResult,
    KFold,
};
pub use parallel::{derive_seed, set_thread_limit, splitmix64};
pub use random_forest::{MaxFeatures, RandomForest, RandomForestParams};
pub use tree::{DecisionTree, FlatTree, TreeParams};
