//! Classification metrics: confusion matrix, accuracy, precision,
//! recall, F1, and ROC-AUC.
//!
//! Definitions follow the paper (§5.1): accuracy is the ratio of
//! correctly classified databases; precision is the fraction of
//! predicted positives that are actually positive; recall is the
//! fraction of actual positives that are predicted positive. The
//! positive class is "lives more than 30 days".

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from parallel prediction/truth slices.
    /// Class 0 is negative; every nonzero class is positive. Binary
    /// labels behave as before, and a stray multiclass label (say a 2
    /// leaking out of a >2-class experiment) counts as positive instead
    /// of silently landing in the negative cells via `label == 1`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(predicted: &[usize], actual: &[usize]) -> ConfusionMatrix {
        assert_eq!(
            predicted.len(),
            actual.len(),
            "prediction/truth length mismatch"
        );
        let mut m = ConfusionMatrix::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            m.record(p != 0, a != 0);
        }
        m
    }

    /// Records one example.
    pub fn record(&mut self, predicted_positive: bool, actually_positive: bool) {
        match (predicted_positive, actually_positive) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Total examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Correct classification rate (0 if empty).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Positive predictive value (0 when nothing was predicted
    /// positive).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// True-positive rate (0 when there are no actual positives).
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// The `(accuracy, precision, recall)` triple the paper's Figure 5/7
    /// panels report.
    pub fn scores(&self) -> ClassificationScores {
        ClassificationScores {
            accuracy: self.accuracy(),
            precision: self.precision(),
            recall: self.recall(),
            support: self.total(),
        }
    }
}

/// The score triple reported per paper panel, plus example count.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassificationScores {
    /// Correct classification rate.
    pub accuracy: f64,
    /// Positive predictive value.
    pub precision: f64,
    /// True positive rate.
    pub recall: f64,
    /// Number of examples scored.
    pub support: usize,
}

impl ClassificationScores {
    /// Element-wise mean of several score triples (used for the paper's
    /// "average over 5 runs"). Supports sums.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn mean(scores: &[ClassificationScores]) -> ClassificationScores {
        assert!(!scores.is_empty(), "cannot average zero score sets");
        let n = scores.len() as f64;
        ClassificationScores {
            accuracy: scores.iter().map(|s| s.accuracy).sum::<f64>() / n,
            precision: scores.iter().map(|s| s.precision).sum::<f64>() / n,
            recall: scores.iter().map(|s| s.recall).sum::<f64>() / n,
            support: scores.iter().map(|s| s.support).sum(),
        }
    }
}

/// Area under the ROC curve for binary scores via the rank-sum
/// (Mann–Whitney) formulation. Ties in score contribute half.
///
/// Returns 0.5 when either class is absent (no ranking information).
pub fn roc_auc(scores: &[f64], actual: &[usize]) -> f64 {
    assert_eq!(scores.len(), actual.len(), "score/truth length mismatch");
    let mut pairs: Vec<(f64, usize)> = scores.iter().copied().zip(actual.iter().copied()).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));

    let pos_total = actual.iter().filter(|&&a| a == 1).count();
    let neg_total = actual.len() - pos_total;
    if pos_total == 0 || neg_total == 0 {
        return 0.5;
    }

    // Sum of positive ranks with midranks for ties.
    let mut rank_sum = 0.0_f64;
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        let midrank = (i + 1 + j) as f64 / 2.0; // average of ranks i+1..=j
        for p in &pairs[i..j] {
            if p.1 == 1 {
                rank_sum += midrank;
            }
        }
        i = j;
    }
    let u = rank_sum - (pos_total * (pos_total + 1)) as f64 / 2.0;
    u / (pos_total * neg_total) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn confusion_counts() {
        let m = ConfusionMatrix::from_predictions(&[1, 1, 0, 0, 1], &[1, 0, 0, 1, 1]);
        assert_eq!(m.tp, 2);
        assert_eq!(m.fp, 1);
        assert_eq!(m.tn, 1);
        assert_eq!(m.fn_, 1);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.f1(), 0.0);

        // All predicted negative: precision 0, recall 0.
        let m = ConfusionMatrix::from_predictions(&[0, 0], &[1, 1]);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
    }

    #[test]
    fn perfect_classifier() {
        let m = ConfusionMatrix::from_predictions(&[1, 0, 1], &[1, 0, 1]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn multiclass_labels_count_as_positive() {
        // Regression: class 2 used to fail `label == 1` and fall into
        // the *negative* cells, so [2] vs [2] scored as a true negative.
        let m = ConfusionMatrix::from_predictions(&[2, 0, 1, 2], &[2, 2, 0, 1]);
        assert_eq!(m.tp, 2); // (2,2) and (2,1)
        assert_eq!(m.fp, 1); // (1,0)
        assert_eq!(m.fn_, 1); // (0,2)
        assert_eq!(m.tn, 0);
        assert_eq!(m.accuracy(), 0.5);
    }

    #[test]
    fn score_averaging() {
        let a = ClassificationScores {
            accuracy: 0.8,
            precision: 0.6,
            recall: 1.0,
            support: 10,
        };
        let b = ClassificationScores {
            accuracy: 0.6,
            precision: 0.8,
            recall: 0.5,
            support: 20,
        };
        let m = ClassificationScores::mean(&[a, b]);
        assert!((m.accuracy - 0.7).abs() < 1e-12);
        assert!((m.precision - 0.7).abs() < 1e-12);
        assert!((m.recall - 0.75).abs() < 1e-12);
        assert_eq!(m.support, 30);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let actual = [0, 0, 1, 1];
        assert!((roc_auc(&[0.1, 0.2, 0.8, 0.9], &actual) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&[0.9, 0.8, 0.2, 0.1], &actual) - 0.0).abs() < 1e-12);
        // Constant score: AUC 0.5 via midranks.
        assert!((roc_auc(&[0.5, 0.5, 0.5, 0.5], &actual) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[0.3, 0.4], &[1, 1]), 0.5);
    }

    proptest! {
        #[test]
        fn prop_metrics_in_unit_interval(
            preds in prop::collection::vec(0usize..2, 1..200),
            truth_seed in prop::collection::vec(0usize..2, 1..200),
        ) {
            let n = preds.len().min(truth_seed.len());
            let m = ConfusionMatrix::from_predictions(&preds[..n], &truth_seed[..n]);
            for v in [m.accuracy(), m.precision(), m.recall(), m.f1()] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
            prop_assert_eq!(m.total(), n);
        }

        #[test]
        fn prop_auc_flip_symmetry(
            scores in prop::collection::vec(0.0..1.0_f64, 4..100),
            labels in prop::collection::vec(0usize..2, 4..100),
        ) {
            let n = scores.len().min(labels.len());
            let scores = &scores[..n];
            let labels = &labels[..n];
            let flipped: Vec<usize> = labels.iter().map(|&l| 1 - l).collect();
            let auc = roc_auc(scores, labels);
            let auc_flipped = roc_auc(scores, &flipped);
            // Flipping labels mirrors the AUC around 0.5 (when both
            // classes are present; otherwise both are exactly 0.5).
            prop_assert!((auc + auc_flipped - 1.0).abs() < 1e-9);
        }
    }
}
