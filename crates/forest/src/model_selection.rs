//! Train/test splitting, stratified k-fold cross-validation, and grid
//! search — the paper's §5.1 evaluation protocol.
//!
//! Splits and folds are index sets over a shared [`Dataset`]; training
//! happens through borrowed [`crate::DatasetView`]s, so no feature
//! value is copied per fold, candidate, or repetition. Every fold /
//! candidate work unit derives its seed from the base seed and the
//! unit index via [`derive_seed`], which keeps results identical
//! across thread counts and fixes the old `seed ^ fold` scheme (fold 0
//! collided with the k-fold shuffle seed).

use crate::data::Dataset;
use crate::parallel::{derive_seed, run_units};
use crate::random_forest::{RandomForest, RandomForestParams};
use crate::tree::SplitPrecompute;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Splits a dataset into `(train, test)` index sets with
/// `test_fraction` of the examples (stratified by class so both sides
/// keep the class balance — important for the imbalanced Premium
/// subgroup).
///
/// Any class with at least two members gets at least one example on
/// each side, regardless of rounding; singleton classes go to the
/// training side.
///
/// # Panics
///
/// Panics unless `0 < test_fraction < 1` or if the dataset is empty.
pub fn train_test_split_indices(
    data: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0,1), got {test_fraction}"
    );
    assert!(!data.is_empty(), "cannot split an empty dataset");

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();

    // Shuffle within each class, then cut.
    for class in 0..data.class_count() {
        let mut members: Vec<usize> = (0..data.len())
            .filter(|&i| data.label(i) == class)
            .collect();
        shuffle(&mut members, &mut rng);
        // Rounding alone can starve one side of a small class (e.g. 4
        // members at 10% rounds to 0 test examples); clamp so every
        // class with >= 2 members appears on both sides.
        let n_test = if members.len() >= 2 {
            let rounded = (members.len() as f64 * test_fraction).round() as usize;
            rounded.clamp(1, members.len() - 1)
        } else {
            0
        };
        test_idx.extend_from_slice(&members[..n_test]);
        train_idx.extend_from_slice(&members[n_test..]);
    }
    // Keep downstream iteration order independent of class grouping.
    shuffle(&mut train_idx, &mut rng);
    shuffle(&mut test_idx, &mut rng);
    (train_idx, test_idx)
}

/// Materialized variant of [`train_test_split_indices`] for callers
/// that need owned datasets.
pub fn train_test_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    let (train_idx, test_idx) = train_test_split_indices(data, test_fraction, seed);
    (data.select(&train_idx), data.select(&test_idx))
}

fn shuffle<R: Rng + ?Sized>(v: &mut [usize], rng: &mut R) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

/// Stratified k-fold splitter.
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Builds `k` stratified folds over the dataset.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k` exceeds the dataset size.
    pub fn new(data: &Dataset, k: usize, seed: u64) -> KFold {
        let rows: Vec<usize> = (0..data.len()).collect();
        KFold::over(data, &rows, k, seed)
    }

    /// Builds `k` stratified folds over the rows of `data` selected by
    /// `rows` — folds contain values drawn from `rows`, so nested
    /// protocols (grid search inside a train split) stay zero-copy.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k` exceeds `rows.len()`.
    pub fn over(data: &Dataset, rows: &[usize], k: usize, seed: u64) -> KFold {
        assert!(k >= 2, "k-fold needs k >= 2, got {k}");
        assert!(
            k <= rows.len(),
            "k = {k} exceeds dataset size {}",
            rows.len()
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for class in 0..data.class_count() {
            let mut members: Vec<usize> = rows
                .iter()
                .copied()
                .filter(|&i| data.label(i) == class)
                .collect();
            shuffle(&mut members, &mut rng);
            for (pos, idx) in members.into_iter().enumerate() {
                folds[pos % k].push(idx);
            }
        }
        KFold { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// The `(train, validation)` index sets for fold `fold`.
    pub fn split(&self, fold: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(fold < self.folds.len(), "fold {fold} out of range");
        let validation = self.folds[fold].clone();
        let train: Vec<usize> = self
            .folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != fold)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        (train, validation)
    }
}

/// Accuracy of `params` trained on the `train` indices and scored on
/// the `validation` indices, both views over `data`. `pre` is a
/// rank-code precompute over (a superset of) the training rows, shared
/// across folds and candidates. Candidates are ranked purely by
/// validation accuracy, so fold fits skip the out-of-bag tally.
fn fold_accuracy(
    data: &Dataset,
    pre: &SplitPrecompute,
    train: &[usize],
    validation: &[usize],
    params: &RandomForestParams,
    seed: u64,
) -> f64 {
    let _span = obs::span!("fold");
    let model = RandomForest::fit_shared(data, pre, train, params, seed, false);
    let correct = validation
        .iter()
        .filter(|&&i| model.predict_row(data, i) == data.label(i))
        .count();
    obs::count("forest.cv_folds_completed", 1);
    correct as f64 / validation.len() as f64
}

/// Mean validation accuracy of a parameter setting under stratified
/// k-fold cross-validation.
///
/// Folds run as parallel work units; fold `f`'s forest is seeded with
/// `derive_seed(seed, f)` and the mean is accumulated in fold order,
/// so the result is independent of thread count.
pub fn cross_val_accuracy(data: &Dataset, params: &RandomForestParams, k: usize, seed: u64) -> f64 {
    let _span = obs::span!("cross_val");
    let kfold = KFold::new(data, k, seed);
    let splits: Vec<(Vec<usize>, Vec<usize>)> = (0..k).map(|f| kfold.split(f)).collect();
    let rows: Vec<usize> = (0..data.len()).collect();
    let pre = SplitPrecompute::build(data, &rows);
    let scores = run_units(k, |fold| {
        let (train, validation) = &splits[fold];
        fold_accuracy(
            data,
            &pre,
            train,
            validation,
            params,
            derive_seed(seed, fold as u64),
        )
    });
    scores.iter().sum::<f64>() / k as f64
}

/// The outcome of a grid search.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// The winning parameter setting.
    pub best_params: RandomForestParams,
    /// Its mean cross-validated accuracy.
    pub best_score: f64,
    /// `(params, score)` for every candidate evaluated.
    pub all_scores: Vec<(RandomForestParams, f64)>,
}

/// Grid search over random-forest parameter candidates using stratified
/// k-fold cross-validation (the paper's tuning protocol).
#[derive(Debug, Clone)]
pub struct GridSearch {
    candidates: Vec<RandomForestParams>,
    folds: usize,
}

impl GridSearch {
    /// Creates a search over explicit candidates with `folds`-fold CV.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or `folds < 2`.
    pub fn new(candidates: Vec<RandomForestParams>, folds: usize) -> GridSearch {
        assert!(!candidates.is_empty(), "grid search needs candidates");
        assert!(folds >= 2, "grid search needs >= 2 folds");
        GridSearch { candidates, folds }
    }

    /// Runs the search over the full dataset.
    pub fn run(&self, data: &Dataset, seed: u64) -> GridSearchResult {
        let rows: Vec<usize> = (0..data.len()).collect();
        self.run_on(data, &rows, seed)
    }

    /// Runs the search over the rows of `data` selected by `rows`,
    /// returning the best setting by mean CV accuracy (first candidate
    /// wins ties, so candidate order is a tiebreak preference).
    ///
    /// All `candidates × folds` fits are independent work units; unit
    /// `(c, f)` is seeded with `derive_seed(seed, c·k + f)`, so the
    /// result is a pure function of `(data, rows, candidates, seed)`
    /// whatever the thread count. Folds are built once and shared by
    /// every candidate.
    pub fn run_on(&self, data: &Dataset, rows: &[usize], seed: u64) -> GridSearchResult {
        let _span = obs::span!("grid_search");
        let k = self.folds;
        let kfold = KFold::over(data, rows, k, seed);
        let splits: Vec<(Vec<usize>, Vec<usize>)> = (0..k).map(|f| kfold.split(f)).collect();
        let pre = SplitPrecompute::build(data, rows);

        let units = self.candidates.len() * k;
        let fold_scores = run_units(units, |u| {
            let candidate = u / k;
            let fold = u % k;
            let (train, validation) = &splits[fold];
            fold_accuracy(
                data,
                &pre,
                train,
                validation,
                &self.candidates[candidate],
                derive_seed(seed, u as u64),
            )
        });

        let mut all_scores = Vec::with_capacity(self.candidates.len());
        let mut best: Option<(RandomForestParams, f64)> = None;
        for (c, params) in self.candidates.iter().enumerate() {
            let score = fold_scores[c * k..(c + 1) * k].iter().sum::<f64>() / k as f64;
            all_scores.push((*params, score));
            match best {
                Some((_, best_score)) if best_score >= score => {}
                _ => best = Some((*params, score)),
            }
        }
        let (best_params, best_score) = best.expect("non-empty candidates");
        GridSearchResult {
            best_params,
            best_score,
            all_scores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_forest::MaxFeatures;
    use crate::tree::TreeParams;

    fn dataset(n: usize, positive_fraction: f64) -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "y".into()], 2);
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..n {
            let positive = rng.gen::<f64>() < positive_fraction;
            let x: f64 = if positive {
                rng.gen::<f64>() + 0.4
            } else {
                rng.gen::<f64>() - 0.4
            };
            d.push(vec![x, rng.gen()], positive as usize);
        }
        d
    }

    #[test]
    fn split_preserves_class_balance() {
        let d = dataset(1000, 0.7);
        let (train, test) = train_test_split(&d, 0.2, 9);
        assert_eq!(train.len() + test.len(), 1000);
        assert!((test.len() as f64 - 200.0).abs() <= 1.0);
        assert!((train.class_fraction(1) - 0.7).abs() < 0.03);
        assert!((test.class_fraction(1) - 0.7).abs() < 0.03);
    }

    #[test]
    fn split_is_disjoint_and_deterministic() {
        let d = dataset(200, 0.5);
        let (tr1, te1) = train_test_split(&d, 0.25, 4);
        let (tr2, te2) = train_test_split(&d, 0.25, 4);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        let (train_idx, test_idx) = train_test_split_indices(&d, 0.25, 4);
        let mut seen = vec![false; d.len()];
        for &i in train_idx.iter().chain(&test_idx) {
            assert!(!seen[i], "index {i} appears twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tiny_classes_land_on_both_sides() {
        // 4 members at 10% would round to 0 test examples; the clamp
        // must keep one on each side.
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..50 {
            d.push(vec![i as f64], 0);
        }
        for i in 0..4 {
            d.push(vec![100.0 + i as f64], 1);
        }
        let (train, test) = train_test_split(&d, 0.1, 7);
        assert!(
            train.class_distribution()[1] >= 1,
            "train lost the small class"
        );
        assert!(
            test.class_distribution()[1] >= 1,
            "test lost the small class"
        );

        // The mirror case: 90% test would round the small class to 4,
        // starving the training side.
        let (train, test) = train_test_split(&d, 0.9, 7);
        assert!(train.class_distribution()[1] >= 1);
        assert!(test.class_distribution()[1] >= 1);

        // A singleton class cannot be on both sides; it trains.
        let mut s = Dataset::new(vec!["x".into()], 2);
        for i in 0..20 {
            s.push(vec![i as f64], 0);
        }
        s.push(vec![99.0], 1);
        let (train, test) = train_test_split(&s, 0.2, 7);
        assert_eq!(train.class_distribution()[1], 1);
        assert_eq!(test.class_distribution()[1], 0);
    }

    #[test]
    fn kfold_partitions_everything_once() {
        let d = dataset(103, 0.6);
        let kf = KFold::new(&d, 5, 3);
        let mut seen = vec![false; d.len()];
        for fold in 0..kf.k() {
            let (train, val) = kf.split(fold);
            assert_eq!(train.len() + val.len(), d.len());
            for &i in &val {
                assert!(!seen[i], "index {i} in two validation folds");
                seen[i] = true;
            }
            // Train and validation are disjoint.
            for &i in &val {
                assert!(!train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn kfold_over_subset_stays_inside_it() {
        let d = dataset(120, 0.5);
        let rows: Vec<usize> = (0..120).filter(|i| i % 3 != 0).collect();
        let kf = KFold::over(&d, &rows, 4, 5);
        let mut seen = 0usize;
        for fold in 0..kf.k() {
            let (train, val) = kf.split(fold);
            assert_eq!(train.len() + val.len(), rows.len());
            for &i in train.iter().chain(&val) {
                assert!(rows.contains(&i), "index {i} not in the subset");
            }
            seen += val.len();
        }
        assert_eq!(seen, rows.len());
    }

    #[test]
    fn cross_val_scores_learnable_data_high() {
        let d = dataset(400, 0.5);
        let params = RandomForestParams {
            n_trees: 20,
            ..RandomForestParams::default()
        };
        let acc = cross_val_accuracy(&d, &params, 4, 11);
        assert!(acc > 0.85, "cv accuracy {acc}");
    }

    #[test]
    fn fold_seeds_avoid_shuffle_seed() {
        // Regression for the old `seed ^ fold` scheme: fold 0's model
        // seed must differ from the k-fold shuffle seed.
        let seed = 11u64;
        assert_ne!(derive_seed(seed, 0), seed);
    }

    #[test]
    fn grid_search_picks_reasonable_candidate() {
        let d = dataset(300, 0.5);
        // A majority-vote stump (depth 0 leaves ≈ class prior) against
        // a real forest: the forest must win for any rng stream.
        let stump = RandomForestParams {
            n_trees: 2,
            tree: TreeParams {
                max_depth: 0,
                ..TreeParams::default()
            },
            max_features: MaxFeatures::Count(1),
            bootstrap: true,
        };
        let strong = RandomForestParams {
            n_trees: 25,
            tree: TreeParams::default(),
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
        };
        let result = GridSearch::new(vec![stump, strong], 3).run(&d, 13);
        assert_eq!(result.all_scores.len(), 2);
        assert_eq!(result.best_params.n_trees, 25);
        assert!(result.best_score >= result.all_scores[0].1);
    }

    #[test]
    fn grid_search_candidate_zero_matches_cross_val() {
        // Unit (0, f) uses derive_seed(seed, f) — the same seeds
        // cross_val_accuracy assigns — so the first candidate's grid
        // score equals its standalone CV score.
        let d = dataset(150, 0.5);
        let params = RandomForestParams {
            n_trees: 5,
            ..RandomForestParams::default()
        };
        let standalone = cross_val_accuracy(&d, &params, 3, 21);
        let result = GridSearch::new(vec![params], 3).run(&d, 21);
        assert_eq!(result.all_scores[0].1, standalone);
    }
}
