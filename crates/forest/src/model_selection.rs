//! Train/test splitting, stratified k-fold cross-validation, and grid
//! search — the paper's §5.1 evaluation protocol.

use crate::data::Dataset;
use crate::random_forest::{RandomForest, RandomForestParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Splits a dataset into `(train, test)` with `test_fraction` of the
/// examples (stratified by class so both sides keep the class balance —
/// important for the imbalanced Premium subgroup).
///
/// # Panics
///
/// Panics unless `0 < test_fraction < 1` or if the dataset is empty.
pub fn train_test_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0,1), got {test_fraction}"
    );
    assert!(!data.is_empty(), "cannot split an empty dataset");

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();

    // Shuffle within each class, then cut.
    for class in 0..data.class_count() {
        let mut members: Vec<usize> = (0..data.len())
            .filter(|&i| data.label(i) == class)
            .collect();
        shuffle(&mut members, &mut rng);
        let n_test = (members.len() as f64 * test_fraction).round() as usize;
        test_idx.extend_from_slice(&members[..n_test]);
        train_idx.extend_from_slice(&members[n_test..]);
    }
    // Keep downstream iteration order independent of class grouping.
    shuffle(&mut train_idx, &mut rng);
    shuffle(&mut test_idx, &mut rng);
    (data.select(&train_idx), data.select(&test_idx))
}

fn shuffle<R: Rng + ?Sized>(v: &mut [usize], rng: &mut R) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

/// Stratified k-fold splitter.
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Builds `k` stratified folds over the dataset.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k` exceeds the dataset size.
    pub fn new(data: &Dataset, k: usize, seed: u64) -> KFold {
        assert!(k >= 2, "k-fold needs k >= 2, got {k}");
        assert!(
            k <= data.len(),
            "k = {k} exceeds dataset size {}",
            data.len()
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for class in 0..data.class_count() {
            let mut members: Vec<usize> = (0..data.len())
                .filter(|&i| data.label(i) == class)
                .collect();
            shuffle(&mut members, &mut rng);
            for (pos, idx) in members.into_iter().enumerate() {
                folds[pos % k].push(idx);
            }
        }
        KFold { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// The `(train, validation)` index sets for fold `fold`.
    pub fn split(&self, fold: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(fold < self.folds.len(), "fold {fold} out of range");
        let validation = self.folds[fold].clone();
        let train: Vec<usize> = self
            .folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != fold)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        (train, validation)
    }
}

/// Mean validation accuracy of a parameter setting under stratified
/// k-fold cross-validation.
pub fn cross_val_accuracy(data: &Dataset, params: &RandomForestParams, k: usize, seed: u64) -> f64 {
    let kfold = KFold::new(data, k, seed);
    let mut total = 0.0;
    for fold in 0..k {
        let (train_idx, val_idx) = kfold.split(fold);
        let train = data.select(&train_idx);
        let model = RandomForest::fit(&train, params, seed ^ fold as u64);
        let correct = val_idx
            .iter()
            .filter(|&&i| model.predict(data.row(i)) == data.label(i))
            .count();
        total += correct as f64 / val_idx.len() as f64;
    }
    total / k as f64
}

/// The outcome of a grid search.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// The winning parameter setting.
    pub best_params: RandomForestParams,
    /// Its mean cross-validated accuracy.
    pub best_score: f64,
    /// `(params, score)` for every candidate evaluated.
    pub all_scores: Vec<(RandomForestParams, f64)>,
}

/// Grid search over random-forest parameter candidates using stratified
/// k-fold cross-validation (the paper's tuning protocol).
#[derive(Debug, Clone)]
pub struct GridSearch {
    candidates: Vec<RandomForestParams>,
    folds: usize,
}

impl GridSearch {
    /// Creates a search over explicit candidates with `folds`-fold CV.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or `folds < 2`.
    pub fn new(candidates: Vec<RandomForestParams>, folds: usize) -> GridSearch {
        assert!(!candidates.is_empty(), "grid search needs candidates");
        assert!(folds >= 2, "grid search needs >= 2 folds");
        GridSearch { candidates, folds }
    }

    /// Runs the search, returning the best setting by mean CV accuracy
    /// (first candidate wins ties, so candidate order is a tiebreak
    /// preference).
    pub fn run(&self, data: &Dataset, seed: u64) -> GridSearchResult {
        let mut all_scores = Vec::with_capacity(self.candidates.len());
        let mut best: Option<(RandomForestParams, f64)> = None;
        for params in &self.candidates {
            let score = cross_val_accuracy(data, params, self.folds, seed);
            all_scores.push((*params, score));
            match best {
                Some((_, best_score)) if best_score >= score => {}
                _ => best = Some((*params, score)),
            }
        }
        let (best_params, best_score) = best.expect("non-empty candidates");
        GridSearchResult {
            best_params,
            best_score,
            all_scores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_forest::MaxFeatures;
    use crate::tree::TreeParams;

    fn dataset(n: usize, positive_fraction: f64) -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "y".into()], 2);
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..n {
            let positive = rng.gen::<f64>() < positive_fraction;
            let x: f64 = if positive {
                rng.gen::<f64>() + 0.4
            } else {
                rng.gen::<f64>() - 0.4
            };
            d.push(vec![x, rng.gen()], positive as usize);
        }
        d
    }

    #[test]
    fn split_preserves_class_balance() {
        let d = dataset(1000, 0.7);
        let (train, test) = train_test_split(&d, 0.2, 9);
        assert_eq!(train.len() + test.len(), 1000);
        assert!((test.len() as f64 - 200.0).abs() <= 1.0);
        assert!((train.class_fraction(1) - 0.7).abs() < 0.03);
        assert!((test.class_fraction(1) - 0.7).abs() < 0.03);
    }

    #[test]
    fn split_is_disjoint_and_deterministic() {
        let d = dataset(200, 0.5);
        let (tr1, te1) = train_test_split(&d, 0.25, 4);
        let (tr2, te2) = train_test_split(&d, 0.25, 4);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
    }

    #[test]
    fn kfold_partitions_everything_once() {
        let d = dataset(103, 0.6);
        let kf = KFold::new(&d, 5, 3);
        let mut seen = vec![false; d.len()];
        for fold in 0..kf.k() {
            let (train, val) = kf.split(fold);
            assert_eq!(train.len() + val.len(), d.len());
            for &i in &val {
                assert!(!seen[i], "index {i} in two validation folds");
                seen[i] = true;
            }
            // Train and validation are disjoint.
            for &i in &val {
                assert!(!train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cross_val_scores_learnable_data_high() {
        let d = dataset(400, 0.5);
        let params = RandomForestParams {
            n_trees: 20,
            ..RandomForestParams::default()
        };
        let acc = cross_val_accuracy(&d, &params, 4, 11);
        assert!(acc > 0.85, "cv accuracy {acc}");
    }

    #[test]
    fn grid_search_picks_reasonable_candidate() {
        let d = dataset(300, 0.5);
        let stump = RandomForestParams {
            n_trees: 2,
            tree: TreeParams {
                max_depth: 1,
                ..TreeParams::default()
            },
            max_features: MaxFeatures::Count(1),
            bootstrap: true,
        };
        let strong = RandomForestParams {
            n_trees: 25,
            tree: TreeParams::default(),
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
        };
        let result = GridSearch::new(vec![stump, strong], 3).run(&d, 13);
        assert_eq!(result.all_scores.len(), 2);
        assert_eq!(result.best_params.n_trees, 25);
        assert!(result.best_score >= result.all_scores[0].1);
    }
}
