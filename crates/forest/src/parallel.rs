//! Deterministic parallelism primitives for model training and
//! selection.
//!
//! Every parallel stage in this crate is a list of independent *units*
//! (trees, folds, grid candidates × folds, repetitions). Each unit's
//! randomness is derived from `(base seed, unit index)` via
//! [`derive_seed`], and [`run_units`] executes the units over a work
//! queue whose results are slotted by unit index — so the outcome is a
//! pure function of the inputs, independent of thread count and
//! scheduling.
//!
//! Nested stages (an experiment repetition running a grid search
//! running forest fits) share one global thread budget: a stage
//! acquires extra workers from the budget and releases them when done,
//! so nesting degrades gracefully to sequential execution instead of
//! oversubscribing the machine.

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The splitmix64 finalizer (same constants as `telemetry::faults`):
/// a bijective avalanche mix over `u64`.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Derives the seed for work unit `index` under `base`.
///
/// Two mixing rounds keep structured bases and small indices from
/// producing correlated streams (the old `seed ^ fold` scheme collided
/// with the k-fold shuffle seed at fold 0).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    splitmix64(splitmix64(base).wrapping_add(index))
}

/// Explicit thread-count override: 0 = unset (use the default).
static THREAD_LIMIT: AtomicUsize = AtomicUsize::new(0);
/// Extra worker threads currently borrowed from the budget.
static THREADS_IN_USE: AtomicIsize = AtomicIsize::new(0);

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("SURVDB_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Caps the total number of threads (the caller's thread plus borrowed
/// workers) used by [`run_units`]. `None` restores the default
/// (`SURVDB_THREADS` if set, else the machine's available parallelism).
///
/// Intended for tests that assert thread-count invariance; call it
/// while no parallel work is in flight.
pub fn set_thread_limit(limit: Option<usize>) {
    THREAD_LIMIT.store(limit.map_or(0, |n| n.max(1)), Ordering::SeqCst);
}

/// The current total thread limit.
pub fn thread_limit() -> usize {
    match THREAD_LIMIT.load(Ordering::SeqCst) {
        0 => default_threads(),
        n => n,
    }
}

/// Borrows up to `want` extra worker threads from the global budget.
fn acquire_workers(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let budget = thread_limit().saturating_sub(1) as isize;
    loop {
        let used = THREADS_IN_USE.load(Ordering::SeqCst);
        let available = (budget - used).max(0) as usize;
        let take = want.min(available);
        if take == 0 {
            return 0;
        }
        if THREADS_IN_USE
            .compare_exchange(
                used,
                used + take as isize,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            return take;
        }
    }
}

fn release_workers(count: usize) {
    if count > 0 {
        THREADS_IN_USE.fetch_sub(count as isize, Ordering::SeqCst);
    }
}

/// Runs `n` independent work units, returning their results in unit
/// order.
///
/// Units are dispatched through an atomic work queue shared by the
/// calling thread and any workers borrowed from the global thread
/// budget. Because `unit(i)` must depend only on `i` (derive its
/// randomness via [`derive_seed`]) and results are slotted by index,
/// the returned vector is identical for every thread count and
/// schedule.
pub fn run_units<T, F>(n: usize, unit: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_units_scratch(n, || (), |(), i| unit(i))
}

/// [`run_units`] with reusable per-worker scratch: `init()` runs once
/// per participating thread (the caller's and each borrowed worker's),
/// and `unit(&mut scratch, i)` reuses that scratch for every unit the
/// thread drains. Hot loops can therefore hoist their allocations
/// (tile buffers, cursors, accumulators) out of the per-unit path
/// entirely.
///
/// The determinism contract is unchanged: `unit`'s *result* must
/// depend only on `i` — scratch is working memory, not state carried
/// between units.
pub fn run_units_scratch<T, S, I, F>(n: usize, init: I, unit: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if n <= 1 {
        let mut scratch = init();
        return (0..n).map(|i| unit(&mut scratch, i)).collect();
    }
    let workers = acquire_workers(n - 1);
    if workers == 0 {
        let mut scratch = init();
        return (0..n).map(|i| unit(&mut scratch, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let drain = || {
        let mut scratch = init();
        let mut local: Vec<(usize, T)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            local.push((i, unit(&mut scratch, i)));
        }
        local
    };

    // Workers adopt the submitting thread's span path so obs spans
    // opened inside units aggregate under the same path regardless of
    // which thread ran them (the caller's own drain already has it).
    let parent_path = obs::SpanPath::capture();
    let drain_ref = &drain;
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| scope.spawn(|| parent_path.scoped(drain_ref)))
            .collect();
        for (i, value) in drain() {
            slots[i] = Some(value);
        }
        for handle in handles {
            for (i, value) in handle.join().expect("worker thread panicked") {
                slots[i] = Some(value);
            }
        }
    });
    release_workers(workers);
    slots
        .into_iter()
        .map(|s| s.expect("every unit ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference() {
        // Reference values for the standard splitmix64 finalizer.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(1), 0x910a2dec89025cc1);
    }

    #[test]
    fn derive_seed_avoids_base_collision() {
        let base = 2018;
        // No derived seed equals the base (the old `seed ^ 0` did).
        for i in 0..64 {
            assert_ne!(derive_seed(base, i), base);
        }
        // Distinct indices give distinct seeds.
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| derive_seed(base, i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn run_units_preserves_order() {
        let out = run_units(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_units_is_thread_count_invariant() {
        let compute = || {
            run_units(37, |i| {
                // A unit whose value depends only on its index.
                let mut acc = derive_seed(7, i as u64);
                for _ in 0..100 {
                    acc = splitmix64(acc);
                }
                acc
            })
        };
        set_thread_limit(Some(1));
        let sequential = compute();
        set_thread_limit(Some(8));
        let parallel = compute();
        set_thread_limit(None);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn empty_and_single_unit() {
        assert_eq!(run_units(0, |i| i), Vec::<usize>::new());
        assert_eq!(run_units(1, |i| i + 5), vec![5]);
    }

    #[test]
    fn run_units_scratch_reuses_buffers_without_leaking_state() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let compute = || {
            run_units_scratch(
                50,
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    Vec::<u64>::with_capacity(4)
                },
                |scratch, i| {
                    // Dirty scratch from a previous unit must not
                    // change the result: clear-and-use discipline.
                    scratch.push(derive_seed(3, i as u64));
                    scratch.pop().expect("just pushed")
                },
            )
        };
        let out = compute();
        assert_eq!(
            out,
            (0..50)
                .map(|i| derive_seed(3, i as u64))
                .collect::<Vec<_>>()
        );
        // One scratch per participating thread, not per unit.
        assert!(inits.load(Ordering::SeqCst) <= thread_limit().max(50));

        set_thread_limit(Some(1));
        let serial = compute();
        set_thread_limit(Some(8));
        let wide = compute();
        set_thread_limit(None);
        assert_eq!(serial, wide);
        assert_eq!(serial, out);
    }
}
