//! Bootstrap-aggregated random forests.

use crate::data::Dataset;
use crate::tree::{DecisionTree, TreeParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How many features each split considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxFeatures {
    /// All features (bagging without feature randomness).
    All,
    /// `ceil(sqrt(feature_count))` — the classification default.
    Sqrt,
    /// `max(1, floor(log2(feature_count)))`.
    Log2,
    /// An explicit count (clamped to the feature count).
    Count(usize),
}

impl MaxFeatures {
    /// Resolves to a concrete feature count for a dataset with
    /// `feature_count` features.
    pub fn resolve(self, feature_count: usize) -> usize {
        let raw = match self {
            MaxFeatures::All => feature_count,
            MaxFeatures::Sqrt => (feature_count as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (feature_count as f64).log2().floor() as usize,
            MaxFeatures::Count(n) => n,
        };
        raw.clamp(1, feature_count)
    }
}

/// Random-forest hyper-parameters — the grid-search surface of the
/// paper's §5.1 ("parameter tuning for each model by doing grid search
/// using 5-fold cross-validation").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomForestParams {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Per-tree growth limits.
    pub tree: TreeParams,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// Whether each tree trains on a bootstrap resample (vs the full
    /// training set).
    pub bootstrap: bool,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            n_trees: 60,
            tree: TreeParams::default(),
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
        }
    }
}

/// A fitted random forest.
///
/// Prediction probabilities are the average of per-tree leaf class
/// fractions (paper §5.3: "The class probabilities in a random forest
/// are the result of averaging over the class probabilities of the
/// trees in the forest").
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    feature_names: Vec<String>,
    class_count: usize,
    oob_accuracy: Option<f64>,
}

impl RandomForest {
    /// Trains a forest. Deterministic for a given `(data, params, seed)`
    /// triple regardless of thread count: each tree's RNG is seeded from
    /// `seed` and the tree index.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `params.n_trees` is zero.
    pub fn fit(data: &Dataset, params: &RandomForestParams, seed: u64) -> RandomForest {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(params.n_trees > 0, "need at least one tree");

        let n = data.len();
        let max_features = params.max_features.resolve(data.feature_count());

        // Train trees in parallel batches; results keep tree order.
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(params.n_trees);
        let mut trees: Vec<Option<DecisionTree>> = vec![None; params.n_trees];
        let mut oob_votes: Vec<Vec<usize>> = vec![vec![0; data.class_count()]; n];

        let chunks: Vec<Vec<usize>> = (0..threads)
            .map(|t| (t..params.n_trees).step_by(threads).collect())
            .collect();

        let results: Vec<Vec<(usize, DecisionTree, Vec<usize>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|&tree_idx| {
                                let mut rng = SmallRng::seed_from_u64(
                                    seed ^ (tree_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                                );
                                let indices: Vec<usize> = if params.bootstrap {
                                    (0..n).map(|_| rng.gen_range(0..n)).collect()
                                } else {
                                    (0..n).collect()
                                };
                                let tree = DecisionTree::fit(
                                    data,
                                    &indices,
                                    &params.tree,
                                    max_features,
                                    &mut rng,
                                );
                                (tree_idx, tree, indices)
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tree-training thread panicked"))
                .collect()
        });

        // Collect trees and out-of-bag votes.
        let mut in_bag = vec![false; n];
        for batch in results {
            for (tree_idx, tree, indices) in batch {
                if params.bootstrap {
                    in_bag.iter_mut().for_each(|b| *b = false);
                    for &i in &indices {
                        in_bag[i] = true;
                    }
                    for (i, bagged) in in_bag.iter().enumerate() {
                        if !bagged {
                            let pred = tree.predict(data.row(i));
                            oob_votes[i][pred] += 1;
                        }
                    }
                }
                trees[tree_idx] = Some(tree);
            }
        }

        let oob_accuracy = if params.bootstrap {
            let mut correct = 0usize;
            let mut voted = 0usize;
            for (i, votes) in oob_votes.iter().enumerate() {
                let total: usize = votes.iter().sum();
                if total == 0 {
                    continue;
                }
                voted += 1;
                let pred = votes
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &v)| v)
                    .map(|(c, _)| c)
                    .expect("non-empty votes");
                if pred == data.label(i) {
                    correct += 1;
                }
            }
            if voted > 0 {
                Some(correct as f64 / voted as f64)
            } else {
                None
            }
        } else {
            None
        };

        RandomForest {
            trees: trees
                .into_iter()
                .map(|t| t.expect("every tree trained"))
                .collect(),
            feature_names: data.feature_names().to_vec(),
            class_count: data.class_count(),
            oob_accuracy,
        }
    }

    /// Average class probabilities over all trees.
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0_f64; self.class_count];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict_proba(features)) {
                *a += p;
            }
        }
        let nt = self.trees.len() as f64;
        acc.iter_mut().for_each(|a| *a /= nt);
        acc
    }

    /// Predicted class: argmax of [`RandomForest::predict_proba`]
    /// (probability > 0.5 in the binary case, matching the paper).
    pub fn predict(&self, features: &[f64]) -> usize {
        self.predict_proba(features)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .expect("at least two classes")
    }

    /// Probability of the positive class (class 1) — binary
    /// convenience used throughout the prediction pipeline.
    pub fn predict_positive_proba(&self, features: &[f64]) -> f64 {
        self.predict_proba(features)[1]
    }

    /// Normalized gini feature importances (sum to 1 when any split
    /// occurred).
    pub fn feature_importances(&self) -> Vec<f64> {
        let nf = self.feature_names.len();
        let mut acc = vec![0.0_f64; nf];
        for tree in &self.trees {
            for (a, v) in acc.iter_mut().zip(tree.importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            acc.iter_mut().for_each(|a| *a /= total);
        }
        acc
    }

    /// `(name, importance)` pairs sorted descending — the §5.4 ranking.
    pub fn ranked_importances(&self) -> Vec<(String, f64)> {
        let mut pairs: Vec<(String, f64)> = self
            .feature_names
            .iter()
            .cloned()
            .zip(self.feature_importances())
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importances"));
        pairs
    }

    /// Out-of-bag accuracy estimate, when bootstrap was used and every
    /// vote pool was non-empty.
    pub fn oob_accuracy(&self) -> Option<f64> {
        self.oob_accuracy
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Feature names the model was trained with.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_dataset(n: usize) -> Dataset {
        // Class 1 iff x0 + x1 > 1, with two noise features.
        let mut d = Dataset::new(vec!["x0".into(), "x1".into(), "n0".into(), "n1".into()], 2);
        let mut rng = SmallRng::seed_from_u64(1234);
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            let n0: f64 = rng.gen();
            let n1: f64 = rng.gen();
            d.push(vec![x0, x1, n0, n1], ((x0 + x1) > 1.0) as usize);
        }
        d
    }

    #[test]
    fn learns_linear_boundary() {
        let d = noisy_dataset(800);
        let model = RandomForest::fit(&d, &RandomForestParams::default(), 7);
        let mut correct = 0;
        for i in 0..d.len() {
            if model.predict(d.row(i)) == d.label(i) {
                correct += 1;
            }
        }
        let train_acc = correct as f64 / d.len() as f64;
        assert!(train_acc > 0.95, "train accuracy {train_acc}");
        // OOB is a fair estimate; the boundary is learnable, so > 0.85.
        let oob = model.oob_accuracy().expect("bootstrap on");
        assert!(oob > 0.85, "oob {oob}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = noisy_dataset(300);
        let model = RandomForest::fit(&d, &RandomForestParams::default(), 3);
        for i in (0..d.len()).step_by(37) {
            let p = model.predict_proba(d.row(i));
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn importances_favor_informative_features() {
        let d = noisy_dataset(1000);
        let model = RandomForest::fit(&d, &RandomForestParams::default(), 11);
        let imp = model.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // x0 and x1 carry the signal; noise features should rank lower.
        assert!(imp[0] > imp[2] && imp[0] > imp[3], "{imp:?}");
        assert!(imp[1] > imp[2] && imp[1] > imp[3], "{imp:?}");
        let ranked = model.ranked_importances();
        assert!(ranked[0].0 == "x0" || ranked[0].0 == "x1");
    }

    #[test]
    fn deterministic_across_runs() {
        let d = noisy_dataset(200);
        let params = RandomForestParams {
            n_trees: 16,
            ..RandomForestParams::default()
        };
        let m1 = RandomForest::fit(&d, &params, 99);
        let m2 = RandomForest::fit(&d, &params, 99);
        for i in 0..d.len() {
            assert_eq!(m1.predict_proba(d.row(i)), m2.predict_proba(d.row(i)));
        }
        assert_eq!(m1.oob_accuracy(), m2.oob_accuracy());
    }

    #[test]
    fn different_seeds_differ() {
        let d = noisy_dataset(200);
        let m1 = RandomForest::fit(&d, &RandomForestParams::default(), 1);
        let m2 = RandomForest::fit(&d, &RandomForestParams::default(), 2);
        let differs =
            (0..d.len()).any(|i| m1.predict_proba(d.row(i)) != m2.predict_proba(d.row(i)));
        assert!(differs);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(10), 4);
        assert_eq!(MaxFeatures::Sqrt.resolve(64), 8);
        assert_eq!(MaxFeatures::Log2.resolve(64), 6);
        assert_eq!(MaxFeatures::Count(3).resolve(10), 3);
        assert_eq!(MaxFeatures::Count(99).resolve(10), 10);
        assert_eq!(MaxFeatures::Log2.resolve(1), 1);
    }

    #[test]
    fn no_bootstrap_mode() {
        let d = noisy_dataset(150);
        let params = RandomForestParams {
            bootstrap: false,
            n_trees: 8,
            ..RandomForestParams::default()
        };
        let model = RandomForest::fit(&d, &params, 5);
        assert!(model.oob_accuracy().is_none());
        assert_eq!(model.tree_count(), 8);
    }
}
