//! Bootstrap-aggregated random forests.

use crate::data::{Dataset, DatasetView};
use crate::parallel::{derive_seed, run_units};
use crate::tree::{DecisionTree, SplitPrecompute, TreeParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How many features each split considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxFeatures {
    /// All features (bagging without feature randomness).
    All,
    /// `ceil(sqrt(feature_count))` — the classification default.
    Sqrt,
    /// `max(1, floor(log2(feature_count)))`.
    Log2,
    /// An explicit count (clamped to the feature count).
    Count(usize),
}

impl MaxFeatures {
    /// Resolves to a concrete feature count for a dataset with
    /// `feature_count` features.
    pub fn resolve(self, feature_count: usize) -> usize {
        let raw = match self {
            MaxFeatures::All => feature_count,
            MaxFeatures::Sqrt => (feature_count as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (feature_count as f64).log2().floor() as usize,
            MaxFeatures::Count(n) => n,
        };
        raw.clamp(1, feature_count)
    }
}

/// Random-forest hyper-parameters — the grid-search surface of the
/// paper's §5.1 ("parameter tuning for each model by doing grid search
/// using 5-fold cross-validation").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomForestParams {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Per-tree growth limits.
    pub tree: TreeParams,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// Whether each tree trains on a bootstrap resample (vs the full
    /// training set).
    pub bootstrap: bool,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            n_trees: 60,
            tree: TreeParams::default(),
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
        }
    }
}

/// A fitted random forest.
///
/// Prediction probabilities are the average of per-tree leaf class
/// fractions (paper §5.3: "The class probabilities in a random forest
/// are the result of averaging over the class probabilities of the
/// trees in the forest").
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    feature_names: Vec<String>,
    class_count: usize,
    oob_accuracy: Option<f64>,
}

impl RandomForest {
    /// Trains a forest on the full dataset. Deterministic for a given
    /// `(data, params, seed)` triple regardless of thread count: tree
    /// `t`'s RNG is seeded with `derive_seed(seed, t)` and trees are
    /// dispatched as independent work units.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `params.n_trees` is zero.
    pub fn fit(data: &Dataset, params: &RandomForestParams, seed: u64) -> RandomForest {
        let rows: Vec<usize> = (0..data.len()).collect();
        Self::fit_on(data, &rows, params, seed)
    }

    /// Trains a forest on a borrowed view — the zero-copy path used by
    /// folds, splits, and the degradation sweep.
    pub fn fit_view(
        view: &DatasetView<'_>,
        params: &RandomForestParams,
        seed: u64,
    ) -> RandomForest {
        Self::fit_on(view.dataset(), view.indices(), params, seed)
    }

    /// Trains a forest on the rows of `data` selected by `rows`
    /// (duplicates allowed), without copying any feature data.
    ///
    /// Fitting on `rows` is numerically identical to fitting on
    /// `data.select(rows)`: trees are a function of the per-slot row
    /// contents, which match in both formulations.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or `params.n_trees` is zero.
    pub fn fit_on(
        data: &Dataset,
        rows: &[usize],
        params: &RandomForestParams,
        seed: u64,
    ) -> RandomForest {
        // Rank-code every feature once; all trees share the precompute.
        let pre = SplitPrecompute::build(data, rows);
        Self::fit_shared(data, &pre, rows, params, seed, true)
    }

    /// Trains a forest reusing a [`SplitPrecompute`] built over (a
    /// superset of) `rows` — the path cross-validation and grid search
    /// use to rank-code the feature columns once for every
    /// (candidate × fold) fit.
    ///
    /// `compute_oob` controls whether out-of-bag votes are tallied.
    /// Model selection scores candidates on held-out validation rows
    /// and never reads the OOB estimate, so fold fits pass `false` and
    /// skip the tally entirely; the trees themselves are unaffected
    /// (recording bags consumes no randomness).
    pub(crate) fn fit_shared(
        data: &Dataset,
        pre: &SplitPrecompute,
        rows: &[usize],
        params: &RandomForestParams,
        seed: u64,
        compute_oob: bool,
    ) -> RandomForest {
        assert!(!rows.is_empty(), "cannot train on an empty dataset");
        assert!(params.n_trees > 0, "need at least one tree");

        let _span = obs::span!("forest_fit");
        let n = rows.len();
        let max_features = params.max_features.resolve(data.feature_count());

        // One work unit per tree. Each unit returns the tree plus the
        // in-bag flags (by view position) its bootstrap drew.
        let results: Vec<(DecisionTree, Option<Vec<bool>>)> = run_units(params.n_trees, |t| {
            let mut rng = SmallRng::seed_from_u64(derive_seed(seed, t as u64));
            let (indices, in_bag) = if params.bootstrap {
                let mut in_bag = if compute_oob {
                    vec![false; n]
                } else {
                    Vec::new()
                };
                let indices: Vec<usize> = (0..n)
                    .map(|_| {
                        let p = rng.gen_range(0..n);
                        if compute_oob {
                            in_bag[p] = true;
                        }
                        rows[p]
                    })
                    .collect();
                (indices, compute_oob.then_some(in_bag))
            } else {
                (rows.to_vec(), None)
            };
            let tree = DecisionTree::fit_presorted(
                data,
                pre,
                &indices,
                &params.tree,
                max_features,
                &mut rng,
            );
            (tree, in_bag)
        });

        // Out-of-bag votes, tallied row-major so each row is gathered
        // once and every tree walks the same contiguous buffer (vote
        // counts are order-independent, so this matches a per-tree
        // merge exactly).
        let oob_accuracy = if params.bootstrap && compute_oob {
            let mut row = Vec::with_capacity(data.feature_count());
            let mut votes = vec![0usize; data.class_count()];
            let mut correct = 0usize;
            let mut voted = 0usize;
            for p in 0..n {
                votes.iter_mut().for_each(|v| *v = 0);
                let mut gathered = false;
                for (tree, in_bag) in &results {
                    let in_bag = in_bag.as_ref().expect("bootstrap trees record bags");
                    if !in_bag[p] {
                        if !gathered {
                            data.gather_row_into(rows[p], &mut row);
                            gathered = true;
                        }
                        votes[tree.predict(&row)] += 1;
                    }
                }
                let total: usize = votes.iter().sum();
                if total == 0 {
                    continue;
                }
                voted += 1;
                let pred = votes
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &v)| v)
                    .map(|(c, _)| c)
                    .expect("non-empty votes");
                if pred == data.label(rows[p]) {
                    correct += 1;
                }
            }
            obs::count("forest.oob_rows_tallied", voted as u64);
            if voted > 0 {
                Some(correct as f64 / voted as f64)
            } else {
                None
            }
        } else {
            None
        };

        RandomForest {
            trees: results.into_iter().map(|(tree, _)| tree).collect(),
            feature_names: data.feature_names().to_vec(),
            class_count: data.class_count(),
            oob_accuracy,
        }
    }

    /// Average class probabilities over all trees.
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        self.average_probas(|tree| tree.predict_proba(features))
    }

    /// Average class probabilities for row `i` of a columnar dataset.
    /// The row is gathered once into a contiguous buffer shared by all
    /// trees, so each tree walk reads warm cache lines instead of
    /// hopping between columns.
    pub fn predict_proba_row(&self, data: &Dataset, i: usize) -> Vec<f64> {
        let mut row = Vec::with_capacity(data.feature_count());
        data.gather_row_into(i, &mut row);
        self.predict_proba(&row)
    }

    fn average_probas<'a, F>(&'a self, per_tree: F) -> Vec<f64>
    where
        F: Fn(&'a DecisionTree) -> &'a [f64],
    {
        let mut acc = vec![0.0_f64; self.class_count];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(per_tree(tree)) {
                *a += p;
            }
        }
        let nt = self.trees.len() as f64;
        acc.iter_mut().for_each(|a| *a /= nt);
        acc
    }

    /// Predicted class: argmax of [`RandomForest::predict_proba`]
    /// (probability > 0.5 in the binary case, matching the paper).
    pub fn predict(&self, features: &[f64]) -> usize {
        Self::argmax(&self.predict_proba(features))
    }

    /// Predicted class for row `i` of a columnar dataset.
    pub fn predict_row(&self, data: &Dataset, i: usize) -> usize {
        Self::argmax(&self.predict_proba_row(data, i))
    }

    fn argmax(probs: &[f64]) -> usize {
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .expect("at least two classes")
    }

    /// Probability of the positive class (class 1) — binary
    /// convenience used throughout the prediction pipeline.
    pub fn predict_positive_proba(&self, features: &[f64]) -> f64 {
        self.predict_proba(features)[1]
    }

    /// Probability of the positive class for row `i` of a columnar
    /// dataset.
    pub fn predict_positive_proba_row(&self, data: &Dataset, i: usize) -> f64 {
        self.predict_proba_row(data, i)[1]
    }

    /// Normalized gini feature importances (sum to 1 when any split
    /// occurred).
    pub fn feature_importances(&self) -> Vec<f64> {
        let nf = self.feature_names.len();
        let mut acc = vec![0.0_f64; nf];
        for tree in &self.trees {
            for (a, v) in acc.iter_mut().zip(tree.importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            acc.iter_mut().for_each(|a| *a /= total);
        }
        acc
    }

    /// `(name, importance)` pairs sorted descending — the §5.4 ranking.
    pub fn ranked_importances(&self) -> Vec<(String, f64)> {
        let mut pairs: Vec<(String, f64)> = self
            .feature_names
            .iter()
            .cloned()
            .zip(self.feature_importances())
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importances"));
        pairs
    }

    /// Out-of-bag accuracy estimate, when bootstrap was used and every
    /// vote pool was non-empty.
    pub fn oob_accuracy(&self) -> Option<f64> {
        self.oob_accuracy
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Feature names the model was trained with.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of classes in the leaf distributions.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// The fitted trees, in training order.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Reassembles a forest from deserialized parts, validating that
    /// every tree matches the feature schema and class count — the
    /// inverse of reading [`RandomForest::trees`] and
    /// [`RandomForest::feature_names`] out of a fitted model, used by
    /// the `survdb-serve` on-disk format.
    pub fn from_parts(
        trees: Vec<DecisionTree>,
        feature_names: Vec<String>,
        class_count: usize,
        oob_accuracy: Option<f64>,
    ) -> Result<RandomForest, String> {
        if trees.is_empty() {
            return Err("forest needs at least one tree".to_string());
        }
        if feature_names.is_empty() {
            return Err("forest needs at least one feature".to_string());
        }
        if class_count < 2 {
            return Err(format!("class count must be >= 2, got {class_count}"));
        }
        for (t, tree) in trees.iter().enumerate() {
            if tree.feature_count() != feature_names.len() {
                return Err(format!(
                    "tree {t} tests {} features, schema has {}",
                    tree.feature_count(),
                    feature_names.len()
                ));
            }
            if tree.class_count() != class_count {
                return Err(format!(
                    "tree {t} has {} classes, forest has {class_count}",
                    tree.class_count()
                ));
            }
        }
        if let Some(oob) = oob_accuracy {
            if !oob.is_finite() || !(0.0..=1.0).contains(&oob) {
                return Err(format!("oob accuracy {oob} outside [0, 1]"));
            }
        }
        Ok(RandomForest {
            trees,
            feature_names,
            class_count,
            oob_accuracy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_dataset(n: usize) -> Dataset {
        // Class 1 iff x0 + x1 > 1, with two noise features.
        let mut d = Dataset::new(vec!["x0".into(), "x1".into(), "n0".into(), "n1".into()], 2);
        let mut rng = SmallRng::seed_from_u64(1234);
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            let n0: f64 = rng.gen();
            let n1: f64 = rng.gen();
            d.push(vec![x0, x1, n0, n1], ((x0 + x1) > 1.0) as usize);
        }
        d
    }

    #[test]
    fn learns_linear_boundary() {
        let d = noisy_dataset(800);
        let model = RandomForest::fit(&d, &RandomForestParams::default(), 7);
        let mut correct = 0;
        for i in 0..d.len() {
            if model.predict_row(&d, i) == d.label(i) {
                correct += 1;
            }
        }
        let train_acc = correct as f64 / d.len() as f64;
        assert!(train_acc > 0.95, "train accuracy {train_acc}");
        // OOB is a fair estimate; the boundary is learnable, so > 0.85.
        let oob = model.oob_accuracy().expect("bootstrap on");
        assert!(oob > 0.85, "oob {oob}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = noisy_dataset(300);
        let model = RandomForest::fit(&d, &RandomForestParams::default(), 3);
        for i in (0..d.len()).step_by(37) {
            let p = model.predict_proba(&d.row(i));
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert_eq!(model.predict_proba_row(&d, i), p);
        }
    }

    #[test]
    fn importances_favor_informative_features() {
        let d = noisy_dataset(1000);
        let model = RandomForest::fit(&d, &RandomForestParams::default(), 11);
        let imp = model.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // x0 and x1 carry the signal; noise features should rank lower.
        assert!(imp[0] > imp[2] && imp[0] > imp[3], "{imp:?}");
        assert!(imp[1] > imp[2] && imp[1] > imp[3], "{imp:?}");
        let ranked = model.ranked_importances();
        assert!(ranked[0].0 == "x0" || ranked[0].0 == "x1");
    }

    #[test]
    fn deterministic_across_runs() {
        let d = noisy_dataset(200);
        let params = RandomForestParams {
            n_trees: 16,
            ..RandomForestParams::default()
        };
        let m1 = RandomForest::fit(&d, &params, 99);
        let m2 = RandomForest::fit(&d, &params, 99);
        for i in 0..d.len() {
            assert_eq!(m1.predict_proba(&d.row(i)), m2.predict_proba(&d.row(i)));
        }
        assert_eq!(m1.oob_accuracy(), m2.oob_accuracy());
    }

    #[test]
    fn different_seeds_differ() {
        let d = noisy_dataset(200);
        let m1 = RandomForest::fit(&d, &RandomForestParams::default(), 1);
        let m2 = RandomForest::fit(&d, &RandomForestParams::default(), 2);
        let differs =
            (0..d.len()).any(|i| m1.predict_proba(&d.row(i)) != m2.predict_proba(&d.row(i)));
        assert!(differs);
    }

    #[test]
    fn view_fit_matches_materialized_fit() {
        let d = noisy_dataset(240);
        // An arbitrary subset with a duplicate, as folds/bootstraps see.
        let indices: Vec<usize> = (0..200).map(|i| (i * 7) % 240).collect();
        let params = RandomForestParams {
            n_trees: 12,
            ..RandomForestParams::default()
        };
        let from_view = RandomForest::fit_view(&d.view(&indices), &params, 42);
        let materialized = d.select(&indices);
        let from_copy = RandomForest::fit(&materialized, &params, 42);
        assert_eq!(from_view.oob_accuracy(), from_copy.oob_accuracy());
        for i in 0..d.len() {
            assert_eq!(
                from_view.predict_proba(&d.row(i)),
                from_copy.predict_proba(&d.row(i))
            );
        }
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(10), 4);
        assert_eq!(MaxFeatures::Sqrt.resolve(64), 8);
        assert_eq!(MaxFeatures::Log2.resolve(64), 6);
        assert_eq!(MaxFeatures::Count(3).resolve(10), 3);
        assert_eq!(MaxFeatures::Count(99).resolve(10), 10);
        assert_eq!(MaxFeatures::Log2.resolve(1), 1);
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let d = noisy_dataset(200);
        let params = RandomForestParams {
            n_trees: 8,
            ..RandomForestParams::default()
        };
        let model = RandomForest::fit(&d, &params, 13);
        let rebuilt = RandomForest::from_parts(
            model.trees().to_vec(),
            model.feature_names().to_vec(),
            2,
            model.oob_accuracy(),
        )
        .expect("valid parts");
        for i in 0..d.len() {
            assert_eq!(
                rebuilt.predict_proba_row(&d, i),
                model.predict_proba_row(&d, i)
            );
        }
        assert_eq!(rebuilt.oob_accuracy(), model.oob_accuracy());

        // No trees.
        assert!(RandomForest::from_parts(vec![], vec!["x".into()], 2, None).is_err());
        // Schema width mismatch.
        assert!(
            RandomForest::from_parts(model.trees().to_vec(), vec!["x0".into()], 2, None).is_err()
        );
        // Class count mismatch.
        assert!(RandomForest::from_parts(
            model.trees().to_vec(),
            model.feature_names().to_vec(),
            3,
            None
        )
        .is_err());
        // Out-of-range OOB estimate.
        assert!(RandomForest::from_parts(
            model.trees().to_vec(),
            model.feature_names().to_vec(),
            2,
            Some(1.5)
        )
        .is_err());
    }

    #[test]
    fn no_bootstrap_mode() {
        let d = noisy_dataset(150);
        let params = RandomForestParams {
            bootstrap: false,
            n_trees: 8,
            ..RandomForestParams::default()
        };
        let model = RandomForest::fit(&d, &params, 5);
        assert!(model.oob_accuracy().is_none());
        assert_eq!(model.tree_count(), 8);
    }
}
