//! CART decision trees with gini impurity.
//!
//! Split search runs over a [`SplitPrecompute`]: every feature's
//! values are sorted **once per forest** and replaced by dense rank
//! codes, so a node's split scan is a counting pass over its rows plus
//! a sweep of the occupied ranks in ascending order — no per-node
//! re-sort, no per-node feature copies. The boundary sequence, count
//! arithmetic, threshold placement, and rng consumption are identical
//! to the classic per-node-sort formulation, so fitted trees are
//! bit-for-bit the same.

use crate::data::Dataset;
use rand::Rng;

/// Hyper-parameters controlling tree growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParams {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum samples a node must hold to be considered for splitting.
    pub min_samples_split: usize,
    /// Minimum samples each child of a split must receive.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 24,
            min_samples_split: 2,
            min_samples_leaf: 1,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Class probabilities (leaf class fractions) — the per-tree
        /// confidence estimates the paper's §5.3 partition relies on.
        probabilities: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART classification tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    feature_count: usize,
    class_count: usize,
    /// Unnormalized gini importance per feature: Σ over splits of
    /// (node samples / total samples) × impurity decrease.
    importances: Vec<f64>,
    node_count_leaves: usize,
    max_depth_reached: usize,
}

/// A fitted tree flattened into parallel per-node arrays — the
/// serialization layout of the `survdb-model/v1` on-disk format.
///
/// Node `i` is a split when `kind[i] == 1` (its `feature`, `threshold`,
/// `left`, and `right` entries are live) and a leaf when `kind[i] == 0`
/// (its `class_count` probabilities are the next unconsumed run of
/// `leaf_probabilities`, in node order; its split columns hold zeros).
/// The tree builder pushes a parent's slot before growing its children,
/// so child indices are always strictly greater than the parent's;
/// [`DecisionTree::from_flat`] re-checks that invariant, which bounds
/// every prediction walk on a loaded tree by the node count.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatTree {
    /// Number of features the tree tests.
    pub feature_count: usize,
    /// Number of classes in each leaf distribution.
    pub class_count: usize,
    /// Per node: 0 = leaf, 1 = split.
    pub kind: Vec<u8>,
    /// Per node: feature index tested (splits only).
    pub feature: Vec<u32>,
    /// Per node: split threshold (`value <= threshold` goes left).
    pub threshold: Vec<f64>,
    /// Per node: left child index (splits only).
    pub left: Vec<u32>,
    /// Per node: right child index (splits only).
    pub right: Vec<u32>,
    /// Leaf class distributions, `class_count` values per leaf,
    /// concatenated in node order.
    pub leaf_probabilities: Vec<f64>,
    /// Unnormalized gini importances, one per feature.
    pub importances: Vec<f64>,
}

/// Midpoint threshold between two adjacent distinct feature values.
///
/// When the values are so close that the midpoint rounds up to `hi`
/// (which would send both groups left and produce an empty child), fall
/// back to `lo`: the split `v <= lo` still separates the two values.
fn threshold_between(lo: f64, hi: f64) -> f64 {
    let mid = lo + (hi - lo) / 2.0;
    if mid >= hi {
        lo
    } else {
        mid
    }
}

/// Gini impurity `2p(1−p)` generalized to k classes: `1 − Σ pᵢ²`.
pub(crate) fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let sum_sq: f64 = counts.iter().map(|c| c * c).sum();
    1.0 - sum_sq / (total * total)
}

/// Rank-coded feature columns, computed once per forest and shared by
/// all of its trees.
///
/// For each feature the training rows' values are sorted once; the
/// sorted distinct values become `uniques[f]` and every row stores the
/// rank of its value in that list (`codes[f][row]`). Ranks are all a
/// split search needs: class counts per rank reproduce the classic
/// sorted scan, and `value <= threshold` becomes `code <= split_code`.
/// Codes don't depend on the bootstrap sample, so the O(f · n log n)
/// sort cost is paid once per forest instead of per node or per tree.
pub(crate) struct SplitPrecompute {
    /// Per feature: sorted distinct values present in the training rows.
    uniques: Vec<Vec<f64>>,
    /// Per feature: rank of each dataset row's value in `uniques`,
    /// indexed by dataset row id (rows outside the training set keep 0).
    codes: Vec<Vec<u32>>,
    /// Per feature: `code × class_count + label` per dataset row — the
    /// value's histogram slot, so a split scan is one lookup per row.
    coded_labels: Vec<Vec<u32>>,
    /// Largest `uniques` length over all features (histogram sizing).
    max_distinct: usize,
}

impl SplitPrecompute {
    /// Builds codes for the rows of `data` listed in `rows` (duplicates
    /// allowed — they just repeat work).
    pub(crate) fn build(data: &Dataset, rows: &[usize]) -> SplitPrecompute {
        let c = data.class_count();
        let labels = data.labels();
        let mut uniques = Vec::with_capacity(data.feature_count());
        let mut codes = Vec::with_capacity(data.feature_count());
        let mut coded_labels = Vec::with_capacity(data.feature_count());
        let mut max_distinct = 0;
        let mut sorted: Vec<u32> = Vec::with_capacity(rows.len());
        for f in 0..data.feature_count() {
            let column = data.column(f);
            sorted.clear();
            sorted.extend(rows.iter().map(|&r| r as u32));
            sorted.sort_unstable_by(|&a, &b| {
                column[a as usize]
                    .partial_cmp(&column[b as usize])
                    .expect("finite features")
            });
            let mut uniq: Vec<f64> = Vec::new();
            let mut code_col = vec![0u32; data.len()];
            let mut cl_col = vec![0u32; data.len()];
            for &r in &sorted {
                let v = column[r as usize];
                if uniq.last() != Some(&v) {
                    uniq.push(v);
                }
                let code = (uniq.len() - 1) as u32;
                code_col[r as usize] = code;
                cl_col[r as usize] = code * c as u32 + labels[r as usize] as u32;
            }
            max_distinct = max_distinct.max(uniq.len());
            uniques.push(uniq);
            codes.push(code_col);
            coded_labels.push(cl_col);
        }
        SplitPrecompute {
            uniques,
            codes,
            coded_labels,
            max_distinct,
        }
    }

    fn feature_count(&self) -> usize {
        self.codes.len()
    }
}

/// Per-tree training state.
///
/// `order` holds the tree's training rows (bootstrap draws, duplicates
/// allowed) and is partitioned in place as the tree grows, so a node
/// always owns a contiguous `[start, end)` range. The histogram and
/// touched-code scratch buffers are reused across every split search.
struct GrowContext<'a> {
    pre: &'a SplitPrecompute,
    /// Label per dataset row (borrowed from the dataset).
    labels: &'a [usize],
    /// Training rows, partitioned down the tree.
    order: Vec<u32>,
    scratch: Vec<u32>,
    /// `max_distinct × class_count` class counts, indexed directly by
    /// the precomputed `coded_labels` slots and zeroed between uses.
    /// Counts are exact small integers, so u32 arithmetic here converts
    /// losslessly to the f64 counts the gini formula consumes.
    hist: Vec<u32>,
    /// Gathered `coded_labels` of a small node, sorted to scan runs.
    sorted_slots: Vec<u32>,
    /// Reusable prefix/suffix class-count buffers for the sweep.
    left_buf: Vec<f64>,
    right_buf: Vec<f64>,
    /// Left-child class counts of the best boundary found so far.
    split_counts: Vec<f64>,
    /// Reusable identity permutation for the per-node feature draw.
    feature_order: Vec<usize>,
    /// Per-feature "constant in the current subtree" flags. A feature
    /// with one rank in a node has one rank in every descendant (they
    /// hold row subsets), so descendants skip it without a scan — a
    /// constant feature yields no boundaries either way.
    constant: Vec<bool>,
    /// Undo stack of features marked constant, unwound per node.
    constant_marks: Vec<u32>,
    /// Recycled class-count vectors (one live per recursion level), so
    /// threading counts through `grow` allocates only at peak depth.
    counts_free: Vec<Vec<f64>>,
    /// Plain build counters, flushed to `obs` once per fitted tree so
    /// the hot paths never touch a lock.
    stats: TreeBuildStats,
}

/// Counters accumulated while growing one tree. Kept as plain integers
/// on the context (no atomics, no locks) and published in a single
/// `obs::count_many` call when `fit_presorted` returns.
#[derive(Default)]
struct TreeBuildStats {
    nodes_expanded: u64,
    leaves_created: u64,
    dense_scans: u64,
    sparse_scans: u64,
    counts_reused: u64,
    counts_allocated: u64,
}

impl<'a> GrowContext<'a> {
    fn build(pre: &'a SplitPrecompute, data: &'a Dataset, indices: &[usize]) -> GrowContext<'a> {
        GrowContext {
            pre,
            labels: data.labels(),
            order: indices.iter().map(|&i| i as u32).collect(),
            scratch: Vec::with_capacity(indices.len()),
            hist: vec![0; pre.max_distinct * data.class_count()],
            sorted_slots: Vec::with_capacity(indices.len()),
            left_buf: vec![0.0; data.class_count()],
            right_buf: vec![0.0; data.class_count()],
            split_counts: vec![0.0; data.class_count()],
            feature_order: Vec::with_capacity(pre.feature_count()),
            constant: pre.uniques.iter().map(|u| u.len() < 2).collect(),
            constant_marks: Vec::new(),
            counts_free: Vec::new(),
            stats: TreeBuildStats::default(),
        }
    }

    /// Class counts over the node `[start, end)`.
    fn counts(&self, start: usize, end: usize, class_count: usize) -> Vec<f64> {
        let mut counts = vec![0.0_f64; class_count];
        for &row in &self.order[start..end] {
            counts[self.labels[row as usize]] += 1.0;
        }
        counts
    }

    /// Stably partitions the node `[start, end)` so rows going left
    /// (`code <= split_code` on the split feature) occupy the front.
    /// Returns the left child's size.
    fn partition(
        &mut self,
        start: usize,
        end: usize,
        split_feature: usize,
        split_code: u32,
    ) -> usize {
        let GrowContext {
            pre,
            order,
            scratch,
            ..
        } = self;
        let codes = &pre.codes[split_feature];
        scratch.clear();
        let mut write = start;
        for k in start..end {
            let row = order[k];
            if codes[row as usize] <= split_code {
                order[write] = row;
                write += 1;
            } else {
                scratch.push(row);
            }
        }
        order[write..end].copy_from_slice(scratch);
        write - start
    }

    /// Takes a counts vector from the free list, tracking whether the
    /// request was served by reuse or a fresh allocation.
    fn pop_counts_vec(&mut self) -> Vec<f64> {
        match self.counts_free.pop() {
            Some(v) => {
                self.stats.counts_reused += 1;
                v
            }
            None => {
                self.stats.counts_allocated += 1;
                Vec::new()
            }
        }
    }
}

impl DecisionTree {
    /// Fits a tree on the rows of `data` selected by `indices`
    /// (duplicates allowed: bootstrap), considering `max_features`
    /// randomly chosen features at each split.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or `max_features` is 0 or exceeds
    /// the feature count.
    pub fn fit<R: Rng + ?Sized>(
        data: &Dataset,
        indices: &[usize],
        params: &TreeParams,
        max_features: usize,
        rng: &mut R,
    ) -> DecisionTree {
        let pre = SplitPrecompute::build(data, indices);
        Self::fit_presorted(data, &pre, indices, params, max_features, rng)
    }

    /// Fits a tree reusing a [`SplitPrecompute`] built over (a superset
    /// of) `indices` — the forest path, which shares one precompute
    /// across all trees.
    pub(crate) fn fit_presorted<R: Rng + ?Sized>(
        data: &Dataset,
        pre: &SplitPrecompute,
        indices: &[usize],
        params: &TreeParams,
        max_features: usize,
        rng: &mut R,
    ) -> DecisionTree {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        assert!(
            max_features >= 1 && max_features <= data.feature_count(),
            "max_features must be in 1..={}, got {max_features}",
            data.feature_count()
        );

        let mut tree = DecisionTree {
            nodes: Vec::new(),
            feature_count: data.feature_count(),
            class_count: data.class_count(),
            importances: vec![0.0; data.feature_count()],
            node_count_leaves: 0,
            max_depth_reached: 0,
        };
        let mut ctx = GrowContext::build(pre, data, indices);
        let len = indices.len();
        let total = len as f64;
        let root_counts = ctx.counts(0, len, data.class_count());
        tree.grow(
            &mut ctx,
            0,
            len,
            root_counts,
            0,
            params,
            max_features,
            total,
            rng,
        );
        if obs::enabled() {
            obs::count_many(&[
                ("forest.trees_built", 1),
                ("forest.nodes_expanded", ctx.stats.nodes_expanded),
                ("forest.leaves_created", ctx.stats.leaves_created),
                ("forest.split_scan.dense", ctx.stats.dense_scans),
                ("forest.split_scan.sparse", ctx.stats.sparse_scans),
                ("forest.counts_reused", ctx.stats.counts_reused),
                ("forest.counts_allocated", ctx.stats.counts_allocated),
            ]);
        }
        tree
    }

    /// Recursively grows the subtree over the samples in
    /// `ctx[start..end]`, returning the new node's index. The presorted
    /// columns are partitioned in place. `counts` holds this node's
    /// class counts, threaded down from the parent's split scan so no
    /// per-node counting pass is needed.
    #[allow(clippy::too_many_arguments)]
    fn grow<R: Rng + ?Sized>(
        &mut self,
        ctx: &mut GrowContext,
        start: usize,
        end: usize,
        counts: Vec<f64>,
        depth: usize,
        params: &TreeParams,
        max_features: usize,
        total: f64,
        rng: &mut R,
    ) -> usize {
        let n = end - start;
        self.max_depth_reached = self.max_depth_reached.max(depth);

        let node_gini = gini(&counts, n as f64);

        if depth >= params.max_depth
            || n < params.min_samples_split
            || node_gini <= 0.0
            || n < 2 * params.min_samples_leaf
        {
            return self.make_leaf(ctx, counts, n);
        }

        // Constant-feature marks made while scanning this node apply to
        // the whole subtree below it; unwind them before returning so
        // siblings start from their own parent's state.
        let marks_before = ctx.constant_marks.len();
        let best = self.best_split(
            ctx,
            start,
            end,
            &counts,
            node_gini,
            max_features,
            params,
            rng,
        );
        let Some((feature, threshold, decrease, left_len, split_code)) = best else {
            Self::unwind_constant_marks(ctx, marks_before);
            return self.make_leaf(ctx, counts, n);
        };
        debug_assert!(
            left_len > 0 && left_len < n,
            "split produced an empty child"
        );

        let moved = ctx.partition(start, end, feature, split_code);
        debug_assert_eq!(moved, left_len, "partition disagreed with the split scan");
        self.importances[feature] += (n as f64 / total) * decrease;

        // Child counts come straight from the winning boundary's prefix
        // scan: the left prefix counts are exact small integers, so the
        // right side is an exact subtraction from the parent. Count
        // vectors are recycled through a free list; one lives per level
        // of the recursion, so the pool stays tree-depth sized.
        let mut left_counts = ctx.pop_counts_vec();
        left_counts.clear();
        left_counts.extend_from_slice(&ctx.split_counts);
        let mut right_counts = ctx.pop_counts_vec();
        right_counts.clear();
        right_counts.extend(counts.iter().zip(&left_counts).map(|(p, l)| p - l));
        ctx.counts_free.push(counts);

        // Reserve this node's slot before growing children.
        ctx.stats.nodes_expanded += 1;
        self.nodes.push(Node::Leaf {
            probabilities: Vec::new(),
        });
        let me = self.nodes.len() - 1;

        let mid = start + left_len;
        let left = self.grow(
            ctx,
            start,
            mid,
            left_counts,
            depth + 1,
            params,
            max_features,
            total,
            rng,
        );
        let right = self.grow(
            ctx,
            mid,
            end,
            right_counts,
            depth + 1,
            params,
            max_features,
            total,
            rng,
        );
        Self::unwind_constant_marks(ctx, marks_before);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Pushes a leaf holding `counts / n` and recycles the counts
    /// vector into the context's free list.
    fn make_leaf(&mut self, ctx: &mut GrowContext, counts: Vec<f64>, n: usize) -> usize {
        let probabilities = counts.iter().map(|c| c / n as f64).collect();
        ctx.counts_free.push(counts);
        ctx.stats.leaves_created += 1;
        self.nodes.push(Node::Leaf { probabilities });
        self.node_count_leaves += 1;
        self.nodes.len() - 1
    }

    fn unwind_constant_marks(ctx: &mut GrowContext, to_len: usize) {
        while ctx.constant_marks.len() > to_len {
            let f = ctx.constant_marks.pop().expect("non-empty mark stack");
            ctx.constant[f as usize] = false;
        }
    }

    /// Finds the best `(feature, threshold, impurity decrease, left
    /// size, split code)` over a random subset of features, or `None`
    /// if no valid split exists.
    ///
    /// For each candidate feature, one counting pass over the node's
    /// rows builds per-rank class counts, then the occupied ranks are
    /// swept in ascending order maintaining prefix counts. Boundaries
    /// fall between *distinct* present values and the prefix counts at
    /// a boundary are a function of the (value, label) multiset, so the
    /// result matches a per-node re-sort exactly regardless of tie
    /// order.
    #[allow(clippy::too_many_arguments)] // split search threads the parent's cached stats
    fn best_split<R: Rng + ?Sized>(
        &self,
        ctx: &mut GrowContext,
        start: usize,
        end: usize,
        parent_counts: &[f64],
        parent_gini: f64,
        max_features: usize,
        params: &TreeParams,
        rng: &mut R,
    ) -> Option<(usize, f64, f64, usize, u32)> {
        let nf = ctx.pre.feature_count();

        // Partial Fisher–Yates over a reused identity permutation: the
        // first `max_features` entries become the candidate features.
        ctx.feature_order.clear();
        ctx.feature_order.extend(0..nf);
        for i in 0..max_features.min(nf) {
            let j = rng.gen_range(i..nf);
            ctx.feature_order.swap(i, j);
        }

        // The common class counts get a monomorphized scan whose count
        // buffers are fixed-size arrays (registers, no bounds checks).
        // Every arithmetic operation runs in the same order as the
        // dynamic scan, so the results are bitwise identical.
        match self.class_count {
            2 => Self::scan_features::<2>(
                ctx,
                start,
                end,
                parent_counts,
                parent_gini,
                max_features,
                params,
            ),
            3 => Self::scan_features::<3>(
                ctx,
                start,
                end,
                parent_counts,
                parent_gini,
                max_features,
                params,
            ),
            _ => self.scan_features_dyn(
                ctx,
                start,
                end,
                parent_counts,
                parent_gini,
                max_features,
                params,
            ),
        }
    }

    /// Split scan monomorphized over the class count. Must stay in
    /// operation-for-operation lockstep with [`Self::scan_features_dyn`].
    #[allow(clippy::too_many_arguments)]
    fn scan_features<const C: usize>(
        ctx: &mut GrowContext,
        start: usize,
        end: usize,
        parent_counts: &[f64],
        parent_gini: f64,
        max_features: usize,
        params: &TreeParams,
    ) -> Option<(usize, f64, f64, usize, u32)> {
        let n = end - start;
        let parent: [f64; C] = parent_counts.try_into().expect("class count");
        let GrowContext {
            pre,
            order,
            hist,
            sorted_slots,
            split_counts,
            feature_order,
            constant,
            constant_marks,
            stats,
            ..
        } = ctx;
        let node = &order[start..end];
        let mut best: Option<(usize, f64, f64, usize, u32)> = None;

        let evaluate = |left: &[f64; C],
                        right: &[f64; C],
                        left_n: f64,
                        right_n: f64,
                        code: usize,
                        next_code: usize,
                        feature: usize,
                        uniq: &[f64],
                        best: &mut Option<(usize, f64, f64, usize, u32)>,
                        best_counts: &mut [f64]| {
            let left_size = left_n as usize;
            let right_size = n - left_size;
            if left_size < params.min_samples_leaf || right_size < params.min_samples_leaf {
                return;
            }
            let weighted = (left_n / n as f64) * gini(left, left_n)
                + (right_n / n as f64) * gini(right, right_n);
            let decrease = (parent_gini - weighted).max(0.0);
            match best {
                Some((_, _, best_dec, _, _)) if *best_dec >= decrease => {}
                _ => {
                    *best = Some((
                        feature,
                        threshold_between(uniq[code], uniq[next_code]),
                        decrease,
                        left_size,
                        code as u32,
                    ));
                    best_counts.copy_from_slice(left);
                }
            }
        };

        for &feature in &feature_order[..max_features] {
            if constant[feature] {
                continue; // constant globally or within this subtree
            }
            let uniq = &pre.uniques[feature][..];
            let k = uniq.len();
            let slots = &pre.coded_labels[feature];

            let mut left = [0.0_f64; C];
            let mut right = parent;
            let mut left_n = 0.0;
            let mut right_n = n as f64;
            let mut prev: Option<usize> = None;

            // Histogram (dense) sweep when the node's occupied rank
            // range is small relative to its size; sorted-run (sparse)
            // scan otherwise. Both formulations are bitwise-identical,
            // so this is purely a cost choice. When the global distinct
            // count `k` is already small the histogram fill doubles as
            // the range probe; otherwise probe first — nodes purify as
            // they split, so deep nodes often occupy a narrow range of
            // a large `k`. The probe aborts once the range provably
            // exceeds the dense threshold (the sparse path needs no
            // range).
            let (code_lo, code_hi, dense) = if 4 * n >= k {
                let mut min_slot = u32::MAX;
                let mut max_slot = 0u32;
                for &row in node {
                    let slot = slots[row as usize];
                    hist[slot as usize] += 1;
                    min_slot = min_slot.min(slot);
                    max_slot = max_slot.max(slot);
                }
                (min_slot as usize / C, max_slot as usize / C, true)
            } else {
                let wide = ((4 * n + 1) * C) as u32;
                let mut min_slot = u32::MAX;
                let mut max_slot = 0u32;
                let mut aborted = false;
                for &row in node {
                    let slot = slots[row as usize];
                    min_slot = min_slot.min(slot);
                    max_slot = max_slot.max(slot);
                    if max_slot - min_slot >= wide {
                        aborted = true;
                        break;
                    }
                }
                let lo = min_slot as usize / C;
                let hi = max_slot as usize / C;
                if !aborted && 4 * n > hi - lo {
                    for &row in node {
                        hist[slots[row as usize] as usize] += 1;
                    }
                    (lo, hi, true)
                } else {
                    (lo, hi, false)
                }
            };

            if dense {
                stats.dense_scans += 1;
            } else {
                stats.sparse_scans += 1;
            }

            if dense && code_lo == code_hi {
                // One rank in this node: constant for the subtree.
                constant[feature] = true;
                constant_marks.push(feature as u32);
                hist[code_lo * C..(code_hi + 1) * C]
                    .iter_mut()
                    .for_each(|v| *v = 0);
                continue;
            }

            if dense {
                for code in code_lo..=code_hi {
                    let base = code * C;
                    let bucket: &[u32; C] =
                        (&hist[base..base + C]).try_into().expect("bucket width");
                    let mut bucket_n = 0u32;
                    for &count in bucket {
                        bucket_n += count;
                    }
                    if bucket_n == 0 {
                        continue;
                    }
                    if let Some(p) = prev {
                        evaluate(
                            &left,
                            &right,
                            left_n,
                            right_n,
                            p,
                            code,
                            feature,
                            uniq,
                            &mut best,
                            split_counts,
                        );
                    }
                    for j in 0..C {
                        let cnt = bucket[j] as f64;
                        left[j] += cnt;
                        right[j] -= cnt;
                    }
                    left_n += bucket_n as f64;
                    right_n -= bucket_n as f64;
                    prev = Some(code);
                }
                hist[code_lo * C..(code_hi + 1) * C]
                    .iter_mut()
                    .for_each(|v| *v = 0);
            } else {
                sorted_slots.clear();
                sorted_slots.extend(node.iter().map(|&row| slots[row as usize]));
                sorted_slots.sort_unstable();
                let mut i = 0;
                while i < sorted_slots.len() {
                    let code = sorted_slots[i] as usize / C;
                    if let Some(p) = prev {
                        evaluate(
                            &left,
                            &right,
                            left_n,
                            right_n,
                            p,
                            code,
                            feature,
                            uniq,
                            &mut best,
                            split_counts,
                        );
                    }
                    let stop = ((code + 1) * C) as u32;
                    let base = code * C;
                    while i < sorted_slots.len() && sorted_slots[i] < stop {
                        let label = sorted_slots[i] as usize - base;
                        left[label] += 1.0;
                        right[label] -= 1.0;
                        left_n += 1.0;
                        right_n -= 1.0;
                        i += 1;
                    }
                    prev = Some(code);
                }
            }
        }
        best
    }

    /// Dynamic-class-count split scan; the fallback for datasets whose
    /// class count has no monomorphized variant.
    #[allow(clippy::too_many_arguments)]
    fn scan_features_dyn(
        &self,
        ctx: &mut GrowContext,
        start: usize,
        end: usize,
        parent_counts: &[f64],
        parent_gini: f64,
        max_features: usize,
        params: &TreeParams,
    ) -> Option<(usize, f64, f64, usize, u32)> {
        let n = end - start;
        let c = self.class_count;

        let GrowContext {
            pre,
            order,
            hist,
            sorted_slots,
            left_buf,
            right_buf,
            split_counts,
            feature_order,
            constant,
            constant_marks,
            stats,
            ..
        } = ctx;
        let node = &order[start..end];
        let mut best: Option<(usize, f64, f64, usize, u32)> = None;

        // Scores one boundary between consecutive present ranks `code`
        // and `next_code`, given the prefix counts up to and including
        // `code`'s bucket. Zero-gain splits are admissible (as in
        // scikit-learn's CART): children may become separable even when
        // this level's gain is zero (e.g. XOR). Termination is still
        // guaranteed because both children are strictly smaller.
        let evaluate = |left_buf: &[f64],
                        right_buf: &[f64],
                        left_n: f64,
                        right_n: f64,
                        code: usize,
                        next_code: usize,
                        feature: usize,
                        uniq: &[f64],
                        best: &mut Option<(usize, f64, f64, usize, u32)>,
                        best_counts: &mut [f64]| {
            let left_size = left_n as usize;
            let right_size = n - left_size;
            if left_size < params.min_samples_leaf || right_size < params.min_samples_leaf {
                return;
            }
            let weighted = (left_n / n as f64) * gini(left_buf, left_n)
                + (right_n / n as f64) * gini(right_buf, right_n);
            let decrease = (parent_gini - weighted).max(0.0);
            match best {
                Some((_, _, best_dec, _, _)) if *best_dec >= decrease => {}
                _ => {
                    *best = Some((
                        feature,
                        threshold_between(uniq[code], uniq[next_code]),
                        decrease,
                        left_size,
                        code as u32,
                    ));
                    best_counts.copy_from_slice(left_buf);
                }
            }
        };

        for &feature in &feature_order[..max_features] {
            if constant[feature] {
                continue; // constant globally or within this subtree
            }
            let uniq = &pre.uniques[feature][..];
            let k = uniq.len();
            let slots = &pre.coded_labels[feature];

            left_buf.iter_mut().for_each(|v| *v = 0.0);
            right_buf.copy_from_slice(parent_counts);
            let mut left_n = 0.0;
            let mut right_n = n as f64;
            let mut prev: Option<usize> = None;

            // Same dense/sparse choice as the monomorphized scan; see
            // the comment there.
            let (code_lo, code_hi, dense) = if 4 * n >= k {
                let mut min_slot = u32::MAX;
                let mut max_slot = 0u32;
                for &row in node {
                    let slot = slots[row as usize];
                    hist[slot as usize] += 1;
                    min_slot = min_slot.min(slot);
                    max_slot = max_slot.max(slot);
                }
                (min_slot as usize / c, max_slot as usize / c, true)
            } else {
                let wide = ((4 * n + 1) * c) as u32;
                let mut min_slot = u32::MAX;
                let mut max_slot = 0u32;
                let mut aborted = false;
                for &row in node {
                    let slot = slots[row as usize];
                    min_slot = min_slot.min(slot);
                    max_slot = max_slot.max(slot);
                    if max_slot - min_slot >= wide {
                        aborted = true;
                        break;
                    }
                }
                let lo = min_slot as usize / c;
                let hi = max_slot as usize / c;
                if !aborted && 4 * n > hi - lo {
                    for &row in node {
                        hist[slots[row as usize] as usize] += 1;
                    }
                    (lo, hi, true)
                } else {
                    (lo, hi, false)
                }
            };

            if dense {
                stats.dense_scans += 1;
            } else {
                stats.sparse_scans += 1;
            }

            if dense && code_lo == code_hi {
                // One rank in this node: constant for the subtree.
                constant[feature] = true;
                constant_marks.push(feature as u32);
                hist[code_lo * c..(code_hi + 1) * c]
                    .iter_mut()
                    .for_each(|v| *v = 0);
                continue;
            }

            if dense {
                for code in code_lo..=code_hi {
                    let base = code * c;
                    let mut bucket_n = 0u32;
                    for j in 0..c {
                        bucket_n += hist[base + j];
                    }
                    if bucket_n == 0 {
                        continue;
                    }
                    if let Some(p) = prev {
                        evaluate(
                            left_buf,
                            right_buf,
                            left_n,
                            right_n,
                            p,
                            code,
                            feature,
                            uniq,
                            &mut best,
                            split_counts,
                        );
                    }
                    for j in 0..c {
                        let cnt = hist[base + j] as f64;
                        left_buf[j] += cnt;
                        right_buf[j] -= cnt;
                    }
                    left_n += bucket_n as f64;
                    right_n -= bucket_n as f64;
                    prev = Some(code);
                }
                hist[code_lo * c..(code_hi + 1) * c]
                    .iter_mut()
                    .for_each(|v| *v = 0);
            } else {
                // Sparse (small node, many ranks): gather the node's
                // slots and sort them; equal ranks form contiguous runs.
                sorted_slots.clear();
                sorted_slots.extend(node.iter().map(|&row| slots[row as usize]));
                sorted_slots.sort_unstable();
                let mut i = 0;
                while i < sorted_slots.len() {
                    let code = sorted_slots[i] as usize / c;
                    if let Some(p) = prev {
                        evaluate(
                            left_buf,
                            right_buf,
                            left_n,
                            right_n,
                            p,
                            code,
                            feature,
                            uniq,
                            &mut best,
                            split_counts,
                        );
                    }
                    let stop = ((code + 1) * c) as u32;
                    let base = code * c;
                    while i < sorted_slots.len() && sorted_slots[i] < stop {
                        let label = sorted_slots[i] as usize - base;
                        left_buf[label] += 1.0;
                        right_buf[label] -= 1.0;
                        left_n += 1.0;
                        right_n -= 1.0;
                        i += 1;
                    }
                    prev = Some(code);
                }
            }
        }
        best
    }

    /// Class-probability estimates for one feature vector.
    pub fn predict_proba(&self, features: &[f64]) -> &[f64] {
        assert_eq!(
            features.len(),
            self.feature_count,
            "expected {} features, got {}",
            self.feature_count,
            features.len()
        );
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { probabilities } => return probabilities,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Class-probability estimates for row `i` of a columnar dataset,
    /// reading only the features the tree path touches (no row
    /// gather).
    pub fn predict_proba_row(&self, data: &Dataset, i: usize) -> &[f64] {
        assert_eq!(
            data.feature_count(),
            self.feature_count,
            "expected {} features, got {}",
            self.feature_count,
            data.feature_count()
        );
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { probabilities } => return probabilities,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if data.value(i, *feature) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicted class (argmax of probabilities; ties go to the lower
    /// class index).
    pub fn predict(&self, features: &[f64]) -> usize {
        Self::argmax(self.predict_proba(features))
    }

    /// Predicted class for row `i` of a columnar dataset.
    pub fn predict_row(&self, data: &Dataset, i: usize) -> usize {
        Self::argmax(self.predict_proba_row(data, i))
    }

    fn argmax(probs: &[f64]) -> usize {
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .expect("at least two classes")
    }

    /// Unnormalized gini importances (one per feature).
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.node_count_leaves
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Deepest node depth reached during growth.
    pub fn depth(&self) -> usize {
        self.max_depth_reached
    }

    /// Number of features the tree was trained on.
    pub fn feature_count(&self) -> usize {
        self.feature_count
    }

    /// Number of classes in the leaf distributions.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Flattens the tree into the parallel-array [`FlatTree`] layout.
    /// Lossless: [`DecisionTree::from_flat`] rebuilds an equal tree.
    pub fn to_flat(&self) -> FlatTree {
        let n = self.nodes.len();
        let mut flat = FlatTree {
            feature_count: self.feature_count,
            class_count: self.class_count,
            kind: Vec::with_capacity(n),
            feature: Vec::with_capacity(n),
            threshold: Vec::with_capacity(n),
            left: Vec::with_capacity(n),
            right: Vec::with_capacity(n),
            leaf_probabilities: Vec::with_capacity(self.node_count_leaves * self.class_count),
            importances: self.importances.clone(),
        };
        for node in &self.nodes {
            match node {
                Node::Leaf { probabilities } => {
                    flat.kind.push(0);
                    flat.feature.push(0);
                    flat.threshold.push(0.0);
                    flat.left.push(0);
                    flat.right.push(0);
                    flat.leaf_probabilities.extend_from_slice(probabilities);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    flat.kind.push(1);
                    flat.feature.push(*feature as u32);
                    flat.threshold.push(*threshold);
                    flat.left.push(*left as u32);
                    flat.right.push(*right as u32);
                }
            }
        }
        flat
    }

    /// Rebuilds a tree from the flat layout, validating every
    /// structural invariant the predictor relies on: column lengths
    /// match the node count, split features are in range, thresholds
    /// are finite, child indices point strictly forward (so prediction
    /// walks terminate), and leaf distributions are probabilities.
    ///
    /// Untrusted input (a corrupted model file) gets an `Err`; it never
    /// panics and an `Ok` tree can never send `predict` out of bounds
    /// or into a cycle.
    pub fn from_flat(flat: &FlatTree) -> Result<DecisionTree, String> {
        let n = flat.kind.len();
        if n == 0 {
            return Err("tree has no nodes".to_string());
        }
        if flat.feature_count == 0 {
            return Err("tree must test at least one feature".to_string());
        }
        if flat.class_count < 2 {
            return Err(format!(
                "class count must be >= 2, got {}",
                flat.class_count
            ));
        }
        for (name, len) in [
            ("feature", flat.feature.len()),
            ("threshold", flat.threshold.len()),
            ("left", flat.left.len()),
            ("right", flat.right.len()),
        ] {
            if len != n {
                return Err(format!("{name} column has {len} entries for {n} nodes"));
            }
        }
        if flat.importances.len() != flat.feature_count {
            return Err(format!(
                "{} importances for {} features",
                flat.importances.len(),
                flat.feature_count
            ));
        }
        if flat.importances.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err("importances must be finite and non-negative".to_string());
        }

        let mut nodes = Vec::with_capacity(n);
        let mut offset = 0usize;
        let mut leaves = 0usize;
        for i in 0..n {
            match flat.kind[i] {
                0 => {
                    let end = offset + flat.class_count;
                    if end > flat.leaf_probabilities.len() {
                        return Err(format!(
                            "leaf probabilities exhausted at node {i}: need {end}, have {}",
                            flat.leaf_probabilities.len()
                        ));
                    }
                    let probabilities = &flat.leaf_probabilities[offset..end];
                    if probabilities
                        .iter()
                        .any(|p| !p.is_finite() || !(0.0..=1.0).contains(p))
                    {
                        return Err(format!("leaf {i} has probabilities outside [0, 1]"));
                    }
                    offset = end;
                    leaves += 1;
                    nodes.push(Node::Leaf {
                        probabilities: probabilities.to_vec(),
                    });
                }
                1 => {
                    let feature = flat.feature[i] as usize;
                    if feature >= flat.feature_count {
                        return Err(format!(
                            "split {i} tests feature {feature} of {}",
                            flat.feature_count
                        ));
                    }
                    if !flat.threshold[i].is_finite() {
                        return Err(format!("split {i} has a non-finite threshold"));
                    }
                    let (left, right) = (flat.left[i] as usize, flat.right[i] as usize);
                    if left <= i || left >= n || right <= i || right >= n {
                        return Err(format!(
                            "split {i} children ({left}, {right}) must lie strictly \
                             between {i} and {n}"
                        ));
                    }
                    nodes.push(Node::Split {
                        feature,
                        threshold: flat.threshold[i],
                        left,
                        right,
                    });
                }
                k => return Err(format!("node {i} has unknown kind {k}")),
            }
        }
        if offset != flat.leaf_probabilities.len() {
            return Err(format!(
                "{} leaf probabilities for {leaves} leaves of {} classes",
                flat.leaf_probabilities.len(),
                flat.class_count
            ));
        }

        // Depth of the deepest node reachable from the root. The
        // builder creates no unreachable nodes, so for flats produced
        // by `to_flat` this equals the growth-time depth; the
        // forward-pointing child check above guarantees the walk
        // terminates even on crafted input.
        let mut max_depth = 0usize;
        let mut stack = vec![(0usize, 0usize)];
        while let Some((idx, depth)) = stack.pop() {
            max_depth = max_depth.max(depth);
            if let Node::Split { left, right, .. } = &nodes[idx] {
                stack.push((*left, depth + 1));
                stack.push((*right, depth + 1));
            }
        }

        Ok(DecisionTree {
            nodes,
            feature_count: flat.feature_count,
            class_count: flat.class_count,
            importances: flat.importances.clone(),
            node_count_leaves: leaves,
            max_depth_reached: max_depth,
        })
    }

    /// Renders the tree as indented text, resolving feature indices to
    /// `feature_names` — the classic interpretability dump:
    ///
    /// ```text
    /// hist_g2_life_avg <= 12.50
    ///   size_change_rate <= 0.01
    ///     leaf [0.86, 0.14]
    ///     leaf [0.42, 0.58]
    ///   leaf [0.10, 0.90]
    /// ```
    ///
    /// `max_depth` truncates deep subtrees with an ellipsis line.
    ///
    /// # Panics
    ///
    /// Panics if `feature_names` does not match the training feature
    /// count.
    pub fn dump(&self, feature_names: &[String], max_depth: usize) -> String {
        assert_eq!(
            feature_names.len(),
            self.feature_count,
            "expected {} feature names",
            self.feature_count
        );
        let mut out = String::new();
        self.dump_node(0, 0, max_depth, feature_names, &mut out);
        out
    }

    fn dump_node(
        &self,
        idx: usize,
        depth: usize,
        max_depth: usize,
        names: &[String],
        out: &mut String,
    ) {
        let indent = "  ".repeat(depth);
        match &self.nodes[idx] {
            Node::Leaf { probabilities } => {
                let probs: Vec<String> = probabilities.iter().map(|p| format!("{p:.2}")).collect();
                out.push_str(&format!("{indent}leaf [{}]\n", probs.join(", ")));
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if depth >= max_depth {
                    out.push_str(&format!("{indent}…\n"));
                    return;
                }
                out.push_str(&format!("{indent}{} <= {threshold:.4}\n", names[*feature]));
                self.dump_node(*left, depth + 1, max_depth, names, out);
                self.dump_node(*right, depth + 1, max_depth, names, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn axis_dataset() -> Dataset {
        // Perfectly separable on feature 0 at 0.5.
        let mut d = Dataset::new(vec!["x".into(), "noise".into()], 2);
        for i in 0..40 {
            let x = i as f64 / 40.0;
            d.push(vec![x, (i % 5) as f64], (x > 0.5) as usize);
        }
        d
    }

    #[test]
    fn gini_formula() {
        assert_eq!(gini(&[5.0, 5.0], 10.0), 0.5);
        assert_eq!(gini(&[10.0, 0.0], 10.0), 0.0);
        assert!((gini(&[8.0, 2.0], 10.0) - 0.32).abs() < 1e-12);
        assert_eq!(gini(&[], 0.0), 0.0);
    }

    #[test]
    fn separable_data_is_learned_exactly() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        for i in 0..d.len() {
            assert_eq!(tree.predict(&d.row(i)), d.label(i));
            assert_eq!(tree.predict_row(&d, i), d.label(i));
        }
        // All importance should be on the informative feature.
        assert!(tree.importances()[0] > 0.0);
        assert_eq!(tree.importances()[1], 0.0);
    }

    #[test]
    fn depth_limit_respected() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let params = TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let tree = DecisionTree::fit(&d, &idx, &params, 2, &mut rng);
        assert!(tree.depth() <= 1);
        assert!(tree.leaf_count() <= 2);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let params = TreeParams {
            min_samples_leaf: 15,
            ..TreeParams::default()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let tree = DecisionTree::fit(&d, &idx, &params, 2, &mut rng);
        // With 40 samples and leaves >= 15 the tree can split at most
        // once or twice; every leaf probability must come from >= 15
        // samples, so no leaf can be "pure by 1 sample".
        assert!(tree.leaf_count() <= 3);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..10 {
            d.push(vec![i as f64], 1);
        }
        let idx: Vec<usize> = (0..10).collect();
        let mut rng = SmallRng::seed_from_u64(4);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 1, &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba(&[5.0]), &[0.0, 1.0]);
    }

    #[test]
    fn probabilities_reflect_leaf_fractions() {
        // Force a single root leaf by max_depth = 0 on a 30/70 mix.
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..10 {
            d.push(vec![i as f64], (i >= 3) as usize);
        }
        let idx: Vec<usize> = (0..10).collect();
        let params = TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let tree = DecisionTree::fit(&d, &idx, &params, 1, &mut rng);
        let probs = tree.predict_proba(&[0.0]);
        assert!((probs[0] - 0.3).abs() < 1e-12);
        assert!((probs[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let t1 = DecisionTree::fit(
            &d,
            &idx,
            &TreeParams::default(),
            1,
            &mut SmallRng::seed_from_u64(7),
        );
        let t2 = DecisionTree::fit(
            &d,
            &idx,
            &TreeParams::default(),
            1,
            &mut SmallRng::seed_from_u64(7),
        );
        assert_eq!(t1, t2);
    }

    #[test]
    fn duplicate_indices_work() {
        let d = axis_dataset();
        let idx = vec![0, 0, 0, 39, 39, 39];
        let mut rng = SmallRng::seed_from_u64(8);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        assert_eq!(tree.predict(&d.row(0)), 0);
        assert_eq!(tree.predict(&d.row(39)), 1);
    }

    #[test]
    fn row_predictions_match_slice_predictions() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = SmallRng::seed_from_u64(11);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        for i in 0..d.len() {
            let row = d.row(i);
            assert_eq!(tree.predict_proba_row(&d, i), tree.predict_proba(&row));
            assert_eq!(tree.predict_row(&d, i), tree.predict(&row));
        }
    }

    #[test]
    fn flat_roundtrip_is_lossless() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = SmallRng::seed_from_u64(21);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        let flat = tree.to_flat();
        assert_eq!(flat.kind.len(), tree.node_count());
        assert_eq!(
            flat.leaf_probabilities.len(),
            tree.leaf_count() * tree.class_count()
        );
        let back = DecisionTree::from_flat(&flat).expect("valid flat");
        assert_eq!(back, tree);
        assert_eq!(back.to_flat(), flat);
        assert_eq!(back.depth(), tree.depth());
    }

    #[test]
    fn from_flat_rejects_malformed_layouts() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = SmallRng::seed_from_u64(22);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        let good = tree.to_flat();
        assert!(DecisionTree::from_flat(&good).is_ok());
        let split = good
            .kind
            .iter()
            .position(|&k| k == 1)
            .expect("tree has a split");

        // Empty tree.
        let mut bad = good.clone();
        bad.kind.clear();
        assert!(DecisionTree::from_flat(&bad).is_err());

        // Ragged columns.
        let mut bad = good.clone();
        bad.left.pop();
        assert!(DecisionTree::from_flat(&bad).is_err());

        // Unknown node kind.
        let mut bad = good.clone();
        bad.kind[0] = 7;
        assert!(DecisionTree::from_flat(&bad).is_err());

        // Feature out of range.
        let mut bad = good.clone();
        bad.feature[split] = bad.feature_count as u32;
        assert!(DecisionTree::from_flat(&bad).is_err());

        // Self-referential child (would loop forever unchecked).
        let mut bad = good.clone();
        bad.left[split] = split as u32;
        assert!(DecisionTree::from_flat(&bad).is_err());

        // Backward child edge (a cycle through an earlier node).
        let mut bad = good.clone();
        bad.right[split] = 0;
        assert!(DecisionTree::from_flat(&bad).is_err());

        // Child index past the node array.
        let mut bad = good.clone();
        bad.right[split] = bad.kind.len() as u32;
        assert!(DecisionTree::from_flat(&bad).is_err());

        // Non-finite threshold.
        let mut bad = good.clone();
        bad.threshold[split] = f64::NAN;
        assert!(DecisionTree::from_flat(&bad).is_err());

        // Leaf distribution too short.
        let mut bad = good.clone();
        bad.leaf_probabilities.pop();
        assert!(DecisionTree::from_flat(&bad).is_err());

        // Probability outside [0, 1].
        let mut bad = good.clone();
        bad.leaf_probabilities[0] = 1.5;
        assert!(DecisionTree::from_flat(&bad).is_err());

        // Importances misaligned with the feature count.
        let mut bad = good.clone();
        bad.importances.push(0.0);
        assert!(DecisionTree::from_flat(&bad).is_err());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_leaf_probabilities_sum_to_one(
                rows in prop::collection::vec((0.0..1.0_f64, 0.0..1.0_f64, 0usize..2), 2..80),
                query in (0.0..1.0_f64, 0.0..1.0_f64),
            ) {
                let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
                for (a, b, label) in &rows {
                    d.push(vec![*a, *b], *label);
                }
                let idx: Vec<usize> = (0..d.len()).collect();
                let mut rng = SmallRng::seed_from_u64(1);
                let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
                let probs = tree.predict_proba(&[query.0, query.1]);
                let total: f64 = probs.iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                prop_assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }

            #[test]
            fn prop_training_rows_predict_their_leaf_majority(
                rows in prop::collection::vec((0.0..1.0_f64, 0usize..2), 4..60),
            ) {
                // With unlimited depth and leaf size 1, any training row
                // with a unique feature value is classified exactly.
                let mut d = Dataset::new(vec!["x".into()], 2);
                for (x, label) in &rows {
                    d.push(vec![*x], *label);
                }
                let idx: Vec<usize> = (0..d.len()).collect();
                let mut rng = SmallRng::seed_from_u64(2);
                // Depth must exceed the row count: pathological splits
                // can peel one row per level.
                let params = TreeParams {
                    max_depth: rows.len() + 1,
                    ..TreeParams::default()
                };
                let tree = DecisionTree::fit(&d, &idx, &params, 1, &mut rng);
                for i in 0..d.len() {
                    let x = d.value(i, 0);
                    let unique = rows.iter().filter(|(v, _)| *v == x).count() == 1;
                    if unique {
                        prop_assert_eq!(tree.predict(&d.row(i)), d.label(i));
                    }
                }
            }

            #[test]
            fn prop_importances_nonnegative(
                rows in prop::collection::vec((0.0..1.0_f64, 0.0..1.0_f64, 0usize..2), 2..60),
            ) {
                let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
                for (a, b, label) in &rows {
                    d.push(vec![*a, *b], *label);
                }
                let idx: Vec<usize> = (0..d.len()).collect();
                let mut rng = SmallRng::seed_from_u64(3);
                let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
                prop_assert!(tree.importances().iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn dump_renders_structure() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = SmallRng::seed_from_u64(30);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        let names = vec!["x".to_string(), "noise".to_string()];
        let text = tree.dump(&names, 10);
        assert!(text.contains("x <= "), "{text}");
        assert!(text.contains("leaf ["), "{text}");
        // Truncation at depth 0 shows only the ellipsis.
        let truncated = tree.dump(&names, 0);
        assert_eq!(truncated.trim(), "…");
    }

    #[test]
    #[should_panic]
    fn dump_rejects_wrong_name_count() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = SmallRng::seed_from_u64(31);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        tree.dump(&["only-one".to_string()], 5);
    }

    #[test]
    fn xor_needs_depth_two() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        for i in 0..200 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            d.push(vec![a, b], ((a != b) as usize).min(1));
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = SmallRng::seed_from_u64(9);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        assert_eq!(tree.predict(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict(&[1.0, 1.0]), 0);
        assert_eq!(tree.predict(&[1.0, 0.0]), 1);
        assert_eq!(tree.predict(&[0.0, 1.0]), 1);
    }
}
