//! CART decision trees with gini impurity.

use crate::data::Dataset;
use rand::Rng;

/// Hyper-parameters controlling tree growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParams {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum samples a node must hold to be considered for splitting.
    pub min_samples_split: usize,
    /// Minimum samples each child of a split must receive.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 24,
            min_samples_split: 2,
            min_samples_leaf: 1,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Class probabilities (leaf class fractions) — the per-tree
        /// confidence estimates the paper's §5.3 partition relies on.
        probabilities: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART classification tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    feature_count: usize,
    class_count: usize,
    /// Unnormalized gini importance per feature: Σ over splits of
    /// (node samples / total samples) × impurity decrease.
    importances: Vec<f64>,
    node_count_leaves: usize,
    max_depth_reached: usize,
}

/// Midpoint threshold between two adjacent distinct feature values.
///
/// When the values are so close that the midpoint rounds up to `hi`
/// (which would send both groups left and produce an empty child), fall
/// back to `lo`: the split `v <= lo` still separates the two values.
fn threshold_between(lo: f64, hi: f64) -> f64 {
    let mid = lo + (hi - lo) / 2.0;
    if mid >= hi {
        lo
    } else {
        mid
    }
}

/// Gini impurity `2p(1−p)` generalized to k classes: `1 − Σ pᵢ²`.
pub(crate) fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let sum_sq: f64 = counts.iter().map(|c| c * c).sum();
    1.0 - sum_sq / (total * total)
}

impl DecisionTree {
    /// Fits a tree on the rows of `data` selected by `indices`
    /// (duplicates allowed: bootstrap), considering `max_features`
    /// randomly chosen features at each split.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or `max_features` is 0 or exceeds
    /// the feature count.
    pub fn fit<R: Rng + ?Sized>(
        data: &Dataset,
        indices: &[usize],
        params: &TreeParams,
        max_features: usize,
        rng: &mut R,
    ) -> DecisionTree {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        assert!(
            max_features >= 1 && max_features <= data.feature_count(),
            "max_features must be in 1..={}, got {max_features}",
            data.feature_count()
        );

        let mut tree = DecisionTree {
            nodes: Vec::new(),
            feature_count: data.feature_count(),
            class_count: data.class_count(),
            importances: vec![0.0; data.feature_count()],
            node_count_leaves: 0,
            max_depth_reached: 0,
        };
        let mut work: Vec<usize> = indices.to_vec();
        let total = work.len() as f64;
        let len = work.len();
        tree.grow(data, &mut work, 0, len, 0, params, max_features, total, rng);
        tree
    }

    /// Recursively grows the subtree over `work[start..end]`, returning
    /// the new node's index. `work` is partitioned in place.
    #[allow(clippy::too_many_arguments)]
    fn grow<R: Rng + ?Sized>(
        &mut self,
        data: &Dataset,
        work: &mut Vec<usize>,
        start: usize,
        end: usize,
        depth: usize,
        params: &TreeParams,
        max_features: usize,
        total: f64,
        rng: &mut R,
    ) -> usize {
        let n = end - start;
        self.max_depth_reached = self.max_depth_reached.max(depth);

        let mut counts = vec![0.0_f64; self.class_count];
        for &i in &work[start..end] {
            counts[data.label(i)] += 1.0;
        }
        let node_gini = gini(&counts, n as f64);

        let make_leaf = |tree: &mut DecisionTree, counts: Vec<f64>| -> usize {
            let probabilities = counts.iter().map(|c| c / n as f64).collect();
            tree.nodes.push(Node::Leaf { probabilities });
            tree.node_count_leaves += 1;
            tree.nodes.len() - 1
        };

        if depth >= params.max_depth
            || n < params.min_samples_split
            || node_gini <= 0.0
            || n < 2 * params.min_samples_leaf
        {
            return make_leaf(self, counts);
        }

        let best = self.best_split(
            data,
            &work[start..end],
            &counts,
            node_gini,
            max_features,
            params,
            rng,
        );
        let Some((feature, threshold, decrease)) = best else {
            return make_leaf(self, counts);
        };

        // Partition work[start..end] in place: left = value <= threshold.
        let slice = &mut work[start..end];
        let mut mid = 0usize;
        for i in 0..slice.len() {
            if data.row(slice[i])[feature] <= threshold {
                slice.swap(i, mid);
                mid += 1;
            }
        }
        debug_assert!(mid > 0 && mid < n, "split produced an empty child");

        self.importances[feature] += (n as f64 / total) * decrease;

        // Reserve this node's slot before growing children.
        self.nodes.push(Node::Leaf {
            probabilities: Vec::new(),
        });
        let me = self.nodes.len() - 1;

        let left = self.grow(
            data,
            work,
            start,
            start + mid,
            depth + 1,
            params,
            max_features,
            total,
            rng,
        );
        let right = self.grow(
            data,
            work,
            start + mid,
            end,
            depth + 1,
            params,
            max_features,
            total,
            rng,
        );
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Finds the best `(feature, threshold, impurity decrease)` over a
    /// random subset of features, or `None` if no valid split improves
    /// impurity.
    #[allow(clippy::too_many_arguments)] // split search threads the parent's cached stats
    fn best_split<R: Rng + ?Sized>(
        &self,
        data: &Dataset,
        samples: &[usize],
        parent_counts: &[f64],
        parent_gini: f64,
        max_features: usize,
        params: &TreeParams,
        rng: &mut R,
    ) -> Option<(usize, f64, f64)> {
        let n = samples.len();
        let nf = data.feature_count();

        // Partial Fisher–Yates: the first `max_features` entries become
        // the candidate features.
        let mut candidates: Vec<usize> = (0..nf).collect();
        for i in 0..max_features.min(nf) {
            let j = rng.gen_range(i..nf);
            candidates.swap(i, j);
        }

        let mut best: Option<(usize, f64, f64)> = None;
        let mut pairs: Vec<(f64, usize)> = Vec::with_capacity(n);

        for &feature in &candidates[..max_features] {
            pairs.clear();
            pairs.extend(
                samples
                    .iter()
                    .map(|&i| (data.row(i)[feature], data.label(i))),
            );
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            if pairs[0].0 == pairs[n - 1].0 {
                continue; // constant feature here
            }

            let mut left_counts = vec![0.0_f64; self.class_count];
            let mut right_counts = parent_counts.to_vec();
            let mut left_n = 0.0;
            let mut right_n = n as f64;

            for k in 0..n - 1 {
                let (value, label) = pairs[k];
                left_counts[label] += 1.0;
                right_counts[label] -= 1.0;
                left_n += 1.0;
                right_n -= 1.0;

                let next_value = pairs[k + 1].0;
                if value == next_value {
                    continue; // can't split between equal values
                }
                let left_size = (k + 1) as f64;
                let right_size = (n - k - 1) as f64;
                if (left_size as usize) < params.min_samples_leaf
                    || (right_size as usize) < params.min_samples_leaf
                {
                    continue;
                }
                let weighted = (left_n / n as f64) * gini(&left_counts, left_n)
                    + (right_n / n as f64) * gini(&right_counts, right_n);
                // Zero-gain splits are admissible (as in scikit-learn's
                // CART): children may become separable even when this
                // level's gain is zero (e.g. XOR). Termination is still
                // guaranteed because both children are strictly smaller.
                let decrease = (parent_gini - weighted).max(0.0);
                match best {
                    Some((_, _, best_dec)) if best_dec >= decrease => {}
                    _ => best = Some((feature, threshold_between(value, next_value), decrease)),
                }
            }
        }
        best
    }

    /// Class-probability estimates for one feature vector.
    pub fn predict_proba(&self, features: &[f64]) -> &[f64] {
        assert_eq!(
            features.len(),
            self.feature_count,
            "expected {} features, got {}",
            self.feature_count,
            features.len()
        );
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { probabilities } => return probabilities,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicted class (argmax of probabilities; ties go to the lower
    /// class index).
    pub fn predict(&self, features: &[f64]) -> usize {
        let probs = self.predict_proba(features);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .expect("at least two classes")
    }

    /// Unnormalized gini importances (one per feature).
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.node_count_leaves
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Deepest node depth reached during growth.
    pub fn depth(&self) -> usize {
        self.max_depth_reached
    }

    /// Renders the tree as indented text, resolving feature indices to
    /// `feature_names` — the classic interpretability dump:
    ///
    /// ```text
    /// hist_g2_life_avg <= 12.50
    ///   size_change_rate <= 0.01
    ///     leaf [0.86, 0.14]
    ///     leaf [0.42, 0.58]
    ///   leaf [0.10, 0.90]
    /// ```
    ///
    /// `max_depth` truncates deep subtrees with an ellipsis line.
    ///
    /// # Panics
    ///
    /// Panics if `feature_names` does not match the training feature
    /// count.
    pub fn dump(&self, feature_names: &[String], max_depth: usize) -> String {
        assert_eq!(
            feature_names.len(),
            self.feature_count,
            "expected {} feature names",
            self.feature_count
        );
        let mut out = String::new();
        self.dump_node(0, 0, max_depth, feature_names, &mut out);
        out
    }

    fn dump_node(
        &self,
        idx: usize,
        depth: usize,
        max_depth: usize,
        names: &[String],
        out: &mut String,
    ) {
        let indent = "  ".repeat(depth);
        match &self.nodes[idx] {
            Node::Leaf { probabilities } => {
                let probs: Vec<String> = probabilities.iter().map(|p| format!("{p:.2}")).collect();
                out.push_str(&format!("{indent}leaf [{}]\n", probs.join(", ")));
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if depth >= max_depth {
                    out.push_str(&format!("{indent}…\n"));
                    return;
                }
                out.push_str(&format!("{indent}{} <= {threshold:.4}\n", names[*feature]));
                self.dump_node(*left, depth + 1, max_depth, names, out);
                self.dump_node(*right, depth + 1, max_depth, names, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn axis_dataset() -> Dataset {
        // Perfectly separable on feature 0 at 0.5.
        let mut d = Dataset::new(vec!["x".into(), "noise".into()], 2);
        for i in 0..40 {
            let x = i as f64 / 40.0;
            d.push(vec![x, (i % 5) as f64], (x > 0.5) as usize);
        }
        d
    }

    #[test]
    fn gini_formula() {
        assert_eq!(gini(&[5.0, 5.0], 10.0), 0.5);
        assert_eq!(gini(&[10.0, 0.0], 10.0), 0.0);
        assert!((gini(&[8.0, 2.0], 10.0) - 0.32).abs() < 1e-12);
        assert_eq!(gini(&[], 0.0), 0.0);
    }

    #[test]
    fn separable_data_is_learned_exactly() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        for i in 0..d.len() {
            assert_eq!(tree.predict(d.row(i)), d.label(i));
        }
        // All importance should be on the informative feature.
        assert!(tree.importances()[0] > 0.0);
        assert_eq!(tree.importances()[1], 0.0);
    }

    #[test]
    fn depth_limit_respected() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let params = TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let tree = DecisionTree::fit(&d, &idx, &params, 2, &mut rng);
        assert!(tree.depth() <= 1);
        assert!(tree.leaf_count() <= 2);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let params = TreeParams {
            min_samples_leaf: 15,
            ..TreeParams::default()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let tree = DecisionTree::fit(&d, &idx, &params, 2, &mut rng);
        // With 40 samples and leaves >= 15 the tree can split at most
        // once or twice; every leaf probability must come from >= 15
        // samples, so no leaf can be "pure by 1 sample".
        assert!(tree.leaf_count() <= 3);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..10 {
            d.push(vec![i as f64], 1);
        }
        let idx: Vec<usize> = (0..10).collect();
        let mut rng = SmallRng::seed_from_u64(4);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 1, &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba(&[5.0]), &[0.0, 1.0]);
    }

    #[test]
    fn probabilities_reflect_leaf_fractions() {
        // Force a single root leaf by max_depth = 0 on a 30/70 mix.
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..10 {
            d.push(vec![i as f64], (i >= 3) as usize);
        }
        let idx: Vec<usize> = (0..10).collect();
        let params = TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let tree = DecisionTree::fit(&d, &idx, &params, 1, &mut rng);
        let probs = tree.predict_proba(&[0.0]);
        assert!((probs[0] - 0.3).abs() < 1e-12);
        assert!((probs[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let t1 = DecisionTree::fit(
            &d,
            &idx,
            &TreeParams::default(),
            1,
            &mut SmallRng::seed_from_u64(7),
        );
        let t2 = DecisionTree::fit(
            &d,
            &idx,
            &TreeParams::default(),
            1,
            &mut SmallRng::seed_from_u64(7),
        );
        assert_eq!(t1, t2);
    }

    #[test]
    fn duplicate_indices_work() {
        let d = axis_dataset();
        let idx = vec![0, 0, 0, 39, 39, 39];
        let mut rng = SmallRng::seed_from_u64(8);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        assert_eq!(tree.predict(d.row(0)), 0);
        assert_eq!(tree.predict(d.row(39)), 1);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_leaf_probabilities_sum_to_one(
                rows in prop::collection::vec((0.0..1.0_f64, 0.0..1.0_f64, 0usize..2), 2..80),
                query in (0.0..1.0_f64, 0.0..1.0_f64),
            ) {
                let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
                for (a, b, label) in &rows {
                    d.push(vec![*a, *b], *label);
                }
                let idx: Vec<usize> = (0..d.len()).collect();
                let mut rng = SmallRng::seed_from_u64(1);
                let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
                let probs = tree.predict_proba(&[query.0, query.1]);
                let total: f64 = probs.iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                prop_assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }

            #[test]
            fn prop_training_rows_predict_their_leaf_majority(
                rows in prop::collection::vec((0.0..1.0_f64, 0usize..2), 4..60),
            ) {
                // With unlimited depth and leaf size 1, any training row
                // with a unique feature value is classified exactly.
                let mut d = Dataset::new(vec!["x".into()], 2);
                for (x, label) in &rows {
                    d.push(vec![*x], *label);
                }
                let idx: Vec<usize> = (0..d.len()).collect();
                let mut rng = SmallRng::seed_from_u64(2);
                // Depth must exceed the row count: pathological splits
                // can peel one row per level.
                let params = TreeParams {
                    max_depth: rows.len() + 1,
                    ..TreeParams::default()
                };
                let tree = DecisionTree::fit(&d, &idx, &params, 1, &mut rng);
                for i in 0..d.len() {
                    let x = d.row(i)[0];
                    let unique = rows.iter().filter(|(v, _)| *v == x).count() == 1;
                    if unique {
                        prop_assert_eq!(tree.predict(d.row(i)), d.label(i));
                    }
                }
            }

            #[test]
            fn prop_importances_nonnegative(
                rows in prop::collection::vec((0.0..1.0_f64, 0.0..1.0_f64, 0usize..2), 2..60),
            ) {
                let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
                for (a, b, label) in &rows {
                    d.push(vec![*a, *b], *label);
                }
                let idx: Vec<usize> = (0..d.len()).collect();
                let mut rng = SmallRng::seed_from_u64(3);
                let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
                prop_assert!(tree.importances().iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn dump_renders_structure() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = SmallRng::seed_from_u64(30);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        let names = vec!["x".to_string(), "noise".to_string()];
        let text = tree.dump(&names, 10);
        assert!(text.contains("x <= "), "{text}");
        assert!(text.contains("leaf ["), "{text}");
        // Truncation at depth 0 shows only the ellipsis.
        let truncated = tree.dump(&names, 0);
        assert_eq!(truncated.trim(), "…");
    }

    #[test]
    #[should_panic]
    fn dump_rejects_wrong_name_count() {
        let d = axis_dataset();
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = SmallRng::seed_from_u64(31);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        tree.dump(&["only-one".to_string()], 5);
    }

    #[test]
    fn xor_needs_depth_two() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        for i in 0..200 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            d.push(vec![a, b], ((a != b) as usize).min(1));
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = SmallRng::seed_from_u64(9);
        let tree = DecisionTree::fit(&d, &idx, &TreeParams::default(), 2, &mut rng);
        assert_eq!(tree.predict(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict(&[1.0, 1.0]), 0);
        assert_eq!(tree.predict(&[1.0, 0.0]), 1);
        assert_eq!(tree.predict(&[0.0, 1.0]), 1);
    }
}
