//! `trace-schema-check` — validates the structure of a
//! `run_trace.json` so sink drift fails the build.
//!
//! ```text
//! cargo run -p survdb-obs --bin trace-schema-check -- [PATH ...]
//! ```
//!
//! Each PATH (default `artifacts/run_trace.json`) must parse and
//! satisfy the `survdb-run-trace/v1` schema (see `obs::trace`). Exits
//! nonzero on the first violation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths = if args.is_empty() {
        vec!["artifacts/run_trace.json".to_string()]
    } else {
        args
    };

    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                obs::error!("schema-check", "cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = obs::trace::validate_run_trace(&text) {
            obs::error!("schema-check", "{path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "[schema-check] {path}: valid {}",
            obs::trace::RUN_TRACE_SCHEMA
        );
    }
    ExitCode::SUCCESS
}
