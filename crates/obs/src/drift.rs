//! Prediction-drift monitoring: a reference score histogram versus a
//! live one, with a deterministic divergence statistic.
//!
//! The survivability model's output distribution over the training
//! corpus is persisted in `scoring.json` (`probability_histogram`).
//! A serving daemon seeds a [`DriftMonitor`] with that histogram and
//! feeds every scored probability into the live side; the monitor
//! then answers "does what the model says in production still look
//! like what it said at training time" — the Doppler-style
//! continuously-monitored-predictor loop (ROADMAP item 3).
//!
//! Both histograms use the same ten calibration buckets as every
//! other score histogram in the workspace ([`score_bucket`]: decile
//! `b` covers `[b/10, (b+1)/10)`, the last bucket closing at 1.0).
//! The divergence statistic is the **total variation distance**
//! between the two normalized histograms — `0.5 * Σ |live_b/L −
//! ref_b/R|` — in `[0, 1]`, 0 when the distributions agree exactly,
//! 1 when they are disjoint. It is a pure function of the integer
//! bucket counts evaluated in fixed bucket order, so it is
//! byte-deterministic and safe to place in a deterministic artifact
//! section.

use std::sync::atomic::{AtomicU64, Ordering};

/// Calibration buckets per histogram (score deciles).
pub const DRIFT_BUCKETS: usize = 10;

/// The calibration bucket a positive-class probability lands in:
/// bucket `b` covers `[b/10, (b+1)/10)`, except the last, which
/// closes at 1.0. This is the workspace-wide score-histogram
/// convention (`serve::histogram_bucket` delegates here).
pub fn score_bucket(p: f64) -> usize {
    ((p * 10.0).floor() as usize).min(DRIFT_BUCKETS - 1)
}

/// A thread-safe reference-vs-live score histogram pair. `record` is
/// one relaxed atomic increment, so the batcher can feed every scored
/// probability without a lock.
pub struct DriftMonitor {
    reference: [u64; DRIFT_BUCKETS],
    live: [AtomicU64; DRIFT_BUCKETS],
}

impl DriftMonitor {
    /// A monitor seeded with the training-time score histogram.
    pub fn new(reference: [u64; DRIFT_BUCKETS]) -> DriftMonitor {
        DriftMonitor {
            reference,
            live: Default::default(),
        }
    }

    /// Records one scored probability on the live side; returns the
    /// calibration bucket it landed in.
    pub fn record(&self, p: f64) -> usize {
        let bucket = score_bucket(p);
        self.live[bucket].fetch_add(1, Ordering::Relaxed);
        bucket
    }

    /// A point-in-time copy of both histograms.
    pub fn snapshot(&self) -> DriftSnapshot {
        let mut live = [0u64; DRIFT_BUCKETS];
        for (out, cell) in live.iter_mut().zip(self.live.iter()) {
            *out = cell.load(Ordering::Relaxed);
        }
        DriftSnapshot {
            reference: self.reference,
            live,
        }
    }
}

/// A point-in-time copy of a [`DriftMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftSnapshot {
    /// The training-time (reference) score histogram.
    pub reference: [u64; DRIFT_BUCKETS],
    /// The live score histogram accumulated while serving.
    pub live: [u64; DRIFT_BUCKETS],
}

impl DriftSnapshot {
    /// Total live observations (scored probabilities recorded).
    pub fn total(&self) -> u64 {
        self.live.iter().sum()
    }

    /// Total reference observations.
    pub fn reference_total(&self) -> u64 {
        self.reference.iter().sum()
    }

    /// Total variation distance between the normalized reference and
    /// live histograms, in `[0, 1]`. Returns 0.0 while either side is
    /// empty (no evidence of drift yet). Deterministic: fixed bucket
    /// order over integer counts.
    pub fn divergence(&self) -> f64 {
        let live_total = self.total();
        let reference_total = self.reference_total();
        if live_total == 0 || reference_total == 0 {
            return 0.0;
        }
        let mut distance = 0.0;
        for b in 0..DRIFT_BUCKETS {
            let live = self.live[b] as f64 / live_total as f64;
            let reference = self.reference[b] as f64 / reference_total as f64;
            distance += (live - reference).abs();
        }
        0.5 * distance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_buckets_are_half_open_deciles() {
        assert_eq!(score_bucket(0.0), 0);
        assert_eq!(score_bucket(0.0999), 0);
        assert_eq!(score_bucket(0.1), 1);
        assert_eq!(score_bucket(0.55), 5);
        assert_eq!(score_bucket(0.9999), 9);
        assert_eq!(score_bucket(1.0), 9);
    }

    #[test]
    fn identical_distributions_have_zero_divergence() {
        let reference = [10, 20, 30, 0, 0, 0, 0, 0, 20, 20];
        let monitor = DriftMonitor::new(reference);
        // Live side proportional to the reference (half the volume).
        for (b, &count) in reference.iter().enumerate() {
            for _ in 0..count / 2 {
                monitor.record(b as f64 / 10.0 + 0.05);
            }
        }
        let snapshot = monitor.snapshot();
        assert_eq!(snapshot.total(), 50);
        assert_eq!(snapshot.divergence(), 0.0);
    }

    #[test]
    fn disjoint_distributions_have_unit_divergence() {
        let monitor = DriftMonitor::new([100, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        for _ in 0..7 {
            monitor.record(0.95);
        }
        let snapshot = monitor.snapshot();
        assert_eq!(snapshot.live[9], 7);
        assert_eq!(snapshot.divergence(), 1.0);
    }

    #[test]
    fn empty_sides_report_no_drift() {
        let fresh = DriftMonitor::new([1; DRIFT_BUCKETS]).snapshot();
        assert_eq!(fresh.divergence(), 0.0);
        let unseeded = DriftMonitor::new([0; DRIFT_BUCKETS]);
        unseeded.record(0.5);
        assert_eq!(unseeded.snapshot().divergence(), 0.0);
    }

    #[test]
    fn divergence_is_a_pure_function_of_counts() {
        let snapshot = DriftSnapshot {
            reference: [5, 5, 10, 10, 10, 10, 10, 10, 15, 15],
            live: [2, 2, 8, 8, 12, 12, 8, 8, 20, 20],
        };
        let d1 = snapshot.divergence();
        let d2 = snapshot.divergence();
        assert_eq!(d1.to_bits(), d2.to_bits());
        assert!(d1 > 0.0 && d1 < 1.0, "{d1}");
    }
}
