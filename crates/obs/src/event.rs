//! Structured events with levels and a machine-readable sink.

use crate::registry;
use std::fmt;
use std::io::Write;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Diagnostic detail; recorded, never echoed by default.
    Debug,
    /// Progress and milestones.
    Info,
    /// Something degraded but the run continues.
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    /// Lowercase name (`"warn"`), as rendered in the run trace.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses the lowercase name back into a level.
    pub fn parse_name(s: &str) -> Option<Level> {
        Some(match s {
            "debug" => Level::Debug,
            "info" => Level::Info,
            "warn" => Level::Warn,
            "error" => Level::Error,
            _ => return None,
        })
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Records a structured event.
///
/// With a registry installed the event lands in its machine-readable
/// log and echoes to stderr at the registry's echo level and above
/// (default `Warn`). With none installed, `Info` and above echo to
/// stderr so command-line tools stay usable without wiring a registry
/// first.
pub fn event(level: Level, target: &'static str, message: String) {
    match registry::record_event(level, target, message.clone()) {
        Some(true) => emit_stderr(level, target, &message),
        Some(false) => {}
        None => {
            if level >= Level::Info {
                emit_stderr(level, target, &message);
            }
        }
    }
}

/// Like [`event`], but only renders the message when it will be
/// recorded or echoed — the form the level macros expand to.
pub fn event_with(level: Level, target: &'static str, message: impl FnOnce() -> String) {
    if registry::enabled() || level >= Level::Info {
        event(level, target, message());
    }
}

fn emit_stderr(level: Level, target: &'static str, message: &str) {
    // Deliberately a locked writeln rather than the std stderr print
    // macro: this sink is the one place obs writes to stderr, and CI
    // grep-gates that macro out of `crates/`.
    let stderr = std::io::stderr();
    let _ = writeln!(stderr.lock(), "[{level} {target}] {message}");
}
