//! A minimal deterministic JSON tree: renderer and parser.
//!
//! `obs` sits below every other workspace crate, so it cannot use
//! `survdb::json`; this module mirrors its rendering rules (two-space
//! pretty printing, keys in push order, the one float rule: finite
//! integral values keep a `.1` decimal, everything else prints Rust's
//! shortest roundtrip form, non-finite becomes `null`). The parser
//! exists so the `trace-schema-check` binary can validate
//! `run_trace.json` without external dependencies.

/// A JSON value with deterministic rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonV {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (renders without a decimal point).
    UInt(u64),
    /// A float (renders with at least one decimal; non-finite → null).
    Float(f64),
    /// A string (escaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonV>),
    /// An object; keys render in push order.
    Obj(Vec<(String, JsonV)>),
}

impl JsonV {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, JsonV)>) -> JsonV {
        JsonV::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders as pretty-printed JSON (two-space indent) with a
    /// trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders as single-line compact JSON (no spaces, no trailing
    /// newline) — the JSONL form. Value rendering (float rule, string
    /// escapes) matches [`JsonV::render`] exactly.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonV::Null => out.push_str("null"),
            JsonV::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonV::UInt(v) => out.push_str(&v.to_string()),
            JsonV::Float(v) => push_f64(out, *v),
            JsonV::Str(s) => push_escaped(out, s),
            JsonV::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonV::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&JsonV> {
        match self {
            JsonV::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonV::Null => out.push_str("null"),
            JsonV::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonV::UInt(v) => out.push_str(&v.to_string()),
            JsonV::Float(v) => push_f64(out, *v),
            JsonV::Str(s) => push_escaped(out, s),
            JsonV::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            JsonV::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    push_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null");
    }
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`JsonV`] tree. Object key order is
/// preserved. Numbers without `.`/`e` and without a sign parse as
/// [`JsonV::UInt`]; everything else numeric parses as [`JsonV::Float`].
pub fn parse(text: &str) -> Result<JsonV, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonV) -> Result<JsonV, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonV, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonV::Null),
            Some(b't') => self.literal("true", JsonV::Bool(true)),
            Some(b'f') => self.literal("false", JsonV::Bool(false)),
            Some(b'"') => Ok(JsonV::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "surrogate \\u escape".to_string())?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonV, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !text.contains(['.', 'e', 'E', '-']) {
            text.parse::<u64>()
                .map(JsonV::UInt)
                .map_err(|e| format!("bad integer {text}: {e}"))
        } else {
            text.parse::<f64>()
                .map(JsonV::Float)
                .map_err(|e| format!("bad number {text}: {e}"))
        }
    }

    fn array(&mut self) -> Result<JsonV, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonV::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonV::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonV, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonV::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonV::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_like_survdb_json() {
        let v = JsonV::obj(vec![
            ("name", JsonV::Str("x".into())),
            ("points", JsonV::Arr(vec![JsonV::UInt(1), JsonV::UInt(2)])),
            ("empty", JsonV::Arr(vec![])),
        ]);
        assert_eq!(
            v.render(),
            "{\n  \"name\": \"x\",\n  \"points\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}\n"
        );
        let mut f = String::new();
        push_f64(&mut f, 17.0);
        assert_eq!(f, "17.0");
    }

    #[test]
    fn compact_rendering_matches_pretty_values() {
        let v = JsonV::obj(vec![
            ("name", JsonV::Str("x y".into())),
            (
                "points",
                JsonV::Arr(vec![JsonV::UInt(1), JsonV::Float(2.5)]),
            ),
            ("empty", JsonV::Obj(vec![])),
            ("flag", JsonV::Bool(false)),
        ]);
        assert_eq!(
            v.render_compact(),
            "{\"name\":\"x y\",\"points\":[1,2.5],\"empty\":{},\"flag\":false}"
        );
        // Compact output reparses to the same tree as pretty output.
        assert_eq!(parse(&v.render_compact()).unwrap(), v);
    }

    #[test]
    fn parse_roundtrips_render() {
        let v = JsonV::obj(vec![
            ("a", JsonV::UInt(7)),
            ("b", JsonV::Float(0.125)),
            ("c", JsonV::Str("two\nlines \"quoted\"".into())),
            (
                "d",
                JsonV::Arr(vec![JsonV::Null, JsonV::Bool(true), JsonV::Obj(vec![])]),
            ),
        ]);
        let text = v.render();
        let back = parse(&text).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn parse_distinguishes_uint_and_float() {
        assert_eq!(parse("42").unwrap(), JsonV::UInt(42));
        assert_eq!(parse("42.0").unwrap(), JsonV::Float(42.0));
        assert_eq!(parse("-1").unwrap(), JsonV::Float(-1.0));
        assert_eq!(parse("1e3").unwrap(), JsonV::Float(1000.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
