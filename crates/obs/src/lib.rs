//! Observability for the survdb pipeline: hierarchical span timers,
//! typed counters/gauges, and a structured event log, all feeding a
//! deterministic run trace (`artifacts/run_trace.json`).
//!
//! # Design
//!
//! The [`Registry`] is *global-free*: callers create one, read it, and
//! drop it — nothing is allocated at process start and no state
//! outlives the owner. Deeply nested library code (tree growing, fold
//! evaluation, ingest repair) still needs somewhere to report without
//! threading a handle through every signature, so a registry can be
//! *installed* into a process-wide slot for a scope
//! ([`Registry::install`]); instrumentation points consult the slot
//! through one relaxed atomic load. With no registry installed every
//! probe is a load-and-branch — near-zero cost, verified by the
//! `bench_model_selection` Criterion comparison.
//!
//! # Determinism
//!
//! Everything the pipeline *does* is deterministic in its inputs
//! (seeded RNG streams, `forest::parallel::run_units` index-slotted
//! work queues), so counts of work done — rows repaired, nodes
//! expanded, folds completed, spans entered — are identical across
//! runs and thread counts. Wall-clock time is not. The run trace
//! therefore splits into a `deterministic` section (counters, gauges,
//! span counts, event counts) that must be byte-identical run to run,
//! and a `nondeterministic` section (span timings, thread attribution,
//! the raw event log) that may vary. Span identity is the `/`-joined
//! lexical path of nested [`span!`] guards; [`SpanPath`] lets a work
//! queue propagate the submitting thread's path onto worker threads so
//! paths, too, are thread-count invariant.
//!
//! The serving layer adds two streaming primitives on top:
//! [`sketch::Sketch`] (a mergeable log-spaced fixed-bucket
//! histogram/quantile sketch, registered by name through [`observe`]
//! and rendered by [`render_metrics`]) and [`drift::DriftMonitor`]
//! (reference-vs-live prediction-score histograms with a
//! deterministic total-variation divergence). Sketch *values* are
//! wall-clock; observation *counts* follow the same determinism
//! contract as counters.

pub mod drift;
pub mod event;
pub mod jsonv;
pub mod registry;
pub mod render;
pub mod sketch;
pub mod span;
pub mod trace;

pub use drift::{score_bucket, DriftMonitor, DriftSnapshot, DRIFT_BUCKETS};
pub use event::{event, event_with, Level};
pub use registry::{
    count, count_many, enabled, gauge, observe, observe_n, EventRecord, InstallGuard, Registry,
    Snapshot, SpanSnapshot,
};
pub use render::render_metrics;
pub use sketch::{Sketch, SKETCH_BUCKETS};
pub use span::{enter_span, SpanGuard, SpanPath};

/// Opens a hierarchical span: `let _span = obs::span!("grid_search");`.
///
/// The span closes when the guard drops; elapsed time and the nesting
/// path accumulate in the installed registry (no-op when none is).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::enter_span($name)
    };
}

/// Records a debug-level structured event.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => {
        $crate::event_with($crate::Level::Debug, $target, || format!($($arg)+))
    };
}

/// Records an info-level structured event (echoed to stderr when no
/// registry is installed).
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => {
        $crate::event_with($crate::Level::Info, $target, || format!($($arg)+))
    };
}

/// Records a warn-level structured event (echoed to stderr).
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => {
        $crate::event_with($crate::Level::Warn, $target, || format!($($arg)+))
    };
}

/// Records an error-level structured event (echoed to stderr).
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => {
        $crate::event_with($crate::Level::Error, $target, || format!($($arg)+))
    };
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Registry installation is process-global; obs tests that install
    //! serialize on this lock.
    pub(crate) static INSTALL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
