//! The metrics registry and its scoped process-wide installation.

use crate::event::Level;
use crate::sketch::Sketch;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// One span path's accumulated statistics.
#[derive(Debug, Default, Clone)]
struct SpanStat {
    count: u64,
    total_ns: u128,
    threads: BTreeSet<u64>,
}

/// One recorded structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Arrival order within the registry (0-based).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// The subsystem that emitted the event (static, lowercase).
    pub target: &'static str,
    /// Rendered message text.
    pub message: String,
}

pub(crate) struct Inner {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    sketches: Mutex<BTreeMap<&'static str, Sketch>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
    events: Mutex<Vec<EventRecord>>,
    event_seq: AtomicU64,
    stderr_level: Level,
}

impl Inner {
    fn new(stderr_level: Level) -> Inner {
        Inner {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            sketches: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
            event_seq: AtomicU64::new(0),
            stderr_level,
        }
    }

    pub(crate) fn record_span(&self, path: String, elapsed: Duration, thread: u64) {
        let mut spans = lock(&self.spans);
        let stat = spans.entry(path).or_default();
        stat.count += 1;
        stat.total_ns += elapsed.as_nanos();
        stat.threads.insert(thread);
    }

    pub(crate) fn record_event(&self, level: Level, target: &'static str, message: String) -> bool {
        let seq = self.event_seq.fetch_add(1, Ordering::Relaxed);
        lock(&self.events).push(EventRecord {
            seq,
            level,
            target,
            message,
        });
        level >= self.stderr_level
    }
}

/// A collection of counters, gauges, span statistics, and events.
///
/// Global-free: create one where the run starts, [`install`] it for
/// the duration, and [`snapshot`] it at the end. Dropping the registry
/// (after its guard) releases everything.
///
/// [`install`]: Registry::install
/// [`snapshot`]: Registry::snapshot
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// A fresh, empty registry. Events at `Warn` and above are echoed
    /// to stderr while this registry is installed.
    pub fn new() -> Registry {
        Registry::with_stderr_level(Level::Warn)
    }

    /// A registry echoing events at `level` and above to stderr while
    /// installed (use `Level::Error` to quieten, `Level::Debug` for
    /// everything).
    pub fn with_stderr_level(level: Level) -> Registry {
        Registry {
            inner: Arc::new(Inner::new(level)),
        }
    }

    /// Installs this registry into the process-wide slot until the
    /// returned guard drops. Instrumentation throughout the workspace
    /// reports to the installed registry; with none installed every
    /// probe is a single relaxed atomic load.
    ///
    /// Installs nest: dropping the guard restores whatever was
    /// installed before. The guard should drop on the thread that
    /// created it, after all parallel work under it has joined.
    #[must_use = "the registry is uninstalled when the guard drops"]
    pub fn install(&self) -> InstallGuard {
        let mut slot = SLOT.write().unwrap_or_else(|e| e.into_inner());
        let prev = slot.replace(Arc::clone(&self.inner));
        ENABLED.store(true, Ordering::Release);
        InstallGuard { prev }
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let spans = lock(&self.inner.spans)
            .iter()
            .map(|(path, stat)| {
                (
                    path.clone(),
                    SpanSnapshot {
                        count: stat.count,
                        total_ns: stat.total_ns,
                        threads: stat.threads.len() as u64,
                    },
                )
            })
            .collect();
        Snapshot {
            counters: lock(&self.inner.counters)
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: lock(&self.inner.gauges)
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            sketches: lock(&self.inner.sketches)
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
            spans,
            events: lock(&self.inner.events).clone(),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Scoped-install guard; see [`Registry::install`].
pub struct InstallGuard {
    prev: Option<Arc<Inner>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let mut slot = SLOT.write().unwrap_or_else(|e| e.into_inner());
        *slot = self.prev.take();
        ENABLED.store(slot.is_some(), Ordering::Release);
    }
}

static SLOT: RwLock<Option<Arc<Inner>>> = RwLock::new(None);
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether a registry is currently installed (one relaxed load — this
/// is the fast path every instrumentation probe starts with).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Inner) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let slot = SLOT.read().unwrap_or_else(|e| e.into_inner());
    slot.as_ref().map(|inner| f(inner))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Adds `delta` to the named counter of the installed registry.
///
/// Counter names are `'static` dotted paths (`"forest.trees_built"`).
/// Counts must describe deterministic work so the trace's
/// deterministic section stays byte-identical across runs.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_current(|inner| {
        *lock(&inner.counters).entry(name).or_insert(0) += delta;
    });
}

/// Adds several counters under one registry access — use when flushing
/// locally accumulated statistics (for example per-tree build stats).
#[inline]
pub fn count_many(entries: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    with_current(|inner| {
        let mut counters = lock(&inner.counters);
        for &(name, delta) in entries {
            *counters.entry(name).or_insert(0) += delta;
        }
    });
}

/// Sets the named gauge (last write wins). Gauge values land in the
/// deterministic trace section: set them only from deterministic
/// quantities (population sizes, configuration), never timings.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_current(|inner| {
        lock(&inner.gauges).insert(name, value);
    });
}

/// Records one observation in the named streaming sketch of the
/// installed registry.
///
/// Sketch names are `'static` dotted paths ending in their unit
/// (`"survd.stage.score_ms"`). Observed *values* may be wall-clock
/// (they render in the metrics exposition and nondeterministic
/// artifact sections only); observation *counts* must describe
/// deterministic work, like counters.
#[inline]
pub fn observe(name: &'static str, value: f64) {
    observe_n(name, value, 1);
}

/// Records `n` observations of `value` in the named sketch under one
/// registry access and one bucket increment.
#[inline]
pub fn observe_n(name: &'static str, value: f64, n: u64) {
    if !enabled() {
        return;
    }
    with_current(|inner| {
        lock(&inner.sketches)
            .entry(name)
            .or_default()
            .observe_n(value, n);
    });
}

pub(crate) fn record_span(path: String, elapsed: Duration, thread: u64) {
    with_current(|inner| inner.record_span(path, elapsed, thread));
}

/// Records an event; returns whether it should echo to stderr, or
/// `None` when no registry is installed.
pub(crate) fn record_event(level: Level, target: &'static str, message: String) -> Option<bool> {
    with_current(|inner| inner.record_event(level, target, message))
}

static THREAD_SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
}

/// A small dense per-thread id for span attribution (assignment order
/// is scheduling-dependent, so thread data is nondeterministic-only).
pub(crate) fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// One span path's statistics in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Times the span was entered (deterministic).
    pub count: u64,
    /// Total wall-clock nanoseconds across entries (nondeterministic).
    pub total_ns: u128,
    /// Distinct threads that executed the span (nondeterministic).
    pub threads: u64,
}

/// A point-in-time copy of a registry's contents.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Streaming histogram sketches by name.
    pub sketches: BTreeMap<String, Sketch>,
    /// Span statistics by `/`-joined path.
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Every recorded event in arrival order.
    pub events: Vec<EventRecord>,
}

impl Snapshot {
    /// Event tallies keyed `"<level>:<target>"` — the deterministic
    /// view of the event log (arrival order and message text may vary
    /// across schedules; the set of events emitted does not).
    pub fn event_counts(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            *out.entry(format!("{}:{}", e.level, e.target)).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::INSTALL_LOCK;

    #[test]
    fn disabled_probes_are_no_ops() {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        count("nope", 3);
        gauge("nope", 1.0);
        crate::event_with(Level::Debug, "nope", || unreachable!("must not render"));
        let registry = Registry::new();
        assert!(registry.snapshot().counters.is_empty());
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let registry = Registry::new();
        let guard = registry.install();
        count("a.one", 2);
        count("a.one", 3);
        count_many(&[("a.one", 1), ("b.two", 10)]);
        gauge("g", 0.5);
        gauge("g", 1.5);
        drop(guard);
        count("a.one", 100); // after uninstall: dropped
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["a.one"], 6);
        assert_eq!(snapshot.counters["b.two"], 10);
        assert_eq!(snapshot.gauges["g"], 1.5);
    }

    #[test]
    fn sketches_accumulate_and_snapshot() {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let registry = Registry::new();
        let guard = registry.install();
        observe("stage.a_ms", 1.5);
        observe("stage.a_ms", 3.0);
        observe_n("stage.b_ms", 0.25, 4);
        drop(guard);
        observe("stage.a_ms", 9.0); // after uninstall: dropped
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.sketches["stage.a_ms"].total(), 2);
        assert_eq!(snapshot.sketches["stage.b_ms"].total(), 4);
        assert_eq!(
            snapshot.sketches["stage.b_ms"].counts()[crate::sketch::bucket_index(0.25)],
            4
        );
    }

    #[test]
    fn installs_nest_and_restore() {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let outer = Registry::new();
        let inner = Registry::new();
        let outer_guard = outer.install();
        count("seen", 1);
        {
            let inner_guard = inner.install();
            count("seen", 1);
            drop(inner_guard);
        }
        count("seen", 1);
        drop(outer_guard);
        assert_eq!(outer.snapshot().counters["seen"], 2);
        assert_eq!(inner.snapshot().counters["seen"], 1);
        assert!(!enabled());
    }

    #[test]
    fn events_record_with_levels() {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let registry = Registry::with_stderr_level(Level::Error);
        let guard = registry.install();
        crate::debug!("ingest", "repaired {} rows", 4);
        crate::warn!("ingest", "quarantined {}", "db-1");
        crate::warn!("ingest", "quarantined {}", "db-2");
        drop(guard);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.events.len(), 3);
        assert_eq!(snapshot.events[0].message, "repaired 4 rows");
        let counts = snapshot.event_counts();
        assert_eq!(counts["debug:ingest"], 1);
        assert_eq!(counts["warn:ingest"], 2);
        // Sequence numbers are dense and ordered on one thread.
        let seqs: Vec<u64> = snapshot.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
