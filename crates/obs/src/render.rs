//! Text exposition of a [`Snapshot`](crate::Snapshot) — the body a
//! metrics endpoint serves.
//!
//! Prometheus-flavored line format: one `family{label="key"} value`
//! line per metric, families declared with `# TYPE` comments. Keys
//! come out of the snapshot's `BTreeMap`s, so ordering is
//! deterministic; counter and gauge *values* are whatever the registry
//! accumulated (span timings are wall-clock and therefore vary run to
//! run — this is a live exposition, not the run-trace artifact).

use crate::registry::Snapshot;
use crate::sketch::{bucket_label, SKETCH_BUCKETS};
use std::fmt::Write as _;

fn escape_label(raw: &str) -> String {
    raw.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a snapshot as a text metrics exposition.
pub fn render_metrics(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        out.push_str("# TYPE survdb_counter counter\n");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(
                out,
                "survdb_counter{{name=\"{}\"}} {value}",
                escape_label(name)
            );
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("# TYPE survdb_gauge gauge\n");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(
                out,
                "survdb_gauge{{name=\"{}\"}} {value}",
                escape_label(name)
            );
        }
    }
    if !snapshot.sketches.is_empty() {
        // Prometheus histogram convention: cumulative `le` buckets.
        // Empty buckets are skipped for compactness (cumulative counts
        // at the rendered bounds stay valid); the `+Inf` bucket and
        // the `_count` line are always emitted. Bucket order is fixed
        // and bounds are exact powers of two, so the rendering is
        // byte-stable for a given set of counts.
        out.push_str("# TYPE survdb_sketch histogram\n");
        for (name, sketch) in &snapshot.sketches {
            let mut cumulative = 0u64;
            for (i, &count) in sketch.counts().iter().enumerate() {
                cumulative += count;
                if count == 0 && i != SKETCH_BUCKETS - 1 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "survdb_sketch_bucket{{name=\"{}\",le=\"{}\"}} {cumulative}",
                    escape_label(name),
                    bucket_label(i)
                );
            }
            let _ = writeln!(
                out,
                "survdb_sketch_count{{name=\"{}\"}} {}",
                escape_label(name),
                sketch.total()
            );
        }
    }
    if !snapshot.spans.is_empty() {
        out.push_str("# TYPE survdb_span_count counter\n");
        for (path, span) in &snapshot.spans {
            let _ = writeln!(
                out,
                "survdb_span_count{{path=\"{}\"}} {}",
                escape_label(path),
                span.count
            );
        }
        out.push_str("# TYPE survdb_span_total_seconds counter\n");
        for (path, span) in &snapshot.spans {
            let _ = writeln!(
                out,
                "survdb_span_total_seconds{{path=\"{}\"}} {:.6}",
                escape_label(path),
                span.total_ns as f64 / 1e9
            );
        }
    }
    out.push_str("# TYPE survdb_events_total counter\n");
    let _ = writeln!(out, "survdb_events_total {}", snapshot.events.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Snapshot, SpanSnapshot};

    #[test]
    fn renders_sorted_families() {
        let mut snapshot = Snapshot::default();
        snapshot.counters.insert("b.count".to_string(), 2);
        snapshot.counters.insert("a.count".to_string(), 1);
        snapshot.gauges.insert("depth".to_string(), 3.5);
        snapshot.spans.insert(
            "score".to_string(),
            SpanSnapshot {
                count: 4,
                total_ns: 1_500_000,
                threads: 1,
            },
        );
        let text = render_metrics(&snapshot);
        let a = text.find("survdb_counter{name=\"a.count\"} 1").unwrap();
        let b = text.find("survdb_counter{name=\"b.count\"} 2").unwrap();
        assert!(a < b, "counters sorted: {text}");
        assert!(text.contains("survdb_gauge{name=\"depth\"} 3.5"), "{text}");
        assert!(
            text.contains("survdb_span_count{path=\"score\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("survdb_span_total_seconds{path=\"score\"} 0.001500"),
            "{text}"
        );
        assert!(text.contains("survdb_events_total 0"), "{text}");
    }

    #[test]
    fn full_output_is_byte_stable_and_fully_sorted() {
        // Pins the complete exposition: family order (counters, gauges,
        // sketches, spans, events), `# TYPE` lines for every family,
        // name-sorted entries within each family, and byte-exact value
        // formatting. A change to any of these must update this test
        // deliberately.
        let mut snapshot = Snapshot::default();
        snapshot.counters.insert("b.count".to_string(), 2);
        snapshot.counters.insert("a.count".to_string(), 1);
        snapshot.gauges.insert("depth".to_string(), 3.5);
        let mut stage = crate::sketch::Sketch::new();
        stage.observe(1.0);
        stage.observe(1.0);
        stage.observe(100.0);
        snapshot.sketches.insert("stage_ms".to_string(), stage);
        snapshot.sketches.insert("a_ms".to_string(), {
            let mut s = crate::sketch::Sketch::new();
            s.observe(0.0);
            s
        });
        snapshot.spans.insert(
            "score".to_string(),
            SpanSnapshot {
                count: 4,
                total_ns: 1_500_000,
                threads: 1,
            },
        );
        let expected = "\
# TYPE survdb_counter counter
survdb_counter{name=\"a.count\"} 1
survdb_counter{name=\"b.count\"} 2
# TYPE survdb_gauge gauge
survdb_gauge{name=\"depth\"} 3.5
# TYPE survdb_sketch histogram
survdb_sketch_bucket{name=\"a_ms\",le=\"0.000244140625\"} 1
survdb_sketch_bucket{name=\"a_ms\",le=\"+Inf\"} 1
survdb_sketch_count{name=\"a_ms\"} 1
survdb_sketch_bucket{name=\"stage_ms\",le=\"1\"} 2
survdb_sketch_bucket{name=\"stage_ms\",le=\"128\"} 3
survdb_sketch_bucket{name=\"stage_ms\",le=\"+Inf\"} 3
survdb_sketch_count{name=\"stage_ms\"} 3
# TYPE survdb_span_count counter
survdb_span_count{path=\"score\"} 4
# TYPE survdb_span_total_seconds counter
survdb_span_total_seconds{path=\"score\"} 0.001500
# TYPE survdb_events_total counter
survdb_events_total 0
";
        assert_eq!(render_metrics(&snapshot), expected);
        // Byte-stable: re-rendering the same snapshot is identical.
        assert_eq!(render_metrics(&snapshot), expected);
    }

    #[test]
    fn empty_snapshot_renders_only_event_total() {
        let text = render_metrics(&Snapshot::default());
        assert_eq!(
            text,
            "# TYPE survdb_events_total counter\nsurvdb_events_total 0\n"
        );
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let mut snapshot = Snapshot::default();
        snapshot.counters.insert("weird\"name".to_string(), 1);
        let text = render_metrics(&snapshot);
        assert!(
            text.contains("survdb_counter{name=\"weird\\\"name\"} 1"),
            "{text}"
        );
    }
}
