//! A deterministic fixed-bucket streaming histogram / quantile sketch.
//!
//! The serving layer needs latency distributions without keeping a
//! full sample buffer per stage (ROADMAP item 4). A [`Sketch`] is a
//! fixed array of counters over **log-spaced bucket bounds**: bucket
//! `i` (for `1 <= i <= 44`) covers `(2^(i-13), 2^(i-12)]`, bucket 0
//! is the underflow bucket (everything at or below `2^-12`, including
//! zero and non-positive values), and the last bucket collects
//! overflow (everything above `2^32`, plus non-finite values). The
//! bounds are exact powers of two, so bucket assignment is a pure
//! integer function of the input's bit pattern — no floating-point
//! logarithm whose rounding could move a boundary value between
//! platforms or optimization levels.
//!
//! # Determinism
//!
//! Bucket counts are plain `u64` additions, so a sketch's state is
//! independent of observation order, merge order, chunking, and thread
//! count — the property the `sketch_props` proptests pin. Observed
//! *values* (stage durations) are wall-clock and vary run to run; the
//! observation *counts* are counting facts (one observation per
//! request or per row) and land in deterministic artifact sections.
//!
//! Quantile estimates ([`Sketch::quantile`]) return the upper bound of
//! the bucket containing the nearest-rank target, which makes them
//! monotone in `q` by construction and at worst one bucket width
//! (a factor of two) above the true value.

/// Smallest finite bucket exponent: bucket 0's upper bound is
/// `2^SKETCH_MIN_EXP`.
pub const SKETCH_MIN_EXP: i32 = -12;

/// Largest finite bucket exponent: the last finite bucket's upper
/// bound is `2^SKETCH_MAX_EXP`.
pub const SKETCH_MAX_EXP: i32 = 32;

/// Total bucket count: 45 finite log-spaced buckets (exponents
/// `SKETCH_MIN_EXP..=SKETCH_MAX_EXP`) plus one overflow bucket.
pub const SKETCH_BUCKETS: usize = (SKETCH_MAX_EXP - SKETCH_MIN_EXP) as usize + 2;

/// Ceiling log2 of a positive, finite, normal `f64`, computed from the
/// bit pattern so exact powers of two stay in their own bucket.
fn ceil_log2(v: f64) -> i32 {
    let bits = v.to_bits();
    let exponent = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let mantissa = bits & ((1u64 << 52) - 1);
    if mantissa == 0 {
        exponent
    } else {
        exponent + 1
    }
}

/// The bucket index a value lands in. Total function: non-positive,
/// zero, and tiny values underflow into bucket 0; values beyond
/// `2^SKETCH_MAX_EXP`, infinities, and NaN overflow into the last
/// bucket.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() {
        return SKETCH_BUCKETS - 1;
    }
    if v <= bucket_upper_bound(0) {
        // Non-positive, zero, subnormal, and tiny values underflow.
        return 0;
    }
    if v > f64::powi(2.0, SKETCH_MAX_EXP) {
        // Includes +∞.
        return SKETCH_BUCKETS - 1;
    }
    // Normal positive value within the finite range (subnormals were
    // caught by the underflow check above).
    (ceil_log2(v) - SKETCH_MIN_EXP) as usize
}

/// The upper bound of bucket `i`: `2^(SKETCH_MIN_EXP + i)` for the
/// finite buckets, `+∞` for the overflow bucket.
pub fn bucket_upper_bound(i: usize) -> f64 {
    assert!(i < SKETCH_BUCKETS, "bucket {i} out of range");
    if i == SKETCH_BUCKETS - 1 {
        f64::INFINITY
    } else {
        f64::powi(2.0, SKETCH_MIN_EXP + i as i32)
    }
}

/// The `le` label a metrics exposition renders for bucket `i`:
/// shortest-roundtrip decimal for the finite bounds, `+Inf` for the
/// overflow bucket. Byte-stable because the bounds are exact powers of
/// two.
pub fn bucket_label(i: usize) -> String {
    if i == SKETCH_BUCKETS - 1 {
        "+Inf".to_string()
    } else {
        format!("{}", bucket_upper_bound(i))
    }
}

/// A mergeable fixed-bucket streaming histogram. See the module docs
/// for the bucket scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    counts: [u64; SKETCH_BUCKETS],
    total: u64,
}

impl Sketch {
    /// An empty sketch.
    pub fn new() -> Sketch {
        Sketch {
            counts: [0; SKETCH_BUCKETS],
            total: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.observe_n(v, 1);
    }

    /// Records `n` observations of the same value under one bucket
    /// increment — the batcher uses this to attribute a batch's
    /// scoring time to each of its rows without `n` separate calls.
    pub fn observe_n(&mut self, v: f64, n: u64) {
        self.counts[bucket_index(v)] += n;
        self.total += n;
    }

    /// Adds every bucket of `other` into `self`. Addition commutes, so
    /// merge order never changes the result.
    pub fn merge(&mut self, other: &Sketch) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether the sketch has no observations.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The per-bucket counts in bucket-index order.
    pub fn counts(&self) -> &[u64; SKETCH_BUCKETS] {
        &self.counts
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket
    /// containing the `ceil(q * total)`-th observation, clamped to the
    /// largest finite bound when the rank falls in the overflow
    /// bucket (so the estimate is always renderable as JSON). Returns
    /// 0.0 on an empty sketch. Monotone non-decreasing in `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cumulative = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return if i == SKETCH_BUCKETS - 1 {
                    bucket_upper_bound(SKETCH_BUCKETS - 2)
                } else {
                    bucket_upper_bound(i)
                };
            }
        }
        bucket_upper_bound(SKETCH_BUCKETS - 2)
    }
}

impl Default for Sketch {
    fn default() -> Self {
        Sketch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_log_spaced_powers_of_two() {
        assert_eq!(bucket_upper_bound(0), 2f64.powi(SKETCH_MIN_EXP));
        assert_eq!(
            bucket_upper_bound(SKETCH_BUCKETS - 2),
            2f64.powi(SKETCH_MAX_EXP)
        );
        assert_eq!(bucket_upper_bound(SKETCH_BUCKETS - 1), f64::INFINITY);
        for i in 1..SKETCH_BUCKETS - 1 {
            assert_eq!(
                bucket_upper_bound(i),
                2.0 * bucket_upper_bound(i - 1),
                "bucket {i}"
            );
        }
    }

    #[test]
    fn exact_powers_of_two_stay_in_their_own_bucket() {
        for e in SKETCH_MIN_EXP..=SKETCH_MAX_EXP {
            let v = 2f64.powi(e);
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "2^{e} above its bound");
            assert_eq!(
                i,
                (e - SKETCH_MIN_EXP) as usize,
                "2^{e} must close its own bucket"
            );
            // Just above the bound moves up exactly one bucket.
            let above = v * (1.0 + f64::EPSILON);
            assert_eq!(bucket_index(above), i + 1, "just above 2^{e}");
        }
    }

    #[test]
    fn degenerate_values_are_total() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.5), 0);
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 2.0), 0); // subnormal
        assert_eq!(bucket_index(f64::NAN), SKETCH_BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), SKETCH_BUCKETS - 1);
        assert_eq!(bucket_index(1e300), SKETCH_BUCKETS - 1);
    }

    #[test]
    fn observe_and_merge_accumulate() {
        let mut a = Sketch::new();
        a.observe(1.0);
        a.observe(1.5);
        a.observe_n(1000.0, 3);
        let mut b = Sketch::new();
        b.observe(0.0);
        b.merge(&a);
        assert_eq!(b.total(), 6);
        assert_eq!(b.counts()[0], 1);
        assert_eq!(b.counts()[bucket_index(1.0)], 1);
        assert_eq!(b.counts()[bucket_index(1.5)], 1);
        assert_eq!(b.counts()[bucket_index(1000.0)], 3);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_and_monotone() {
        let mut s = Sketch::new();
        assert_eq!(s.quantile(0.5), 0.0);
        for _ in 0..90 {
            s.observe(1.0);
        }
        for _ in 0..10 {
            s.observe(100.0);
        }
        assert_eq!(s.quantile(0.5), bucket_upper_bound(bucket_index(1.0)));
        assert_eq!(s.quantile(0.99), bucket_upper_bound(bucket_index(100.0)));
        let mut last = 0.0;
        for k in 0..=100 {
            let q = k as f64 / 100.0;
            let v = s.quantile(q);
            assert!(v >= last, "quantile not monotone at q={q}");
            last = v;
        }
    }

    #[test]
    fn overflow_quantile_clamps_to_largest_finite_bound() {
        let mut s = Sketch::new();
        s.observe(f64::INFINITY);
        let v = s.quantile(1.0);
        assert_eq!(v, bucket_upper_bound(SKETCH_BUCKETS - 2));
        assert!(v.is_finite());
    }

    #[test]
    fn labels_are_byte_stable() {
        assert_eq!(bucket_label(0), "0.000244140625");
        assert_eq!(bucket_label(SKETCH_BUCKETS - 2), "4294967296");
        assert_eq!(bucket_label(SKETCH_BUCKETS - 1), "+Inf");
    }
}
