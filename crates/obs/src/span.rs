//! Hierarchical span timers with a thread-local nesting stack.

use crate::registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span named `name` nested under the thread's current span
/// path. Prefer the [`span!`](crate::span) macro.
///
/// With no registry installed this is a single atomic load and the
/// returned guard is inert.
pub fn enter_span(name: &'static str) -> SpanGuard {
    if !registry::enabled() {
        return SpanGuard { name, start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

/// Guard for an open span; records elapsed time and the nesting path
/// into the installed registry on drop.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(stack.last(), Some(&self.name), "span guards must nest");
            let path = stack.join("/");
            stack.pop();
            path
        });
        registry::record_span(path, elapsed, registry::thread_id());
    }
}

/// A captured span path, used to carry nesting context onto worker
/// threads so span paths are thread-count invariant.
///
/// `forest::parallel::run_units` captures the submitting thread's path
/// and adopts it on every borrowed worker; spans opened inside a work
/// unit then aggregate under the same path regardless of which thread
/// ran the unit.
#[derive(Debug, Clone)]
pub struct SpanPath(Option<Vec<&'static str>>);

impl SpanPath {
    /// The calling thread's current span path (empty capture when no
    /// registry is installed, making [`scoped`](SpanPath::scoped) free).
    pub fn capture() -> SpanPath {
        if !registry::enabled() {
            return SpanPath(None);
        }
        SpanPath(Some(STACK.with(|s| s.borrow().clone())))
    }

    /// Runs `f` with this path as the thread's span context, restoring
    /// the previous context afterwards (also on panic).
    pub fn scoped<R>(&self, f: impl FnOnce() -> R) -> R {
        let Some(path) = &self.0 else { return f() };

        struct Restore(Vec<&'static str>);
        impl Drop for Restore {
            fn drop(&mut self) {
                STACK.with(|s| *s.borrow_mut() = std::mem::take(&mut self.0));
            }
        }

        let saved = STACK.with(|s| std::mem::replace(&mut *s.borrow_mut(), path.clone()));
        let _restore = Restore(saved);
        f()
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;
    use crate::test_support::INSTALL_LOCK;
    use crate::SpanPath;

    #[test]
    fn spans_nest_into_paths() {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let registry = Registry::new();
        let guard = registry.install();
        {
            let _a = crate::span!("outer");
            {
                let _b = crate::span!("inner");
            }
            {
                let _b = crate::span!("inner");
            }
        }
        drop(guard);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.spans["outer"].count, 1);
        assert_eq!(snapshot.spans["outer/inner"].count, 2);
        assert!(snapshot.spans["outer"].total_ns >= snapshot.spans["outer/inner"].total_ns);
    }

    #[test]
    fn span_path_carries_context_to_threads() {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let registry = Registry::new();
        let guard = registry.install();
        {
            let _a = crate::span!("parent");
            let path = SpanPath::capture();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    path.scoped(|| {
                        let _c = crate::span!("child");
                    });
                    // Outside the scope the worker has no context.
                    let _d = crate::span!("orphan");
                });
            });
        }
        drop(guard);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.spans["parent/child"].count, 1);
        assert_eq!(snapshot.spans["orphan"].count, 1);
        // Two distinct threads touched spans overall.
        assert_eq!(snapshot.spans["parent/child"].threads, 1);
    }

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        {
            let _a = crate::span!("ghost");
        }
        let registry = Registry::new();
        let guard = registry.install();
        drop(guard);
        assert!(registry.snapshot().spans.is_empty());
    }
}
