//! The deterministic run trace: `artifacts/run_trace.json`.
//!
//! Layout (schema `survdb-run-trace/v1`):
//!
//! ```text
//! {
//!   "schema": "survdb-run-trace/v1",
//!   "binary": "<emitting binary>",
//!   "deterministic": {          // byte-identical across runs & thread counts
//!     "counters":     { name -> u64 },
//!     "gauges":       { name -> f64 },
//!     "span_counts":  { span path -> u64 },
//!     "event_counts": { "level:target" -> u64 }
//!   },
//!   "nondeterministic": {       // timings, scheduling, raw event log
//!     "thread_limit": u64,
//!     "span_timings": { span path -> {"total_ms", "mean_ms", "threads"} },
//!     "events":       [ {"seq", "level", "target", "message"} ]
//!   }
//! }
//! ```
//!
//! Determinism rules: everything under `deterministic` derives from
//! counts of seeded, index-slotted work, with `BTreeMap`-sorted keys;
//! wall-clock values, thread attribution, and event arrival order live
//! only under `nondeterministic`. `span_timings` must cover exactly
//! the `span_counts` keys — the schema check enforces the split.

use crate::jsonv::{self, JsonV};
use crate::registry::Snapshot;
use std::io;
use std::path::{Path, PathBuf};

/// Schema identifier for `run_trace.json`.
pub const RUN_TRACE_SCHEMA: &str = "survdb-run-trace/v1";

/// File name the trace is written under.
pub const RUN_TRACE_FILE: &str = "run_trace.json";

fn deterministic_json(snapshot: &Snapshot) -> JsonV {
    JsonV::obj(vec![
        (
            "counters",
            JsonV::Obj(
                snapshot
                    .counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), JsonV::UInt(v)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            JsonV::Obj(
                snapshot
                    .gauges
                    .iter()
                    .map(|(k, &v)| (k.clone(), JsonV::Float(v)))
                    .collect(),
            ),
        ),
        (
            "span_counts",
            JsonV::Obj(
                snapshot
                    .spans
                    .iter()
                    .map(|(k, s)| (k.clone(), JsonV::UInt(s.count)))
                    .collect(),
            ),
        ),
        (
            "event_counts",
            JsonV::Obj(
                snapshot
                    .event_counts()
                    .into_iter()
                    .map(|(k, v)| (k, JsonV::UInt(v)))
                    .collect(),
            ),
        ),
    ])
}

fn nondeterministic_json(snapshot: &Snapshot, thread_limit: usize) -> JsonV {
    JsonV::obj(vec![
        ("thread_limit", JsonV::UInt(thread_limit as u64)),
        (
            "span_timings",
            JsonV::Obj(
                snapshot
                    .spans
                    .iter()
                    .map(|(k, s)| {
                        let total_ms = s.total_ns as f64 / 1e6;
                        (
                            k.clone(),
                            JsonV::obj(vec![
                                ("total_ms", JsonV::Float(total_ms)),
                                ("mean_ms", JsonV::Float(total_ms / s.count.max(1) as f64)),
                                ("threads", JsonV::UInt(s.threads)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "events",
            JsonV::Arr(
                snapshot
                    .events
                    .iter()
                    .map(|e| {
                        JsonV::obj(vec![
                            ("seq", JsonV::UInt(e.seq)),
                            ("level", JsonV::Str(e.level.as_str().to_string())),
                            ("target", JsonV::Str(e.target.to_string())),
                            ("message", JsonV::Str(e.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders only the deterministic section — the byte string tests pin
/// across consecutive runs and across thread counts.
pub fn deterministic_section(snapshot: &Snapshot) -> String {
    deterministic_json(snapshot).render()
}

/// Renders the full run trace for `binary`.
pub fn render_run_trace(binary: &str, snapshot: &Snapshot, thread_limit: usize) -> String {
    JsonV::obj(vec![
        ("schema", JsonV::Str(RUN_TRACE_SCHEMA.to_string())),
        ("binary", JsonV::Str(binary.to_string())),
        ("deterministic", deterministic_json(snapshot)),
        (
            "nondeterministic",
            nondeterministic_json(snapshot, thread_limit),
        ),
    ])
    .render()
}

/// Writes `dir/run_trace.json` for `binary`, creating `dir` if needed.
/// Returns the written path.
pub fn write_run_trace(
    dir: &Path,
    binary: &str,
    snapshot: &Snapshot,
    thread_limit: usize,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(RUN_TRACE_FILE);
    std::fs::write(&path, render_run_trace(binary, snapshot, thread_limit))?;
    Ok(path)
}

fn expect_obj<'a>(value: &'a JsonV, what: &str) -> Result<&'a [(String, JsonV)], String> {
    match value {
        JsonV::Obj(fields) => Ok(fields),
        other => Err(format!("{what} must be an object, found {other:?}")),
    }
}

fn expect_keys(fields: &[(String, JsonV)], keys: &[&str], what: &str) -> Result<(), String> {
    let found: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if found != keys {
        return Err(format!("{what} must have keys {keys:?}, found {found:?}"));
    }
    Ok(())
}

fn expect_sorted(fields: &[(String, JsonV)], what: &str) -> Result<(), String> {
    for pair in fields.windows(2) {
        if pair[0].0 >= pair[1].0 {
            return Err(format!(
                "{what} keys must be strictly sorted: {:?} before {:?}",
                pair[0].0, pair[1].0
            ));
        }
    }
    Ok(())
}

fn expect_uint_map(value: &JsonV, what: &str) -> Result<Vec<String>, String> {
    let fields = expect_obj(value, what)?;
    expect_sorted(fields, what)?;
    for (k, v) in fields {
        if !matches!(v, JsonV::UInt(_)) {
            return Err(format!("{what}[{k:?}] must be an unsigned integer"));
        }
    }
    Ok(fields.iter().map(|(k, _)| k.clone()).collect())
}

/// Structurally validates a rendered `run_trace.json`, enforcing the
/// schema id, the section split, sorted deterministic keys, and the
/// span-counts/span-timings correspondence. Used by the
/// `trace-schema-check` binary so sink drift fails CI.
pub fn validate_run_trace(text: &str) -> Result<(), String> {
    let root = jsonv::parse(text)?;
    let fields = expect_obj(&root, "run trace")?;
    expect_keys(
        fields,
        &["schema", "binary", "deterministic", "nondeterministic"],
        "run trace",
    )?;

    match root.get("schema") {
        Some(JsonV::Str(s)) if s == RUN_TRACE_SCHEMA => {}
        other => {
            return Err(format!(
                "schema must be {RUN_TRACE_SCHEMA:?}, found {other:?}"
            ))
        }
    }
    match root.get("binary") {
        Some(JsonV::Str(s)) if !s.is_empty() => {}
        other => {
            return Err(format!(
                "binary must be a non-empty string, found {other:?}"
            ))
        }
    }

    let det = root.get("deterministic").expect("keys checked");
    let det_fields = expect_obj(det, "deterministic")?;
    expect_keys(
        det_fields,
        &["counters", "gauges", "span_counts", "event_counts"],
        "deterministic",
    )?;
    expect_uint_map(det.get("counters").expect("keys checked"), "counters")?;
    expect_uint_map(
        det.get("event_counts").expect("keys checked"),
        "event_counts",
    )?;
    let span_keys = expect_uint_map(det.get("span_counts").expect("keys checked"), "span_counts")?;
    let gauges = expect_obj(det.get("gauges").expect("keys checked"), "gauges")?;
    expect_sorted(gauges, "gauges")?;
    for (k, v) in gauges {
        if !matches!(v, JsonV::Float(_) | JsonV::Null) {
            return Err(format!("gauges[{k:?}] must be a float"));
        }
    }

    let nondet = root.get("nondeterministic").expect("keys checked");
    let nondet_fields = expect_obj(nondet, "nondeterministic")?;
    expect_keys(
        nondet_fields,
        &["thread_limit", "span_timings", "events"],
        "nondeterministic",
    )?;
    if !matches!(nondet.get("thread_limit"), Some(JsonV::UInt(_))) {
        return Err("thread_limit must be an unsigned integer".to_string());
    }

    let timings = expect_obj(
        nondet.get("span_timings").expect("keys checked"),
        "span_timings",
    )?;
    let timing_keys: Vec<String> = timings.iter().map(|(k, _)| k.clone()).collect();
    if timing_keys != span_keys {
        return Err(format!(
            "span_timings keys {timing_keys:?} must match span_counts keys {span_keys:?}"
        ));
    }
    for (path, entry) in timings {
        let entry_fields = expect_obj(entry, "span timing")?;
        expect_keys(
            entry_fields,
            &["total_ms", "mean_ms", "threads"],
            &format!("span_timings[{path:?}]"),
        )?;
        for (k, v) in entry_fields {
            let ok = match k.as_str() {
                "threads" => matches!(v, JsonV::UInt(_)),
                _ => matches!(v, JsonV::Float(_) | JsonV::Null),
            };
            if !ok {
                return Err(format!("span_timings[{path:?}].{k} has the wrong type"));
            }
        }
    }

    let events = match nondet.get("events") {
        Some(JsonV::Arr(items)) => items,
        other => return Err(format!("events must be an array, found {other:?}")),
    };
    for (i, entry) in events.iter().enumerate() {
        let entry_fields = expect_obj(entry, "event")?;
        expect_keys(
            entry_fields,
            &["seq", "level", "target", "message"],
            &format!("events[{i}]"),
        )?;
        if !matches!(entry.get("seq"), Some(JsonV::UInt(_))) {
            return Err(format!("events[{i}].seq must be an unsigned integer"));
        }
        match entry.get("level") {
            Some(JsonV::Str(s)) if crate::Level::parse_name(s).is_some() => {}
            other => return Err(format!("events[{i}].level invalid: {other:?}")),
        }
        for key in ["target", "message"] {
            if !matches!(entry.get(key), Some(JsonV::Str(_))) {
                return Err(format!("events[{i}].{key} must be a string"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::test_support::INSTALL_LOCK;

    fn sample_snapshot() -> Snapshot {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let registry = Registry::new();
        let guard = registry.install();
        {
            let _outer = crate::span!("experiment");
            let _inner = crate::span!("grid_search");
            crate::count("forest.trees_built", 3);
            crate::gauge("dataset.rows", 120.0);
            crate::info!("test", "hello {}", 1);
        }
        drop(guard);
        registry.snapshot()
    }

    #[test]
    fn rendered_trace_validates() {
        let snapshot = sample_snapshot();
        let text = render_run_trace("testbin", &snapshot, 4);
        validate_run_trace(&text).expect("schema-valid");
        assert!(text.contains("\"experiment/grid_search\""));
        assert!(text.contains("\"forest.trees_built\": 3"));
        assert!(text.contains("\"info:test\": 1"));
    }

    #[test]
    fn deterministic_section_is_stable() {
        let a = deterministic_section(&sample_snapshot());
        let b = deterministic_section(&sample_snapshot());
        assert_eq!(a, b);
        // Timings are excluded from the deterministic section.
        assert!(!a.contains("total_ms"));
    }

    #[test]
    fn validator_rejects_drift() {
        let snapshot = sample_snapshot();
        let good = render_run_trace("testbin", &snapshot, 4);
        assert!(validate_run_trace(&good.replace("survdb-run-trace/v1", "v2")).is_err());
        assert!(validate_run_trace(&good.replace("span_counts", "spans")).is_err());
        assert!(
            validate_run_trace(&good.replace("\"thread_limit\": 4", "\"thread_limit\": 4.5"))
                .is_err()
        );
        assert!(validate_run_trace("{}").is_err());
    }
}
