//! Property tests for the streaming quantile sketch: bucket counts
//! must be invariant to merge order, chunking, and thread count, and
//! quantile estimates must be monotone in `q`. These are the
//! properties the two-section artifact convention leans on — sketch
//! *counts* sit in deterministic sections, so any schedule dependence
//! here would break byte-identity across worker configurations.

use obs::sketch::Sketch;
use proptest::prelude::*;

/// Decodes a `(magnitude, selector)` pair into an observation value.
/// Most selectors pass the in-range magnitude through; the rest pick
/// a degenerate special so every bucket class (underflow, overflow,
/// NaN) is exercised. (The vendored proptest has no `prop_oneof!`,
/// so the mix is done here rather than in the strategy.)
fn decode(magnitude: f64, selector: u8) -> f64 {
    match selector {
        0 => 0.0,
        1 => -3.5,
        2 => 1e-308,
        3 => 1e12,
        4 => f64::INFINITY,
        5 => f64::NAN,
        _ => magnitude,
    }
}

fn decode_all(raw: &[(f64, u8)]) -> Vec<f64> {
    raw.iter().map(|&(m, s)| decode(m, s)).collect()
}

fn sequential(values: &[f64]) -> Sketch {
    let mut sketch = Sketch::new();
    for &v in values {
        sketch.observe(v);
    }
    sketch
}

proptest! {
    /// Splitting the stream into arbitrary chunks, sketching each
    /// chunk independently, and merging in any rotation of chunk
    /// order yields the same bucket counts as one sequential pass.
    #[test]
    fn merge_order_and_chunking_do_not_change_counts(
        raw in prop::collection::vec((0.0f64..5_000.0, 0u8..32), 0..200),
        chunk in 1usize..17,
        rotate in 0usize..8,
    ) {
        let values = decode_all(&raw);
        let expected = sequential(&values);
        let mut chunks: Vec<Sketch> =
            values.chunks(chunk).map(sequential).collect();
        if !chunks.is_empty() {
            let r = rotate % chunks.len();
            chunks.rotate_left(r);
        }
        let mut merged = Sketch::new();
        for part in &chunks {
            merged.merge(part);
        }
        prop_assert_eq!(merged.counts(), expected.counts());
        prop_assert_eq!(merged.total(), expected.total());
    }

    /// Sharding observations across real threads (1 vs 8) and merging
    /// the per-thread sketches matches the sequential result — the
    /// counting layer is schedule-independent.
    #[test]
    fn thread_count_does_not_change_counts(
        raw in prop::collection::vec((0.0f64..5_000.0, 0u8..32), 0..200),
    ) {
        let values = decode_all(&raw);
        let expected = sequential(&values);
        for workers in [1usize, 8] {
            let merged = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let shard: Vec<f64> = values
                            .iter()
                            .copied()
                            .skip(w)
                            .step_by(workers)
                            .collect();
                        scope.spawn(move || sequential(&shard))
                    })
                    .collect();
                let mut merged = Sketch::new();
                for handle in handles {
                    merged.merge(&handle.join().expect("sketch shard"));
                }
                merged
            });
            prop_assert_eq!(merged.counts(), expected.counts());
        }
    }

    /// Quantile estimates never decrease as `q` increases, and every
    /// estimate is one of the fixed (finite) bucket upper bounds.
    #[test]
    fn quantiles_are_monotone_in_q(
        raw in prop::collection::vec((0.0f64..5_000.0, 0u8..32), 1..200),
        qs in prop::collection::vec(0.0f64..1.0, 2..12),
    ) {
        let sketch = sequential(&decode_all(&raw));
        let mut sorted = qs.clone();
        sorted.push(1.0);
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite q"));
        let mut last = f64::NEG_INFINITY;
        for q in sorted {
            let estimate = sketch.quantile(q);
            prop_assert!(estimate.is_finite(), "estimate finite at q={q}");
            prop_assert!(
                estimate >= last,
                "quantile({q}) = {estimate} < previous {last}"
            );
            last = estimate;
        }
    }
}
