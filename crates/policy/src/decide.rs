//! The decision function and its fleet-level accounting.

use crate::spec::{Action, CostModel, PolicySpec, SubgroupKey};
use forest::ConfidenceSplit;
use serve::ScoreFacts;
use std::collections::BTreeMap;

/// Decides the provisioning action for one scored database.
///
/// Pure in `(positive probability, confidence split, bands)`: the
/// paper's §5.3 split routes every uncertain prediction to
/// [`Action::Review`]; confident predictions fall through the
/// subgroup's bands.
pub fn decide(facts: &ScoreFacts, spec: &PolicySpec, subgroup: &SubgroupKey) -> Action {
    let bands = spec.bands_for(subgroup);
    match facts.split {
        ConfidenceSplit::Uncertain => Action::Review,
        ConfidenceSplit::Confident => {
            if facts.positive <= bands.defer_below {
                Action::DeferPremiumPlacement
            } else if facts.positive >= bands.preprovision_above {
                Action::PreProvisionLongLived
            } else {
                Action::StandardProvision
            }
        }
    }
}

/// The min-cost action when the true class is known — what a
/// clairvoyant provisioner would do. Under the default [`CostModel`]
/// (and any model where deferring a short-lived database beats
/// provisioning it, and pre-provisioning a long-lived one beats
/// migrating it later) this is defer-for-short, pre-provision-for-long.
pub fn oracle_action(long_lived: bool) -> Action {
    if long_lived {
        Action::PreProvisionLongLived
    } else {
        Action::DeferPremiumPlacement
    }
}

/// The realized cost of taking `action` for a database whose true
/// class is `long_lived`, in integer cost units.
///
/// [`Action::Review`] is the oracle cost plus the review overhead: the
/// review pool holds the database until its class is apparent, then
/// takes the right action — the paper's "designated resource pool"
/// reading of the uncertain partition.
pub fn action_cost(action: Action, long_lived: bool, costs: &CostModel) -> u64 {
    match (action, long_lived) {
        (Action::DeferPremiumPlacement, false) => costs.defer_cost,
        (Action::DeferPremiumPlacement, true) => {
            costs.defer_cost + costs.migration_cost + costs.late_penalty
        }
        (Action::StandardProvision, false) => costs.provision_cost,
        (Action::StandardProvision, true) => costs.provision_cost + costs.migration_cost,
        (Action::PreProvisionLongLived, false) => {
            costs.provision_cost + costs.premium_carry_cost + costs.waste_penalty
        }
        (Action::PreProvisionLongLived, true) => costs.provision_cost + costs.premium_carry_cost,
        (Action::Review, class) => {
            costs.review_cost + action_cost(oracle_action(class), class, costs)
        }
    }
}

/// Per-action decision counts plus fleet-level cost accounting, all in
/// `u64` so merging shard summaries in any grouping reproduces the
/// single-pass totals exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecisionSummary {
    /// Decisions per action, indexed by [`Action::index`].
    pub counts: [u64; 4],
    /// Decisions per (region, edition) subgroup, same index layout.
    pub table: BTreeMap<SubgroupKey, [u64; 4]>,
    /// Total realized cost of the policy's decisions.
    pub policy_cost: u64,
    /// Total cost of the clairvoyant oracle.
    pub oracle_cost: u64,
    /// Total cost of pre-provisioning everything.
    pub always_provision_cost: u64,
    /// Total cost of deferring everything.
    pub never_provision_cost: u64,
}

impl DecisionSummary {
    /// Accounts one decided database.
    pub fn observe(
        &mut self,
        subgroup: &SubgroupKey,
        action: Action,
        long_lived: bool,
        costs: &CostModel,
    ) {
        let i = action.index();
        self.counts[i] += 1;
        self.table.entry(subgroup.clone()).or_default()[i] += 1;
        self.policy_cost += action_cost(action, long_lived, costs);
        self.oracle_cost += action_cost(oracle_action(long_lived), long_lived, costs);
        self.always_provision_cost += action_cost(Action::PreProvisionLongLived, long_lived, costs);
        self.never_provision_cost += action_cost(Action::DeferPremiumPlacement, long_lived, costs);
    }

    /// Folds another summary (e.g. one shard's) into this one.
    pub fn merge(&mut self, other: &DecisionSummary) {
        for i in 0..4 {
            self.counts[i] += other.counts[i];
        }
        for (key, counts) in &other.table {
            let slot = self.table.entry(key.clone()).or_default();
            for i in 0..4 {
                slot[i] += counts[i];
            }
        }
        self.policy_cost += other.policy_cost;
        self.oracle_cost += other.oracle_cost;
        self.always_provision_cost += other.always_provision_cost;
        self.never_provision_cost += other.never_provision_cost;
    }

    /// Total decided rows — always the sum of the per-action counts,
    /// and (the counting identity artifacts pin) the sum over the
    /// subgroup table too.
    pub fn rows(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The policy's cost advantage over the better of the two naive
    /// baselines (positive = the policy wins).
    pub fn advantage(&self) -> i64 {
        let best_naive = self.always_provision_cost.min(self.never_provision_cost);
        best_naive as i64 - self.policy_cost as i64
    }
}

/// Decides a whole scored subgroup and accounts it into a summary.
///
/// `long_lived[i]` is row `i`'s true class (observable in the
/// simulator; in production this accounting runs retrospectively).
/// Emits `policy.*` observability counters when a registry is
/// installed.
pub fn decide_batch(
    facts: &[ScoreFacts],
    long_lived: &[bool],
    spec: &PolicySpec,
    subgroup: &SubgroupKey,
) -> (Vec<Action>, DecisionSummary) {
    assert_eq!(
        facts.len(),
        long_lived.len(),
        "every scored row needs a true class"
    );
    spec.validate();
    let mut summary = DecisionSummary::default();
    let mut actions = Vec::with_capacity(facts.len());
    for (f, &long) in facts.iter().zip(long_lived) {
        let action = decide(f, spec, subgroup);
        summary.observe(subgroup, action, long, &spec.costs);
        actions.push(action);
    }
    if obs::enabled() {
        obs::count_many(&[
            ("policy.batches_decided", 1),
            ("policy.rows_decided", summary.rows()),
            ("policy.reviews", summary.counts[Action::Review.index()]),
            (
                "policy.preprovisions",
                summary.counts[Action::PreProvisionLongLived.index()],
            ),
        ]);
    }
    (actions, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ActionBands;

    fn facts(positive: f64, split: ConfidenceSplit) -> ScoreFacts {
        ScoreFacts {
            positive,
            predicted: (positive > 0.5) as usize,
            split,
        }
    }

    fn key() -> SubgroupKey {
        SubgroupKey::new("Region-1", "Standard")
    }

    #[test]
    fn uncertain_rows_always_review() {
        let spec = PolicySpec::default();
        for p in [0.0, 0.3, 0.5, 0.9, 1.0] {
            let action = decide(&facts(p, ConfidenceSplit::Uncertain), &spec, &key());
            assert_eq!(action, Action::Review, "p = {p}");
        }
    }

    #[test]
    fn confident_rows_fall_through_bands() {
        let spec = PolicySpec::default();
        let cases = [
            (0.0, Action::DeferPremiumPlacement),
            (0.4, Action::DeferPremiumPlacement), // closed at the cutoff
            (0.41, Action::StandardProvision),
            (0.74, Action::StandardProvision),
            (0.75, Action::PreProvisionLongLived), // closed at the cutoff
            (1.0, Action::PreProvisionLongLived),
        ];
        for (p, expected) in cases {
            let action = decide(&facts(p, ConfidenceSplit::Confident), &spec, &key());
            assert_eq!(action, expected, "p = {p}");
        }
    }

    #[test]
    fn oracle_is_min_cost_for_each_class() {
        let costs = CostModel::default();
        for long in [false, true] {
            let oracle = action_cost(oracle_action(long), long, &costs);
            for action in Action::ALL {
                if action == Action::Review {
                    continue; // review = oracle + overhead by construction
                }
                assert!(
                    action_cost(action, long, &costs) >= oracle,
                    "{action:?} undercuts the oracle for long={long}"
                );
            }
        }
    }

    #[test]
    fn review_costs_oracle_plus_overhead() {
        let costs = CostModel::default();
        for long in [false, true] {
            assert_eq!(
                action_cost(Action::Review, long, &costs),
                costs.review_cost + action_cost(oracle_action(long), long, &costs)
            );
        }
    }

    #[test]
    fn summary_counts_and_identities() {
        let spec = PolicySpec::default();
        let rows = vec![
            (facts(0.1, ConfidenceSplit::Confident), false),
            (facts(0.9, ConfidenceSplit::Confident), true),
            (facts(0.6, ConfidenceSplit::Uncertain), true),
            (facts(0.5, ConfidenceSplit::Confident), false),
        ];
        let (f, l): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        let (actions, summary) = decide_batch(&f, &l, &spec, &key());
        assert_eq!(actions.len(), 4);
        assert_eq!(summary.rows(), 4);
        assert_eq!(summary.counts, [1, 1, 1, 1]);
        // The subgroup table carries the same totals.
        let table_total: u64 = summary.table.values().flatten().sum();
        assert_eq!(table_total, summary.rows());
        // Oracle never exceeds the policy or either baseline.
        assert!(summary.oracle_cost <= summary.policy_cost);
        assert!(summary.oracle_cost <= summary.always_provision_cost);
        assert!(summary.oracle_cost <= summary.never_provision_cost);
    }

    #[test]
    fn merge_reproduces_single_pass() {
        let spec = PolicySpec::default();
        let all: Vec<(ScoreFacts, bool)> = (0..40)
            .map(|i| {
                let p = i as f64 / 39.0;
                let split = if i % 3 == 0 {
                    ConfidenceSplit::Uncertain
                } else {
                    ConfidenceSplit::Confident
                };
                (facts(p, split), i % 2 == 0)
            })
            .collect();
        let (f, l): (Vec<_>, Vec<_>) = all.into_iter().unzip();
        let (_, whole) = decide_batch(&f, &l, &spec, &key());
        let mut merged = DecisionSummary::default();
        for chunk in 0..4 {
            let lo = chunk * 10;
            let (_, part) = decide_batch(&f[lo..lo + 10], &l[lo..lo + 10], &spec, &key());
            merged.merge(&part);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn per_subgroup_bands_change_decisions() {
        let mut spec = PolicySpec::default();
        let premium = SubgroupKey::new("Region-1", "Premium");
        spec.overrides.insert(
            premium.clone(),
            ActionBands {
                defer_below: 0.1,
                preprovision_above: 0.5,
            },
        );
        let f = facts(0.6, ConfidenceSplit::Confident);
        assert_eq!(decide(&f, &spec, &key()), Action::StandardProvision);
        assert_eq!(decide(&f, &spec, &premium), Action::PreProvisionLongLived);
    }
}
