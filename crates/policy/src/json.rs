//! Deterministic JSON renderings of policy values.
//!
//! Shared by the `policybench` artifact writer and the golden
//! snapshot test, so both agree byte for byte on how a spec, a
//! decision summary, and a sweep frontier serialize. All keys render
//! in fixed push order; every count is a `UInt` (no float rounding in
//! the deterministic section).

use crate::decide::DecisionSummary;
use crate::spec::{Action, ActionBands, PolicySpec, SubgroupKey};
use crate::sweep::{SweepAccum, SweepPoint};
use obs::jsonv::JsonV;

fn bands_fields(bands: &ActionBands) -> Vec<(&'static str, JsonV)> {
    vec![
        ("defer_below", JsonV::Float(bands.defer_below)),
        ("preprovision_above", JsonV::Float(bands.preprovision_above)),
    ]
}

/// Renders a [`PolicySpec`] (bands, overrides, cost model).
pub fn spec_json(spec: &PolicySpec) -> JsonV {
    let overrides = spec
        .overrides
        .iter()
        .map(|(key, bands)| {
            let mut fields = vec![
                ("region", JsonV::Str(key.region.clone())),
                ("edition", JsonV::Str(key.edition.clone())),
            ];
            fields.extend(bands_fields(bands));
            JsonV::obj(fields)
        })
        .collect();
    JsonV::obj(vec![
        ("bands", JsonV::obj(bands_fields(&spec.bands))),
        ("overrides", JsonV::Arr(overrides)),
        (
            "costs",
            JsonV::obj(vec![
                ("defer_cost", JsonV::UInt(spec.costs.defer_cost)),
                ("provision_cost", JsonV::UInt(spec.costs.provision_cost)),
                (
                    "premium_carry_cost",
                    JsonV::UInt(spec.costs.premium_carry_cost),
                ),
                ("migration_cost", JsonV::UInt(spec.costs.migration_cost)),
                ("late_penalty", JsonV::UInt(spec.costs.late_penalty)),
                ("waste_penalty", JsonV::UInt(spec.costs.waste_penalty)),
                ("review_cost", JsonV::UInt(spec.costs.review_cost)),
            ]),
        ),
    ])
}

fn action_counts(counts: &[u64; 4]) -> Vec<(&'static str, JsonV)> {
    Action::ALL
        .iter()
        .map(|a| (a.label(), JsonV::UInt(counts[a.index()])))
        .collect()
}

fn subgroup_row(key: &SubgroupKey, counts: &[u64; 4]) -> JsonV {
    let mut fields = vec![
        ("region", JsonV::Str(key.region.clone())),
        ("edition", JsonV::Str(key.edition.clone())),
    ];
    fields.extend(action_counts(counts));
    JsonV::obj(fields)
}

/// Renders a [`DecisionSummary`]: totals, per-action counts, the
/// (region, edition) decision table, and the four cost totals.
pub fn summary_json(summary: &DecisionSummary) -> JsonV {
    let table = summary
        .table
        .iter()
        .map(|(key, counts)| subgroup_row(key, counts))
        .collect();
    JsonV::obj(vec![
        ("rows", JsonV::UInt(summary.rows())),
        ("actions", JsonV::obj(action_counts(&summary.counts))),
        ("table", JsonV::Arr(table)),
        (
            "costs",
            JsonV::obj(vec![
                ("policy", JsonV::UInt(summary.policy_cost)),
                ("oracle", JsonV::UInt(summary.oracle_cost)),
                (
                    "always_provision",
                    JsonV::UInt(summary.always_provision_cost),
                ),
                ("never_provision", JsonV::UInt(summary.never_provision_cost)),
            ]),
        ),
    ])
}

fn point_json(point: &SweepPoint) -> JsonV {
    JsonV::obj(vec![
        ("threshold", JsonV::Float(point.threshold)),
        ("total_cost", JsonV::UInt(point.total_cost)),
        ("confident_rows", JsonV::UInt(point.confident_rows)),
    ])
}

/// Renders a sweep frontier: the full point list plus the min-cost
/// point.
pub fn sweep_json(accum: &SweepAccum) -> JsonV {
    JsonV::obj(vec![
        ("rows", JsonV::UInt(accum.rows())),
        (
            "points",
            JsonV::Arr(accum.points().iter().map(point_json).collect()),
        ),
        ("best", point_json(&accum.best())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CostModel;

    #[test]
    fn spec_renders_deterministically() {
        let mut spec = PolicySpec::default();
        spec.overrides.insert(
            SubgroupKey::new("Region-1", "Premium"),
            ActionBands {
                defer_below: 0.2,
                preprovision_above: 0.6,
            },
        );
        let a = spec_json(&spec).render();
        let b = spec_json(&spec.clone()).render();
        assert_eq!(a, b);
        assert!(a.contains("\"preprovision_above\": 0.6"));
        assert!(a.contains("\"review_cost\": 5"));
    }

    #[test]
    fn summary_json_keeps_counting_identity_visible() {
        let mut summary = DecisionSummary::default();
        let key = SubgroupKey::new("Region-1", "Basic");
        summary.observe(&key, Action::Review, true, &CostModel::default());
        summary.observe(
            &key,
            Action::StandardProvision,
            false,
            &CostModel::default(),
        );
        let json = summary_json(&summary);
        let rows = json.get("rows").unwrap();
        assert_eq!(rows, &JsonV::UInt(2));
        let actions = json.get("actions").unwrap();
        assert_eq!(actions.get("review").unwrap(), &JsonV::UInt(1));
    }

    #[test]
    fn sweep_json_contains_frontier_and_best() {
        let mut accum = SweepAccum::new(3);
        accum.observe(0.9, true, &CostModel::default());
        let json = sweep_json(&accum);
        assert_eq!(json.get("rows").unwrap(), &JsonV::UInt(1));
        match json.get("points").unwrap() {
            JsonV::Arr(points) => assert_eq!(points.len(), 3),
            other => panic!("points must be an array, got {other:?}"),
        }
        assert!(json.get("best").unwrap().get("threshold").is_some());
    }
}
