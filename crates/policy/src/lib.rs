//! Survivability-driven provisioning decisions over scored fleets.
//!
//! The paper's closing argument (§1, §5.3, §7) is that lifespan
//! predictions are only useful insofar as a provisioner can *act* on
//! them: defer premium placement for databases predicted short-lived,
//! pre-provision durable resources for those predicted long-lived, and
//! park the uncertain remainder in a designated pool. This crate is
//! that decision layer, kept deliberately small and pure:
//!
//! - [`spec`] — the declarative [`PolicySpec`]: the action space, an
//!   integer [`CostModel`] (provision / migration / premium-carrying
//!   costs and misprediction penalties), probability [`ActionBands`],
//!   and per-(region, edition) [`SubgroupKey`] overrides.
//! - [`decide`] — the decision function: `(score, confidence split,
//!   bands) → Action`, plus shard-mergeable [`DecisionSummary`]
//!   accounting against the clairvoyant oracle and the
//!   always-/never-provision baselines.
//! - [`sweep`] — the cost-vs-threshold frontier: expected policy cost
//!   at every confidence cutoff in [`forest::threshold_grid`],
//!   accumulated in streaming integer form ([`SweepAccum`]).
//! - [`json`] — deterministic [`obs::jsonv::JsonV`] renderings shared
//!   by the `policybench` artifact and the golden snapshot test.
//!
//! Everything cost-valued is a `u64` in abstract cost units: integer
//! sums are associative, so per-shard summaries merged in any grouping
//! reproduce the single-pass totals bit for bit — the property that
//! keeps `artifacts/policy.json`'s deterministic section byte-identical
//! across shard counts.
//!
//! # Example
//!
//! ```
//! use forest::ConfidenceSplit;
//! use policy::{decide, Action, PolicySpec, SubgroupKey};
//! use serve::ScoreFacts;
//!
//! let spec = PolicySpec::default();
//! let subgroup = SubgroupKey::new("Region-1", "Standard");
//! let confident_long = ScoreFacts {
//!     positive: 0.9,
//!     predicted: 1,
//!     split: ConfidenceSplit::Confident,
//! };
//! assert_eq!(
//!     decide(&confident_long, &spec, &subgroup),
//!     Action::PreProvisionLongLived
//! );
//! ```

pub mod decide;
pub mod json;
pub mod spec;
pub mod sweep;

pub use decide::{action_cost, decide, decide_batch, oracle_action, DecisionSummary};
pub use json::{spec_json, summary_json, sweep_json};
pub use spec::{Action, ActionBands, CostModel, PolicySpec, SubgroupKey};
pub use sweep::{SweepAccum, SweepPoint};
