//! The declarative policy specification: actions, cost model, decision
//! bands, and per-subgroup overrides.

use std::collections::BTreeMap;

/// A provisioning action the policy can take for one database.
///
/// The paper motivates exactly this action space (§1, §5.3): confident
/// short-lived predictions let the service defer placing the database
/// on premium storage; confident long-lived predictions justify
/// pre-provisioning durable resources up front; everything uncertain is
/// routed to a designated intermediate pool for later review.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Confident short-lived: place on cheap transient storage and
    /// defer the premium placement decision.
    DeferPremiumPlacement,
    /// Middling survival odds: provision the standard way.
    StandardProvision,
    /// Confident long-lived: pre-provision durable premium resources.
    PreProvisionLongLived,
    /// Uncertain prediction: park in the intermediate pool and review
    /// once more telemetry accrues.
    Review,
}

impl Action {
    /// Every action, in the stable artifact/report order.
    pub const ALL: [Action; 4] = [
        Action::DeferPremiumPlacement,
        Action::StandardProvision,
        Action::PreProvisionLongLived,
        Action::Review,
    ];

    /// Stable label used in artifacts and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Action::DeferPremiumPlacement => "defer_premium_placement",
            Action::StandardProvision => "standard_provision",
            Action::PreProvisionLongLived => "preprovision_long_lived",
            Action::Review => "review",
        }
    }

    /// Stable index into per-action count arrays, matching
    /// [`Action::ALL`].
    pub fn index(&self) -> usize {
        match self {
            Action::DeferPremiumPlacement => 0,
            Action::StandardProvision => 1,
            Action::PreProvisionLongLived => 2,
            Action::Review => 3,
        }
    }
}

/// The provisioning cost model, in integer **cost units**.
///
/// Costs are `u64` by design: every fleet-level cost in the artifact is
/// a sum of per-row integer costs, and integer addition is associative
/// — so totals are bitwise identical no matter how rows are sharded,
/// which is what lets policybench's deterministic section survive any
/// shard count. Relative magnitudes follow the paper's economics: a
/// misplaced long-lived database later pays a migration
/// (`migration_cost` dominates `provision_cost`), while premium
/// resources wasted on a short-lived database are the most expensive
/// mistake (`waste_penalty`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Placing a database on cheap transient storage.
    pub defer_cost: u64,
    /// A standard provision.
    pub provision_cost: u64,
    /// Carrying premium resources for a pre-provisioned database.
    pub premium_carry_cost: u64,
    /// Migrating a mis-placed database to durable storage later.
    pub migration_cost: u64,
    /// Extra penalty when a deferred database turns out long-lived
    /// (it ran degraded until the migration).
    pub late_penalty: u64,
    /// Extra penalty when premium resources were pre-provisioned for a
    /// database that died short-lived.
    pub waste_penalty: u64,
    /// Parking one database in the review pool.
    pub review_cost: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            defer_cost: 10,
            provision_cost: 20,
            premium_carry_cost: 30,
            migration_cost: 40,
            late_penalty: 20,
            waste_penalty: 50,
            review_cost: 5,
        }
    }
}

/// Probability cutoffs partitioning the *confident* predictions into
/// actions. Uncertain predictions (per the paper's §5.3 split) never
/// reach these bands — they always go to [`Action::Review`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionBands {
    /// Confident predictions with survival probability at or below
    /// this cutoff get [`Action::DeferPremiumPlacement`].
    pub defer_below: f64,
    /// Confident predictions with survival probability at or above
    /// this cutoff get [`Action::PreProvisionLongLived`].
    pub preprovision_above: f64,
}

impl ActionBands {
    /// Panics unless `0 <= defer_below < preprovision_above <= 1`.
    pub fn validate(&self) {
        assert!(
            0.0 <= self.defer_below && self.defer_below < self.preprovision_above,
            "defer cutoff {} must sit below the pre-provision cutoff {}",
            self.defer_below,
            self.preprovision_above
        );
        assert!(
            self.preprovision_above <= 1.0,
            "pre-provision cutoff {} must be a probability",
            self.preprovision_above
        );
    }
}

impl Default for ActionBands {
    fn default() -> ActionBands {
        ActionBands {
            defer_below: 0.4,
            preprovision_above: 0.75,
        }
    }
}

/// The subgroup a scored row belongs to. The paper runs its
/// sub-experiments per region and per creation edition (§5.2); the
/// policy layer keys its decision table and band overrides the same
/// way. Labels are plain strings so the decision layer stays
/// independent of the telemetry simulator's concrete types.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubgroupKey {
    /// Region label, e.g. `"Region-1"`.
    pub region: String,
    /// Creation-edition label, e.g. `"Basic"`.
    pub edition: String,
}

impl SubgroupKey {
    /// Convenience constructor.
    pub fn new(region: impl Into<String>, edition: impl Into<String>) -> SubgroupKey {
        SubgroupKey {
            region: region.into(),
            edition: edition.into(),
        }
    }
}

/// The full declarative policy: default bands, per-subgroup band
/// overrides, and the cost model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicySpec {
    /// Bands applied when no override matches.
    pub bands: ActionBands,
    /// Per-(region, edition) band overrides. A `BTreeMap` so iteration
    /// (and therefore every artifact rendering) is deterministically
    /// ordered.
    pub overrides: BTreeMap<SubgroupKey, ActionBands>,
    /// The cost model shared by all subgroups.
    pub costs: CostModel,
}

impl PolicySpec {
    /// The bands governing one subgroup.
    pub fn bands_for(&self, key: &SubgroupKey) -> ActionBands {
        self.overrides.get(key).copied().unwrap_or(self.bands)
    }

    /// Panics when any band set is malformed.
    pub fn validate(&self) {
        self.bands.validate();
        for bands in self.overrides.values() {
            bands.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_indices_match_all_order() {
        for (i, action) in Action::ALL.iter().enumerate() {
            assert_eq!(action.index(), i);
        }
        let labels: Vec<&str> = Action::ALL.iter().map(Action::label).collect();
        let mut unique = labels.clone();
        unique.dedup();
        assert_eq!(labels, unique, "labels must be distinct");
    }

    #[test]
    fn overrides_shadow_default_bands() {
        let mut spec = PolicySpec::default();
        let key = SubgroupKey::new("Region-1", "Premium");
        let tighter = ActionBands {
            defer_below: 0.2,
            preprovision_above: 0.6,
        };
        spec.overrides.insert(key.clone(), tighter);
        spec.validate();
        assert_eq!(spec.bands_for(&key), tighter);
        let other = SubgroupKey::new("Region-1", "Basic");
        assert_eq!(spec.bands_for(&other), spec.bands);
    }

    #[test]
    #[should_panic(expected = "must sit below")]
    fn inverted_bands_are_rejected() {
        ActionBands {
            defer_below: 0.8,
            preprovision_above: 0.6,
        }
        .validate();
    }

    #[test]
    fn subgroup_keys_order_deterministically() {
        let mut keys = [
            SubgroupKey::new("Region-2", "Basic"),
            SubgroupKey::new("Region-1", "Premium"),
            SubgroupKey::new("Region-1", "Basic"),
        ];
        keys.sort();
        assert_eq!(keys[0], SubgroupKey::new("Region-1", "Basic"));
        assert_eq!(keys[2], SubgroupKey::new("Region-2", "Basic"));
    }
}
