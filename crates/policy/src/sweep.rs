//! Threshold sweep: expected policy cost across the whole legal range
//! of confidence cutoffs.
//!
//! The paper fixes its confidence threshold at `t = max(q, 1 − q)`
//! (§5.3) but notes the split is a dial: a higher `t` routes more
//! predictions to the uncertain pool. The sweep makes the dial's
//! cost consequences explicit: for every cutoff in
//! [`forest::threshold_grid`], act immediately on the predictions that
//! cutoff calls confident (pre-provision the predicted-long, defer the
//! predicted-short) and route the rest through review. The resulting
//! cost-vs-threshold frontier shows where acting beats reviewing —
//! and, on adversarial cohorts like the incentive cliff, where it
//! stops doing so.
//!
//! Accumulation is streaming and integer-valued: one [`SweepAccum`]
//! per shard, [`SweepAccum::merge`] across shards, bitwise-identical
//! totals under any sharding.

use crate::decide::{action_cost, oracle_action};
use crate::spec::{Action, CostModel};

/// One point on the cost-vs-threshold frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The confidence cutoff.
    pub threshold: f64,
    /// Total integer cost of acting at this cutoff.
    pub total_cost: u64,
    /// Rows the cutoff called confident (acted on immediately).
    pub confident_rows: u64,
}

/// Streaming integer cost accumulator over a fixed threshold grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAccum {
    grid: Vec<f64>,
    cost: Vec<u64>,
    confident: Vec<u64>,
    rows: u64,
}

impl SweepAccum {
    /// An empty accumulator over [`forest::threshold_grid`]`(points)`.
    pub fn new(points: usize) -> SweepAccum {
        let grid = forest::threshold_grid(points);
        let n = grid.len();
        SweepAccum {
            grid,
            cost: vec![0; n],
            confident: vec![0; n],
            rows: 0,
        }
    }

    /// Accounts one scored row at every grid point: act when the
    /// cutoff calls the row confident, review otherwise.
    pub fn observe(&mut self, positive: f64, long_lived: bool, costs: &CostModel) {
        // Both candidate per-row costs are threshold-independent;
        // compute once, select per point.
        let acted_action = if positive > 0.5 {
            Action::PreProvisionLongLived
        } else {
            Action::DeferPremiumPlacement
        };
        let acted = action_cost(acted_action, long_lived, costs);
        let reviewed =
            costs.review_cost + action_cost(oracle_action(long_lived), long_lived, costs);
        for (i, &t) in self.grid.iter().enumerate() {
            if positive >= t || positive <= 1.0 - t {
                self.cost[i] += acted;
                self.confident[i] += 1;
            } else {
                self.cost[i] += reviewed;
            }
        }
        self.rows += 1;
    }

    /// Folds another accumulator (e.g. one shard's) into this one.
    ///
    /// # Panics
    ///
    /// Panics when the grids differ.
    pub fn merge(&mut self, other: &SweepAccum) {
        assert_eq!(self.grid, other.grid, "sweeps must share one grid");
        for i in 0..self.cost.len() {
            self.cost[i] += other.cost[i];
            self.confident[i] += other.confident[i];
        }
        self.rows += other.rows;
    }

    /// Rows observed.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The full frontier, ascending by threshold.
    pub fn points(&self) -> Vec<SweepPoint> {
        self.grid
            .iter()
            .zip(&self.cost)
            .zip(&self.confident)
            .map(|((&threshold, &total_cost), &confident_rows)| SweepPoint {
                threshold,
                total_cost,
                confident_rows,
            })
            .collect()
    }

    /// The min-cost point; ties resolve to the lowest threshold, so
    /// the answer is unique and deterministic.
    pub fn best(&self) -> SweepPoint {
        self.points()
            .into_iter()
            .min_by(|a, b| {
                a.total_cost
                    .cmp(&b.total_cost)
                    .then(a.threshold.partial_cmp(&b.threshold).unwrap())
            })
            .expect("the grid is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn endpoints_behave_as_expected() {
        let mut accum = SweepAccum::new(6);
        // A correct confident long prediction and a wrong one.
        accum.observe(0.9, true, &costs());
        accum.observe(0.9, false, &costs());
        let points = accum.points();
        // t = 0.5: everything is confident (p >= 0.5 or p <= 0.5).
        assert_eq!(points[0].confident_rows, 2);
        // t = 1.0: p = 0.9 is uncertain, both rows review.
        assert_eq!(points[5].confident_rows, 0);
        let reviewed: u64 = [true, false]
            .iter()
            .map(|&l| costs().review_cost + action_cost(oracle_action(l), l, &costs()))
            .sum();
        assert_eq!(points[5].total_cost, reviewed);
    }

    #[test]
    fn confident_rows_shrink_as_threshold_grows() {
        let mut accum = SweepAccum::new(11);
        for i in 0..50 {
            accum.observe(i as f64 / 49.0, i % 2 == 0, &costs());
        }
        let points = accum.points();
        for w in points.windows(2) {
            assert!(w[1].confident_rows <= w[0].confident_rows);
        }
    }

    #[test]
    fn zero_review_cost_makes_the_frontier_monotone() {
        // With free review, widening the uncertain band can only move
        // rows from an acted cost (>= oracle) to the oracle cost.
        let free = CostModel {
            review_cost: 0,
            ..CostModel::default()
        };
        let mut accum = SweepAccum::new(9);
        for i in 0..80 {
            let p = (i as f64 * 0.618) % 1.0;
            accum.observe(p, i % 3 == 0, &free);
        }
        let points = accum.points();
        for w in points.windows(2) {
            assert!(
                w[1].total_cost <= w[0].total_cost,
                "{} -> {}",
                w[0].total_cost,
                w[1].total_cost
            );
        }
    }

    #[test]
    fn merge_matches_single_pass() {
        let rows: Vec<(f64, bool)> = (0..60)
            .map(|i| ((i as f64 * 0.37) % 1.0, i % 4 == 0))
            .collect();
        let mut whole = SweepAccum::new(7);
        for &(p, l) in &rows {
            whole.observe(p, l, &costs());
        }
        let mut merged = SweepAccum::new(7);
        for chunk in rows.chunks(13) {
            let mut shard = SweepAccum::new(7);
            for &(p, l) in chunk {
                shard.observe(p, l, &costs());
            }
            merged.merge(&shard);
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.rows(), 60);
    }

    #[test]
    fn best_breaks_ties_toward_the_lower_threshold() {
        // No observations: every point costs 0, so best must be the
        // first grid point.
        let accum = SweepAccum::new(5);
        assert_eq!(accum.best().threshold, 0.5);
    }
}
