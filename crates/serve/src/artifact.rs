//! The scoring artifact: `artifacts/scoring.json`.
//!
//! Layout (schema `survdb-scoring/v1`), mirroring the run-trace
//! two-section convention:
//!
//! ```text
//! {
//!   "schema": "survdb-scoring/v1",
//!   "binary": "<emitting binary>",
//!   "deterministic": {           // byte-identical across runs & thread counts
//!     "model": { "tree_count", "feature_count", "class_count",
//!                "seed", "positive_fraction", "confidence_threshold" },
//!     "counts": { "rows", "confident", "uncertain",
//!                 "predicted_positive", "predicted_negative",
//!                 "confident_positive", "confident_negative" },
//!     "mean_positive_probability": f64,
//!     "probability_histogram": [10 × u64]
//!   },
//!   "nondeterministic": {        // wall-clock throughput
//!     "thread_limit": u64,
//!     "elapsed_ms": f64,
//!     "rows_per_second": f64,
//!     "scorebench": {             // recursive vs kernel comparison
//!       "rows": u64,
//!       "recursive_rows_per_second":  f64,
//!       "branchless_rows_per_second": f64,
//!       "blocked_rows_per_second":    f64,
//!       "branchless_speedup": f64,
//!       "blocked_speedup":    f64
//!     }
//!   }
//! }
//! ```
//!
//! Everything under `deterministic` is a pure function of
//! `(model, dataset, q)`; timings and thread counts live only under
//! `nondeterministic`. The schema check enforces the split plus the
//! counting identities (confident + uncertain = rows, histogram sums
//! to rows, …) so a drifting producer fails CI instead of shipping
//! silently inconsistent artifacts.

use crate::format::SavedModel;
use crate::score::ScoreSummary;
use obs::jsonv::{self, JsonV};
use std::io;
use std::path::{Path, PathBuf};

/// Schema identifier for `scoring.json`.
pub const SCORING_SCHEMA: &str = "survdb-scoring/v1";

/// File name the artifact is written under.
pub const SCORING_FILE: &str = "scoring.json";

/// Wall-clock measurements of a scoring run — the nondeterministic
/// section of the artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoringTiming {
    /// Worker-thread cap in effect (`forest::parallel::thread_limit()`).
    pub thread_limit: usize,
    /// Total scoring wall time in milliseconds.
    pub elapsed_ms: f64,
    /// Scored rows per second (0 for an instantaneous/empty batch).
    pub rows_per_second: f64,
    /// Recursive-vs-kernel throughput comparison on the same corpus.
    pub scorebench: ScoreBench,
}

/// Throughput of each scoring implementation on one corpus — the
/// `scorebench` object inside the nondeterministic section. All three
/// paths score the identical rows; the recursive and branchless paths
/// must agree bitwise with the blocked path before timings are
/// recorded (the `scored` binary exits nonzero on mismatch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreBench {
    /// Rows in the timed corpus.
    pub rows: usize,
    /// Recursive pointer-chasing baseline (`score_batch_recursive`).
    pub recursive_rows_per_second: f64,
    /// Branchless kernel, one row at a time (`predict_proba_into`).
    pub branchless_rows_per_second: f64,
    /// Cache-blocked kernel, the default path (`score_batch_with`).
    pub blocked_rows_per_second: f64,
}

impl ScoreBench {
    /// Branchless-over-recursive throughput ratio (0 when the
    /// baseline measured 0 rows/sec).
    pub fn branchless_speedup(&self) -> f64 {
        speedup(
            self.branchless_rows_per_second,
            self.recursive_rows_per_second,
        )
    }

    /// Blocked-over-recursive throughput ratio.
    pub fn blocked_speedup(&self) -> f64 {
        speedup(self.blocked_rows_per_second, self.recursive_rows_per_second)
    }
}

fn speedup(fast: f64, baseline: f64) -> f64 {
    if baseline > 0.0 {
        fast / baseline
    } else {
        0.0
    }
}

fn deterministic_json(model: &SavedModel, summary: &ScoreSummary) -> JsonV {
    JsonV::obj(vec![
        (
            "model",
            JsonV::obj(vec![
                ("tree_count", JsonV::UInt(model.forest.tree_count() as u64)),
                (
                    "feature_count",
                    JsonV::UInt(model.forest.feature_names().len() as u64),
                ),
                (
                    "class_count",
                    JsonV::UInt(model.forest.class_count() as u64),
                ),
                ("seed", JsonV::UInt(model.meta.seed)),
                (
                    "positive_fraction",
                    JsonV::Float(model.meta.positive_fraction),
                ),
                ("confidence_threshold", JsonV::Float(model.threshold())),
            ]),
        ),
        (
            "counts",
            JsonV::obj(vec![
                ("rows", JsonV::UInt(summary.rows as u64)),
                ("confident", JsonV::UInt(summary.confident as u64)),
                ("uncertain", JsonV::UInt(summary.uncertain as u64)),
                (
                    "predicted_positive",
                    JsonV::UInt(summary.predicted_positive as u64),
                ),
                (
                    "predicted_negative",
                    JsonV::UInt(summary.predicted_negative as u64),
                ),
                (
                    "confident_positive",
                    JsonV::UInt(summary.confident_positive as u64),
                ),
                (
                    "confident_negative",
                    JsonV::UInt(summary.confident_negative as u64),
                ),
            ]),
        ),
        (
            "mean_positive_probability",
            JsonV::Float(summary.mean_positive),
        ),
        (
            "probability_histogram",
            JsonV::Arr(summary.histogram.iter().map(|&v| JsonV::UInt(v)).collect()),
        ),
    ])
}

/// Renders only the deterministic section — the byte string tests pin
/// across thread counts.
pub fn deterministic_scoring_section(model: &SavedModel, summary: &ScoreSummary) -> String {
    deterministic_json(model, summary).render()
}

/// Renders the full scoring artifact for `binary`.
pub fn render_scoring(
    binary: &str,
    model: &SavedModel,
    summary: &ScoreSummary,
    timing: &ScoringTiming,
) -> String {
    JsonV::obj(vec![
        ("schema", JsonV::Str(SCORING_SCHEMA.to_string())),
        ("binary", JsonV::Str(binary.to_string())),
        ("deterministic", deterministic_json(model, summary)),
        (
            "nondeterministic",
            JsonV::obj(vec![
                ("thread_limit", JsonV::UInt(timing.thread_limit as u64)),
                ("elapsed_ms", JsonV::Float(timing.elapsed_ms)),
                ("rows_per_second", JsonV::Float(timing.rows_per_second)),
                (
                    "scorebench",
                    JsonV::obj(vec![
                        ("rows", JsonV::UInt(timing.scorebench.rows as u64)),
                        (
                            "recursive_rows_per_second",
                            JsonV::Float(timing.scorebench.recursive_rows_per_second),
                        ),
                        (
                            "branchless_rows_per_second",
                            JsonV::Float(timing.scorebench.branchless_rows_per_second),
                        ),
                        (
                            "blocked_rows_per_second",
                            JsonV::Float(timing.scorebench.blocked_rows_per_second),
                        ),
                        (
                            "branchless_speedup",
                            JsonV::Float(timing.scorebench.branchless_speedup()),
                        ),
                        (
                            "blocked_speedup",
                            JsonV::Float(timing.scorebench.blocked_speedup()),
                        ),
                    ]),
                ),
            ]),
        ),
    ])
    .render()
}

/// Writes `dir/scoring.json` for `binary`, creating `dir` if needed.
/// Returns the written path.
pub fn write_scoring(
    dir: &Path,
    binary: &str,
    model: &SavedModel,
    summary: &ScoreSummary,
    timing: &ScoringTiming,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(SCORING_FILE);
    std::fs::write(&path, render_scoring(binary, model, summary, timing))?;
    Ok(path)
}

fn expect_obj<'a>(value: &'a JsonV, what: &str) -> Result<&'a [(String, JsonV)], String> {
    match value {
        JsonV::Obj(fields) => Ok(fields),
        other => Err(format!("{what} must be an object, found {other:?}")),
    }
}

fn expect_keys(fields: &[(String, JsonV)], keys: &[&str], what: &str) -> Result<(), String> {
    let found: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if found != keys {
        return Err(format!("{what} must have keys {keys:?}, found {found:?}"));
    }
    Ok(())
}

fn expect_uint(value: &JsonV, what: &str) -> Result<u64, String> {
    match value {
        JsonV::UInt(v) => Ok(*v),
        other => Err(format!(
            "{what} must be an unsigned integer, found {other:?}"
        )),
    }
}

fn expect_float(value: &JsonV, what: &str) -> Result<f64, String> {
    match value {
        JsonV::Float(v) => Ok(*v),
        other => Err(format!("{what} must be a float, found {other:?}")),
    }
}

/// Structurally validates a rendered `scoring.json`: schema id, the
/// deterministic/nondeterministic split, field types, and the counting
/// identities. Used by the `scoring-schema-check` binary in CI.
pub fn validate_scoring(text: &str) -> Result<(), String> {
    let root = jsonv::parse(text)?;
    let fields = expect_obj(&root, "scoring artifact")?;
    expect_keys(
        fields,
        &["schema", "binary", "deterministic", "nondeterministic"],
        "scoring artifact",
    )?;

    match root.get("schema") {
        Some(JsonV::Str(s)) if s == SCORING_SCHEMA => {}
        other => {
            return Err(format!(
                "schema must be {SCORING_SCHEMA:?}, found {other:?}"
            ))
        }
    }
    match root.get("binary") {
        Some(JsonV::Str(s)) if !s.is_empty() => {}
        other => {
            return Err(format!(
                "binary must be a non-empty string, found {other:?}"
            ))
        }
    }

    let det = root.get("deterministic").expect("keys checked");
    let det_fields = expect_obj(det, "deterministic")?;
    expect_keys(
        det_fields,
        &[
            "model",
            "counts",
            "mean_positive_probability",
            "probability_histogram",
        ],
        "deterministic",
    )?;

    let model = det.get("model").expect("keys checked");
    let model_fields = expect_obj(model, "model")?;
    expect_keys(
        model_fields,
        &[
            "tree_count",
            "feature_count",
            "class_count",
            "seed",
            "positive_fraction",
            "confidence_threshold",
        ],
        "model",
    )?;
    for key in ["tree_count", "feature_count", "class_count"] {
        if expect_uint(model.get(key).expect("keys checked"), key)? == 0 {
            return Err(format!("model.{key} must be nonzero"));
        }
    }
    expect_uint(model.get("seed").expect("keys checked"), "seed")?;
    let q = expect_float(
        model.get("positive_fraction").expect("keys checked"),
        "positive_fraction",
    )?;
    if !(0.0..=1.0).contains(&q) {
        return Err(format!("positive_fraction {q} outside [0, 1]"));
    }
    let t = expect_float(
        model.get("confidence_threshold").expect("keys checked"),
        "confidence_threshold",
    )?;
    if !(0.5..=1.0).contains(&t) {
        return Err(format!("confidence_threshold {t} outside [0.5, 1]"));
    }

    let counts = det.get("counts").expect("keys checked");
    let count_fields = expect_obj(counts, "counts")?;
    expect_keys(
        count_fields,
        &[
            "rows",
            "confident",
            "uncertain",
            "predicted_positive",
            "predicted_negative",
            "confident_positive",
            "confident_negative",
        ],
        "counts",
    )?;
    let get_count = |key: &str| expect_uint(counts.get(key).expect("keys checked"), key);
    let rows = get_count("rows")?;
    let confident = get_count("confident")?;
    if confident + get_count("uncertain")? != rows {
        return Err("confident + uncertain must equal rows".to_string());
    }
    if get_count("predicted_positive")? + get_count("predicted_negative")? != rows {
        return Err("predicted_positive + predicted_negative must equal rows".to_string());
    }
    if get_count("confident_positive")? + get_count("confident_negative")? != confident {
        return Err("confident_positive + confident_negative must equal confident".to_string());
    }

    let mean = expect_float(
        det.get("mean_positive_probability").expect("keys checked"),
        "mean_positive_probability",
    )?;
    if !(0.0..=1.0).contains(&mean) {
        return Err(format!("mean_positive_probability {mean} outside [0, 1]"));
    }

    let histogram = match det.get("probability_histogram") {
        Some(JsonV::Arr(items)) => items,
        other => {
            return Err(format!(
                "probability_histogram must be an array, found {other:?}"
            ))
        }
    };
    if histogram.len() != 10 {
        return Err(format!(
            "probability_histogram must have 10 buckets, found {}",
            histogram.len()
        ));
    }
    let mut total = 0u64;
    for (i, bucket) in histogram.iter().enumerate() {
        total += expect_uint(bucket, &format!("probability_histogram[{i}]"))?;
    }
    if total != rows {
        return Err(format!(
            "probability_histogram sums to {total}, counts.rows is {rows}"
        ));
    }

    let nondet = root.get("nondeterministic").expect("keys checked");
    let nondet_fields = expect_obj(nondet, "nondeterministic")?;
    expect_keys(
        nondet_fields,
        &[
            "thread_limit",
            "elapsed_ms",
            "rows_per_second",
            "scorebench",
        ],
        "nondeterministic",
    )?;
    expect_uint(
        nondet.get("thread_limit").expect("keys checked"),
        "thread_limit",
    )?;
    for key in ["elapsed_ms", "rows_per_second"] {
        if !matches!(
            nondet.get(key).expect("keys checked"),
            JsonV::Float(_) | JsonV::Null
        ) {
            return Err(format!("{key} must be a float"));
        }
    }

    let bench = nondet.get("scorebench").expect("keys checked");
    let bench_fields = expect_obj(bench, "scorebench")?;
    expect_keys(
        bench_fields,
        &[
            "rows",
            "recursive_rows_per_second",
            "branchless_rows_per_second",
            "blocked_rows_per_second",
            "branchless_speedup",
            "blocked_speedup",
        ],
        "scorebench",
    )?;
    expect_uint(bench.get("rows").expect("keys checked"), "scorebench.rows")?;
    for key in [
        "recursive_rows_per_second",
        "branchless_rows_per_second",
        "blocked_rows_per_second",
        "branchless_speedup",
        "blocked_speedup",
    ] {
        let v = expect_float(bench.get(key).expect("keys checked"), key)?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!("scorebench.{key} {v} must be finite and >= 0"));
        }
    }
    Ok(())
}

/// Extracts the training-time score histogram
/// (`deterministic.probability_histogram`) from a rendered
/// `scoring.json`. A serving daemon seeds its drift monitor's
/// reference side with this, so "live vs. training" comparisons use
/// the exact counts the scoring artifact shipped.
pub fn training_score_histogram(text: &str) -> Result<[u64; 10], String> {
    let root = jsonv::parse(text)?;
    let det = root
        .get("deterministic")
        .ok_or("scoring artifact has no deterministic section")?;
    let histogram = match det.get("probability_histogram") {
        Some(JsonV::Arr(items)) => items,
        other => {
            return Err(format!(
                "probability_histogram must be an array, found {other:?}"
            ))
        }
    };
    if histogram.len() != 10 {
        return Err(format!(
            "probability_histogram must have 10 buckets, found {}",
            histogram.len()
        ));
    }
    let mut buckets = [0u64; 10];
    for (out, (i, bucket)) in buckets.iter_mut().zip(histogram.iter().enumerate()) {
        *out = expect_uint(bucket, &format!("probability_histogram[{i}]"))?;
    }
    Ok(buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ModelMeta;
    use crate::score::score_batch;
    use forest::{set_thread_limit, Dataset, RandomForest, RandomForestParams};

    fn fixture() -> (Dataset, SavedModel) {
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()], 2);
        for i in 0..200 {
            let x0 = i as f64 / 200.0;
            let x1 = ((i * 29) % 200) as f64 / 200.0;
            d.push(vec![x0, x1], (x0 + 0.1 * x1 > 0.5) as usize);
        }
        let params = RandomForestParams {
            n_trees: 10,
            ..RandomForestParams::default()
        };
        let forest = RandomForest::fit(&d, &params, 11);
        let meta = ModelMeta {
            positive_fraction: d.class_fraction(1),
            seed: 11,
            params,
            grid: None,
        };
        (d, SavedModel::new(forest, meta))
    }

    fn sample_timing() -> ScoringTiming {
        ScoringTiming {
            thread_limit: 4,
            elapsed_ms: 1.25,
            rows_per_second: 160000.0,
            scorebench: ScoreBench {
                rows: 200,
                recursive_rows_per_second: 20000.0,
                branchless_rows_per_second: 80000.0,
                blocked_rows_per_second: 160000.0,
            },
        }
    }

    #[test]
    fn rendered_scoring_validates() {
        let (data, model) = fixture();
        let summary = score_batch(&model.forest, &data, model.meta.positive_fraction).summary();
        let text = render_scoring("scored", &model, &summary, &sample_timing());
        validate_scoring(&text).expect("schema-valid");
        assert!(text.contains("\"rows\": 200"));
        assert!(text.contains("\"probability_histogram\""));
    }

    #[test]
    fn deterministic_section_is_thread_invariant() {
        let (data, model) = fixture();
        set_thread_limit(Some(1));
        let serial = score_batch(&model.forest, &data, model.meta.positive_fraction).summary();
        set_thread_limit(Some(8));
        let parallel = score_batch(&model.forest, &data, model.meta.positive_fraction).summary();
        set_thread_limit(None);
        assert_eq!(
            deterministic_scoring_section(&model, &serial),
            deterministic_scoring_section(&model, &parallel)
        );
        // Timings are excluded from the deterministic section.
        assert!(!deterministic_scoring_section(&model, &serial).contains("elapsed_ms"));
    }

    #[test]
    fn validator_rejects_drift() {
        let (data, model) = fixture();
        let summary = score_batch(&model.forest, &data, model.meta.positive_fraction).summary();
        let good = render_scoring("scored", &model, &summary, &sample_timing());
        assert!(validate_scoring(&good.replace(SCORING_SCHEMA, "survdb-scoring/v2")).is_err());
        assert!(validate_scoring(&good.replace("\"counts\"", "\"tallies\"")).is_err());
        // Break the histogram/rows identity.
        assert!(validate_scoring(&good.replace("\"rows\": 200", "\"rows\": 201")).is_err());
        assert!(validate_scoring("{}").is_err());
        assert!(validate_scoring("nonsense").is_err());
        // scorebench drift: missing key, negative rate.
        assert!(validate_scoring(&good.replace("\"scorebench\"", "\"kernelbench\"")).is_err());
        assert!(validate_scoring(&good.replace(
            "\"recursive_rows_per_second\": 20000",
            "\"recursive_rows_per_second\": -1"
        ))
        .is_err());
    }

    #[test]
    fn training_histogram_round_trips_from_the_artifact() {
        let (data, model) = fixture();
        let summary = score_batch(&model.forest, &data, model.meta.positive_fraction).summary();
        let text = render_scoring("scored", &model, &summary, &sample_timing());
        let histogram = training_score_histogram(&text).expect("parses");
        assert_eq!(histogram, summary.histogram);
        assert_eq!(histogram.iter().sum::<u64>(), summary.rows as u64);
        assert!(training_score_histogram("{}").is_err());
        assert!(training_score_histogram("nonsense").is_err());
        // Truncated histogram is rejected.
        let truncated = text.replacen("0, ", "", 1);
        if truncated != text {
            assert!(training_score_histogram(&truncated).is_err());
        }
    }

    #[test]
    fn write_scoring_creates_the_artifact() {
        let (data, model) = fixture();
        let summary = score_batch(&model.forest, &data, model.meta.positive_fraction).summary();
        let dir = std::env::temp_dir().join(format!("survdb-scoring-{}", std::process::id()));
        let path =
            write_scoring(&dir, "scored", &model, &summary, &sample_timing()).expect("writes");
        let text = std::fs::read_to_string(&path).expect("readable");
        validate_scoring(&text).expect("valid on disk");
        std::fs::remove_dir_all(&dir).ok();
    }
}
