//! `scoring-schema-check` — validates the structure of a
//! `scoring.json` so producer drift fails the build.
//!
//! ```text
//! cargo run -p survdb-serve --bin scoring-schema-check -- [PATH ...]
//! ```
//!
//! Each PATH (default `artifacts/scoring.json`) must parse and satisfy
//! the `survdb-scoring/v1` schema (see `serve::artifact`), including
//! the counting identities. Exits nonzero on the first violation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths = if args.is_empty() {
        vec!["artifacts/scoring.json".to_string()]
    } else {
        args
    };

    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                obs::error!("schema-check", "cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = serve::validate_scoring(&text) {
            obs::error!("schema-check", "{path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("[schema-check] {path}: valid {}", serve::SCORING_SCHEMA);
    }
    ExitCode::SUCCESS
}
