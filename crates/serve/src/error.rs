//! Typed errors for the on-disk model format.
//!
//! Every failure mode of reading a model file maps to a variant, so
//! callers can distinguish "the disk is broken" from "the bytes are
//! not ours" from "the numbers inside are impossible". Loading never
//! panics on malformed input.

use std::fmt;

/// Why a model file could not be saved or loaded.
#[derive(Debug)]
pub enum ModelError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The text is not valid JSON (truncation lands here).
    Parse(String),
    /// The JSON parses but does not have the `survdb-model/v1` shape.
    Schema(String),
    /// The shape is right but the values fail semantic validation
    /// (out-of-range probabilities, cyclic tree edges, threshold that
    /// disagrees with `max(q, 1 − q)`, …).
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Io(e) => write!(f, "model file i/o: {e}"),
            ModelError::Parse(m) => write!(f, "model file is not JSON: {m}"),
            ModelError::Schema(m) => write!(f, "model schema violation: {m}"),
            ModelError::Invalid(m) => write!(f, "model failed validation: {m}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_and_sources() {
        let io = ModelError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
        assert!(io.source().is_some());

        let schema = ModelError::Schema("bad key".to_string());
        assert!(schema.to_string().contains("schema violation"));
        assert!(schema.source().is_none());
    }
}
