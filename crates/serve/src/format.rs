//! The versioned on-disk model format: `survdb-model/v1`.
//!
//! Layout (rendered with `obs::jsonv` — deterministic two-space
//! pretty printing, keys in fixed order, shortest-roundtrip floats):
//!
//! ```text
//! {
//!   "schema": "survdb-model/v1",
//!   "forest": {
//!     "feature_names": [str],
//!     "class_count":   u64,
//!     "tree_count":    u64,
//!     "oob_accuracy":  f64 | null,
//!     "trees": [            // flat-array node layout, one per tree
//!       {
//!         "kind":               [u64],   // 0 = leaf, 1 = split
//!         "feature":            [u64],
//!         "threshold":          [f64],
//!         "left":               [u64],
//!         "right":              [u64],
//!         "leaf_probabilities": [f64],   // class_count per leaf
//!         "importances":        [f64]    // one per feature
//!       }
//!     ]
//!   },
//!   "metadata": {
//!     "positive_fraction":    f64,   // training prevalence q
//!     "confidence_threshold": f64,   // max(q, 1 − q), §5.3
//!     "seed":                 u64,
//!     "params":               { ... final fit hyper-parameters ... },
//!     "grid": null | {
//!       "best_score": f64,
//!       "candidates": [ {"params": {...}, "score": f64} ]
//!     }
//!   }
//! }
//! ```
//!
//! Determinism: the same [`SavedModel`] always renders the same bytes
//! (floats use the one-rule renderer, which re-parses bitwise), so
//! save→load→save is byte-identical and a loaded forest reproduces
//! the in-memory model's predictions exactly. The parser is strict —
//! exact key sets in fixed order, typed errors, no panics — so format
//! drift fails loudly instead of silently reinterpreting bytes.
//!
//! Format evolution rules live in DESIGN.md §10: breaking changes bump
//! the schema id (`survdb-model/v2`), and a reader only accepts the
//! ids it was built to understand.

use crate::error::ModelError;
use forest::{
    confidence_threshold, DecisionTree, FlatTree, ForestKernel, GridSearchResult, MaxFeatures,
    RandomForest, RandomForestParams, TreeParams,
};
use obs::jsonv::{self, JsonV};
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// Schema identifier accepted by this reader.
pub const MODEL_SCHEMA: &str = "survdb-model/v1";

/// Conventional file name under an artifact directory.
pub const MODEL_FILE: &str = "model.json";

/// Grid-search provenance captured at training time: how the final
/// hyper-parameters were chosen (paper §5.1's tuning protocol).
#[derive(Debug, Clone, PartialEq)]
pub struct GridProvenance {
    /// Mean cross-validated accuracy of the winning candidate.
    pub best_score: f64,
    /// `(params, score)` for every candidate evaluated.
    pub candidates: Vec<(RandomForestParams, f64)>,
}

impl GridProvenance {
    /// Captures provenance from a finished grid search.
    pub fn from_result(result: &GridSearchResult) -> GridProvenance {
        GridProvenance {
            best_score: result.best_score,
            candidates: result.all_scores.clone(),
        }
    }
}

/// Training metadata stored beside the forest: everything the scoring
/// path needs that is not derivable from the trees themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMeta {
    /// Training positive-class fraction `q` — the confidence threshold
    /// is `max(q, 1 − q)`. Must be in `[0, 1]`.
    pub positive_fraction: f64,
    /// Seed the final fit was trained with.
    pub seed: u64,
    /// Hyper-parameters of the final fit.
    pub params: RandomForestParams,
    /// How the parameters were chosen, when grid search ran.
    pub grid: Option<GridProvenance>,
}

/// A forest plus its training metadata — the unit of persistence.
#[derive(Debug, Clone)]
pub struct SavedModel {
    /// The fitted forest.
    pub forest: RandomForest,
    /// Training metadata.
    pub meta: ModelMeta,
    /// The forest's prepared inference kernel, built at most once per
    /// model (eagerly by [`SavedModel::load`], lazily elsewhere) and
    /// shared by every scoring call. Never serialized — the kernel is
    /// derived state, rebuilt from the forest on demand.
    kernel: OnceLock<Arc<ForestKernel>>,
}

impl SavedModel {
    /// Wraps a fitted forest and its metadata. The inference kernel
    /// is not built yet; call [`SavedModel::kernel`] to force it.
    pub fn new(forest: RandomForest, meta: ModelMeta) -> SavedModel {
        SavedModel {
            forest,
            meta,
            kernel: OnceLock::new(),
        }
    }

    /// The model's branchless inference kernel
    /// ([`forest::flatkernel`] layout), built on first call and
    /// cached for the model's lifetime. The daemon forces this at
    /// load/swap time so no request pays the layout-build cost.
    pub fn kernel(&self) -> Arc<ForestKernel> {
        Arc::clone(
            self.kernel
                .get_or_init(|| Arc::new(ForestKernel::from_forest(&self.forest))),
        )
    }
    /// The §5.3 confidence threshold `max(q, 1 − q)` derived from the
    /// stored training prevalence.
    ///
    /// # Panics
    ///
    /// Panics if `meta.positive_fraction` is outside `[0, 1]` — a
    /// loaded model is always in range (the parser validates), so this
    /// only fires on hand-built metadata.
    pub fn threshold(&self) -> f64 {
        confidence_threshold(self.meta.positive_fraction)
    }

    /// Renders the model as `survdb-model/v1` text. Byte-deterministic:
    /// equal models render equal bytes.
    ///
    /// # Panics
    ///
    /// Panics if `meta.positive_fraction` is outside `[0, 1]`.
    pub fn render(&self) -> String {
        JsonV::obj(vec![
            ("schema", JsonV::Str(MODEL_SCHEMA.to_string())),
            ("forest", forest_json(&self.forest)),
            ("metadata", meta_json(&self.meta)),
        ])
        .render()
    }

    /// Parses `survdb-model/v1` text. Strict and total: malformed input
    /// of any kind returns a typed [`ModelError`], never panics.
    pub fn parse(text: &str) -> Result<SavedModel, ModelError> {
        let root = jsonv::parse(text).map_err(ModelError::Parse)?;
        let fields = as_obj(&root, "model")?;
        expect_keys(fields, &["schema", "forest", "metadata"], "model")?;
        match root.get("schema") {
            Some(JsonV::Str(s)) if s == MODEL_SCHEMA => {}
            other => {
                return Err(ModelError::Schema(format!(
                    "schema must be {MODEL_SCHEMA:?}, found {other:?}"
                )))
            }
        }
        let forest = parse_forest(root.get("forest").expect("keys checked"))?;
        let meta = parse_meta(root.get("metadata").expect("keys checked"))?;
        Ok(SavedModel::new(forest, meta))
    }

    /// Writes the rendered model to `path`, creating parent directories
    /// as needed.
    pub fn save(&self, path: &Path) -> Result<(), ModelError> {
        let _span = obs::span!("model_save");
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let text = self.render();
        obs::count("serve.model_bytes_written", text.len() as u64);
        std::fs::write(path, text)?;
        obs::count("serve.models_saved", 1);
        Ok(())
    }

    /// Reads and parses a model from `path`, building the inference
    /// kernel eagerly — a loaded model is ready to score with no
    /// first-batch layout-build latency.
    pub fn load(path: &Path) -> Result<SavedModel, ModelError> {
        let _span = obs::span!("model_load");
        let text = std::fs::read_to_string(path)?;
        let model = SavedModel::parse(&text)?;
        model.kernel();
        obs::count("serve.models_loaded", 1);
        Ok(model)
    }
}

fn forest_json(model: &RandomForest) -> JsonV {
    JsonV::obj(vec![
        (
            "feature_names",
            JsonV::Arr(
                model
                    .feature_names()
                    .iter()
                    .map(|n| JsonV::Str(n.clone()))
                    .collect(),
            ),
        ),
        ("class_count", JsonV::UInt(model.class_count() as u64)),
        ("tree_count", JsonV::UInt(model.tree_count() as u64)),
        (
            "oob_accuracy",
            match model.oob_accuracy() {
                Some(v) => JsonV::Float(v),
                None => JsonV::Null,
            },
        ),
        (
            "trees",
            JsonV::Arr(
                model
                    .trees()
                    .iter()
                    .map(|t| tree_json(&t.to_flat()))
                    .collect(),
            ),
        ),
    ])
}

fn tree_json(flat: &FlatTree) -> JsonV {
    JsonV::obj(vec![
        (
            "kind",
            JsonV::Arr(flat.kind.iter().map(|&v| JsonV::UInt(v as u64)).collect()),
        ),
        (
            "feature",
            JsonV::Arr(
                flat.feature
                    .iter()
                    .map(|&v| JsonV::UInt(v as u64))
                    .collect(),
            ),
        ),
        ("threshold", float_arr(&flat.threshold)),
        (
            "left",
            JsonV::Arr(flat.left.iter().map(|&v| JsonV::UInt(v as u64)).collect()),
        ),
        (
            "right",
            JsonV::Arr(flat.right.iter().map(|&v| JsonV::UInt(v as u64)).collect()),
        ),
        ("leaf_probabilities", float_arr(&flat.leaf_probabilities)),
        ("importances", float_arr(&flat.importances)),
    ])
}

fn float_arr(values: &[f64]) -> JsonV {
    JsonV::Arr(values.iter().map(|&v| JsonV::Float(v)).collect())
}

fn meta_json(meta: &ModelMeta) -> JsonV {
    JsonV::obj(vec![
        ("positive_fraction", JsonV::Float(meta.positive_fraction)),
        (
            "confidence_threshold",
            JsonV::Float(confidence_threshold(meta.positive_fraction)),
        ),
        ("seed", JsonV::UInt(meta.seed)),
        ("params", params_json(&meta.params)),
        (
            "grid",
            match &meta.grid {
                None => JsonV::Null,
                Some(g) => JsonV::obj(vec![
                    ("best_score", JsonV::Float(g.best_score)),
                    (
                        "candidates",
                        JsonV::Arr(
                            g.candidates
                                .iter()
                                .map(|(p, s)| {
                                    JsonV::obj(vec![
                                        ("params", params_json(p)),
                                        ("score", JsonV::Float(*s)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            },
        ),
    ])
}

fn params_json(p: &RandomForestParams) -> JsonV {
    JsonV::obj(vec![
        ("n_trees", JsonV::UInt(p.n_trees as u64)),
        ("max_depth", JsonV::UInt(p.tree.max_depth as u64)),
        (
            "min_samples_split",
            JsonV::UInt(p.tree.min_samples_split as u64),
        ),
        (
            "min_samples_leaf",
            JsonV::UInt(p.tree.min_samples_leaf as u64),
        ),
        (
            "max_features",
            JsonV::Str(match p.max_features {
                MaxFeatures::All => "all".to_string(),
                MaxFeatures::Sqrt => "sqrt".to_string(),
                MaxFeatures::Log2 => "log2".to_string(),
                MaxFeatures::Count(n) => format!("count:{n}"),
            }),
        ),
        ("bootstrap", JsonV::Bool(p.bootstrap)),
    ])
}

// ---- strict parsing helpers (typed errors, never panic) ----

fn as_obj<'a>(v: &'a JsonV, what: &str) -> Result<&'a [(String, JsonV)], ModelError> {
    match v {
        JsonV::Obj(fields) => Ok(fields),
        other => Err(ModelError::Schema(format!(
            "{what} must be an object, found {other:?}"
        ))),
    }
}

fn expect_keys(fields: &[(String, JsonV)], keys: &[&str], what: &str) -> Result<(), ModelError> {
    let found: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if found != keys {
        return Err(ModelError::Schema(format!(
            "{what} must have keys {keys:?}, found {found:?}"
        )));
    }
    Ok(())
}

fn as_arr<'a>(v: &'a JsonV, what: &str) -> Result<&'a [JsonV], ModelError> {
    match v {
        JsonV::Arr(items) => Ok(items),
        other => Err(ModelError::Schema(format!(
            "{what} must be an array, found {other:?}"
        ))),
    }
}

fn as_usize(v: &JsonV, what: &str) -> Result<usize, ModelError> {
    match v {
        JsonV::UInt(n) => usize::try_from(*n)
            .map_err(|_| ModelError::Schema(format!("{what} value {n} does not fit in a usize"))),
        other => Err(ModelError::Schema(format!(
            "{what} must be an unsigned integer, found {other:?}"
        ))),
    }
}

fn as_float(v: &JsonV, what: &str) -> Result<f64, ModelError> {
    match v {
        JsonV::Float(f) => Ok(*f),
        other => Err(ModelError::Schema(format!(
            "{what} must be a float, found {other:?}"
        ))),
    }
}

fn as_str<'a>(v: &'a JsonV, what: &str) -> Result<&'a str, ModelError> {
    match v {
        JsonV::Str(s) => Ok(s),
        other => Err(ModelError::Schema(format!(
            "{what} must be a string, found {other:?}"
        ))),
    }
}

fn as_bool(v: &JsonV, what: &str) -> Result<bool, ModelError> {
    match v {
        JsonV::Bool(b) => Ok(*b),
        other => Err(ModelError::Schema(format!(
            "{what} must be a bool, found {other:?}"
        ))),
    }
}

fn float_vec(v: &JsonV, what: &str) -> Result<Vec<f64>, ModelError> {
    as_arr(v, what)?
        .iter()
        .map(|item| as_float(item, what))
        .collect()
}

fn u32_vec(v: &JsonV, what: &str) -> Result<Vec<u32>, ModelError> {
    as_arr(v, what)?
        .iter()
        .map(|item| match item {
            JsonV::UInt(n) => u32::try_from(*n)
                .map_err(|_| ModelError::Schema(format!("{what} value {n} exceeds u32"))),
            other => Err(ModelError::Schema(format!(
                "{what} must hold unsigned integers, found {other:?}"
            ))),
        })
        .collect()
}

fn u8_vec(v: &JsonV, what: &str) -> Result<Vec<u8>, ModelError> {
    as_arr(v, what)?
        .iter()
        .map(|item| match item {
            JsonV::UInt(n) => u8::try_from(*n)
                .map_err(|_| ModelError::Schema(format!("{what} value {n} exceeds u8"))),
            other => Err(ModelError::Schema(format!(
                "{what} must hold unsigned integers, found {other:?}"
            ))),
        })
        .collect()
}

fn string_vec(v: &JsonV, what: &str) -> Result<Vec<String>, ModelError> {
    as_arr(v, what)?
        .iter()
        .map(|item| as_str(item, what).map(str::to_string))
        .collect()
}

fn parse_forest(v: &JsonV) -> Result<RandomForest, ModelError> {
    let fields = as_obj(v, "forest")?;
    expect_keys(
        fields,
        &[
            "feature_names",
            "class_count",
            "tree_count",
            "oob_accuracy",
            "trees",
        ],
        "forest",
    )?;
    let feature_names = string_vec(
        v.get("feature_names").expect("keys checked"),
        "feature_names",
    )?;
    let class_count = as_usize(v.get("class_count").expect("keys checked"), "class_count")?;
    let tree_count = as_usize(v.get("tree_count").expect("keys checked"), "tree_count")?;
    let oob_accuracy = match v.get("oob_accuracy").expect("keys checked") {
        JsonV::Null => None,
        JsonV::Float(f) => Some(*f),
        other => {
            return Err(ModelError::Schema(format!(
                "oob_accuracy must be a float or null, found {other:?}"
            )))
        }
    };
    let trees_json = as_arr(v.get("trees").expect("keys checked"), "trees")?;
    if trees_json.len() != tree_count {
        return Err(ModelError::Schema(format!(
            "tree_count says {tree_count} trees, found {}",
            trees_json.len()
        )));
    }
    let mut trees = Vec::with_capacity(trees_json.len());
    for (i, tv) in trees_json.iter().enumerate() {
        trees.push(parse_tree(tv, feature_names.len(), class_count, i)?);
    }
    RandomForest::from_parts(trees, feature_names, class_count, oob_accuracy)
        .map_err(ModelError::Invalid)
}

fn parse_tree(
    v: &JsonV,
    feature_count: usize,
    class_count: usize,
    index: usize,
) -> Result<DecisionTree, ModelError> {
    let what = format!("trees[{index}]");
    let fields = as_obj(v, &what)?;
    expect_keys(
        fields,
        &[
            "kind",
            "feature",
            "threshold",
            "left",
            "right",
            "leaf_probabilities",
            "importances",
        ],
        &what,
    )?;
    let flat = FlatTree {
        feature_count,
        class_count,
        kind: u8_vec(v.get("kind").expect("keys checked"), &what)?,
        feature: u32_vec(v.get("feature").expect("keys checked"), &what)?,
        threshold: float_vec(v.get("threshold").expect("keys checked"), &what)?,
        left: u32_vec(v.get("left").expect("keys checked"), &what)?,
        right: u32_vec(v.get("right").expect("keys checked"), &what)?,
        leaf_probabilities: float_vec(v.get("leaf_probabilities").expect("keys checked"), &what)?,
        importances: float_vec(v.get("importances").expect("keys checked"), &what)?,
    };
    DecisionTree::from_flat(&flat).map_err(|e| ModelError::Invalid(format!("{what}: {e}")))
}

fn parse_meta(v: &JsonV) -> Result<ModelMeta, ModelError> {
    let fields = as_obj(v, "metadata")?;
    expect_keys(
        fields,
        &[
            "positive_fraction",
            "confidence_threshold",
            "seed",
            "params",
            "grid",
        ],
        "metadata",
    )?;
    let positive_fraction = as_float(
        v.get("positive_fraction").expect("keys checked"),
        "positive_fraction",
    )?;
    if !positive_fraction.is_finite() || !(0.0..=1.0).contains(&positive_fraction) {
        return Err(ModelError::Invalid(format!(
            "positive_fraction {positive_fraction} outside [0, 1]"
        )));
    }
    let stored = as_float(
        v.get("confidence_threshold").expect("keys checked"),
        "confidence_threshold",
    )?;
    let derived = confidence_threshold(positive_fraction);
    if stored.to_bits() != derived.to_bits() {
        return Err(ModelError::Invalid(format!(
            "confidence_threshold {stored} disagrees with max(q, 1 - q) = {derived}"
        )));
    }
    let seed = match v.get("seed").expect("keys checked") {
        JsonV::UInt(n) => *n,
        other => {
            return Err(ModelError::Schema(format!(
                "seed must be an unsigned integer, found {other:?}"
            )))
        }
    };
    let params = parse_params(v.get("params").expect("keys checked"), "params")?;
    let grid = match v.get("grid").expect("keys checked") {
        JsonV::Null => None,
        g => {
            let gf = as_obj(g, "grid")?;
            expect_keys(gf, &["best_score", "candidates"], "grid")?;
            let best_score = as_float(g.get("best_score").expect("keys checked"), "best_score")?;
            if !best_score.is_finite() {
                return Err(ModelError::Invalid(format!(
                    "best_score {best_score} is not finite"
                )));
            }
            let cands = as_arr(g.get("candidates").expect("keys checked"), "candidates")?;
            let mut candidates = Vec::with_capacity(cands.len());
            for (i, c) in cands.iter().enumerate() {
                let what = format!("candidates[{i}]");
                let cf = as_obj(c, &what)?;
                expect_keys(cf, &["params", "score"], &what)?;
                let p = parse_params(c.get("params").expect("keys checked"), &what)?;
                let score = as_float(c.get("score").expect("keys checked"), &what)?;
                if !score.is_finite() {
                    return Err(ModelError::Invalid(format!(
                        "{what} score {score} is not finite"
                    )));
                }
                candidates.push((p, score));
            }
            Some(GridProvenance {
                best_score,
                candidates,
            })
        }
    };
    Ok(ModelMeta {
        positive_fraction,
        seed,
        params,
        grid,
    })
}

fn parse_params(v: &JsonV, what: &str) -> Result<RandomForestParams, ModelError> {
    let fields = as_obj(v, what)?;
    expect_keys(
        fields,
        &[
            "n_trees",
            "max_depth",
            "min_samples_split",
            "min_samples_leaf",
            "max_features",
            "bootstrap",
        ],
        what,
    )?;
    let max_features = match as_str(v.get("max_features").expect("keys checked"), "max_features")? {
        "all" => MaxFeatures::All,
        "sqrt" => MaxFeatures::Sqrt,
        "log2" => MaxFeatures::Log2,
        other => other
            .strip_prefix("count:")
            .and_then(|n| n.parse::<usize>().ok())
            .map(MaxFeatures::Count)
            .ok_or_else(|| ModelError::Schema(format!("unknown max_features {other:?}")))?,
    };
    Ok(RandomForestParams {
        n_trees: as_usize(v.get("n_trees").expect("keys checked"), "n_trees")?,
        tree: TreeParams {
            max_depth: as_usize(v.get("max_depth").expect("keys checked"), "max_depth")?,
            min_samples_split: as_usize(
                v.get("min_samples_split").expect("keys checked"),
                "min_samples_split",
            )?,
            min_samples_leaf: as_usize(
                v.get("min_samples_leaf").expect("keys checked"),
                "min_samples_leaf",
            )?,
        },
        max_features,
        bootstrap: as_bool(v.get("bootstrap").expect("keys checked"), "bootstrap")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest::Dataset;

    fn tiny_dataset() -> Dataset {
        // Deterministic two-feature data: class 1 iff x0 + 0.2·x1 > 0.55.
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()], 2);
        for i in 0..120 {
            let x0 = i as f64 / 120.0;
            let x1 = ((i * 37) % 120) as f64 / 120.0;
            d.push(vec![x0, x1], (x0 + 0.2 * x1 > 0.55) as usize);
        }
        d
    }

    fn tiny_model(grid: Option<GridProvenance>) -> (Dataset, SavedModel) {
        let data = tiny_dataset();
        let params = RandomForestParams {
            n_trees: 8,
            ..RandomForestParams::default()
        };
        let forest = RandomForest::fit(&data, &params, 42);
        let meta = ModelMeta {
            positive_fraction: data.class_fraction(1),
            seed: 42,
            params,
            grid,
        };
        (data, SavedModel::new(forest, meta))
    }

    fn sample_grid() -> GridProvenance {
        // Exercise every MaxFeatures encoding in provenance.
        let base = RandomForestParams::default();
        GridProvenance {
            best_score: 0.875,
            candidates: vec![
                (base, 0.875),
                (
                    RandomForestParams {
                        max_features: MaxFeatures::All,
                        bootstrap: false,
                        ..base
                    },
                    0.8125,
                ),
                (
                    RandomForestParams {
                        max_features: MaxFeatures::Log2,
                        ..base
                    },
                    0.75,
                ),
                (
                    RandomForestParams {
                        max_features: MaxFeatures::Count(3),
                        ..base
                    },
                    0.625,
                ),
            ],
        }
    }

    #[test]
    fn render_parse_render_is_byte_identical() {
        let (data, model) = tiny_model(Some(sample_grid()));
        let first = model.render();
        let reloaded = SavedModel::parse(&first).expect("own render parses");
        assert_eq!(reloaded.render(), first);
        assert_eq!(reloaded.meta, model.meta);
        // The reloaded forest reproduces predictions bitwise.
        for i in 0..data.len() {
            assert_eq!(
                reloaded.forest.predict_proba_row(&data, i),
                model.forest.predict_proba_row(&data, i)
            );
        }
        assert_eq!(reloaded.forest.oob_accuracy(), model.forest.oob_accuracy());
        assert_eq!(
            reloaded.forest.feature_importances(),
            model.forest.feature_importances()
        );
    }

    #[test]
    fn save_load_roundtrip_on_disk() {
        let (_, model) = tiny_model(None);
        let path = std::env::temp_dir().join(format!(
            "survdb-serve-roundtrip-{}.json",
            std::process::id()
        ));
        model.save(&path).expect("saves");
        let reloaded = SavedModel::load(&path).expect("loads");
        assert_eq!(reloaded.render(), model.render());
        assert_eq!(reloaded.threshold(), model.threshold());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = SavedModel::load(Path::new("/nonexistent/survdb/model.json"))
            .expect_err("missing file");
        assert!(matches!(err, ModelError::Io(_)), "{err}");
    }

    #[test]
    fn parse_rejects_with_typed_errors() {
        let (_, model) = tiny_model(Some(sample_grid()));
        let good = model.render();

        // Not JSON at all (and any truncation of our render).
        assert!(matches!(
            SavedModel::parse("not json {"),
            Err(ModelError::Parse(_))
        ));
        assert!(matches!(
            SavedModel::parse(&good[..good.len() / 2]),
            Err(ModelError::Parse(_))
        ));

        // Valid JSON, wrong shape or schema id.
        assert!(matches!(
            SavedModel::parse("{}"),
            Err(ModelError::Schema(_))
        ));
        assert!(matches!(
            SavedModel::parse(&good.replace(MODEL_SCHEMA, "survdb-model/v9")),
            Err(ModelError::Schema(_))
        ));
        assert!(matches!(
            SavedModel::parse(&good.replace("\"tree_count\"", "\"trees_total\"")),
            Err(ModelError::Schema(_))
        ));
        assert!(matches!(
            SavedModel::parse(
                &good.replace("\"max_features\": \"sqrt\"", "\"max_features\": \"cube\"")
            ),
            Err(ModelError::Schema(_))
        ));

        // Shape intact, semantics broken.
        let q = model.meta.positive_fraction;
        let tampered = good.replace(
            &format!("\"positive_fraction\": {q}"),
            "\"positive_fraction\": 0.125",
        );
        assert_ne!(tampered, good, "tamper target must exist");
        assert!(matches!(
            SavedModel::parse(&tampered),
            Err(ModelError::Invalid(_))
        ));
        assert!(matches!(
            SavedModel::parse(&good.replace("\"class_count\": 2", "\"class_count\": 3")),
            Err(ModelError::Invalid(_))
        ));
    }
}
