//! Model persistence and batch scoring — the train-once/score-many
//! layer on top of `forest`.
//!
//! The paper's end product is a day-2 classifier whose predictions are
//! partitioned into confident and uncertain sets by the threshold
//! `t = max(q, 1 − q)` (§5.3). Training that classifier is expensive
//! (grid search over a forest grid with 5-fold CV); scoring it is
//! cheap. This crate separates the two:
//!
//! - [`format`] — the `survdb-model/v1` on-disk format: a versioned,
//!   byte-deterministic JSON document holding the forest (flat-array
//!   node layout), the feature schema, the training prevalence `q`,
//!   and grid-search provenance. [`SavedModel::save`] /
//!   [`SavedModel::load`] round-trip byte-identically and a loaded
//!   forest reproduces the in-memory model's predictions bitwise.
//! - [`score`] — [`score_batch`]: batched scoring through the
//!   branchless cache-blocked [`forest::flatkernel`] kernel over
//!   `forest::parallel::run_units_scratch`, with
//!   thread-count-invariant output order, emitting per-row class
//!   probabilities plus the paper's confident/uncertain partition.
//!   The pre-kernel recursive walk is kept as
//!   [`score_batch_recursive`] — the frozen bitwise-parity reference.
//! - [`artifact`] — `artifacts/scoring.json` (`survdb-scoring/v1`),
//!   split into a deterministic counts section and a nondeterministic
//!   throughput section, mirroring the run-trace convention.
//!
//! Malformed model files produce a typed [`ModelError`], never a
//! panic — corruption robustness is pinned by fuzz-style tests that
//! bit-flip saved models.

pub mod artifact;
pub mod error;
pub mod format;
pub mod score;

pub use artifact::{
    deterministic_scoring_section, render_scoring, training_score_histogram, validate_scoring,
    write_scoring, ScoreBench, ScoringTiming, SCORING_FILE, SCORING_SCHEMA,
};
pub use error::ModelError;
pub use forest::flatkernel::{ForestKernel, KernelScratch, KernelStats, QuantizedKernel};
pub use format::{GridProvenance, ModelMeta, SavedModel, MODEL_FILE, MODEL_SCHEMA};
pub use score::{
    histogram_bucket, score_batch, score_batch_recursive, score_batch_with, score_rows,
    score_rows_with, ScoreFacts, ScoreSummary, ScoredBatch, ScoredRow,
};
