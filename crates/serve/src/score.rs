//! Batched parallel scoring with thread-count-invariant output.
//!
//! [`score_batch`] dispatches contiguous row chunks through
//! `forest::parallel::run_units`; results come back index-slotted, so
//! concatenating them yields rows in dataset order no matter how many
//! worker threads ran. Per row it emits the full class-probability
//! vector, the positive-class probability, the paper's decision rule
//! (`p > 0.5`), and the §5.3 confident/uncertain split under
//! `t = max(q, 1 − q)`.

use forest::confidence::classify_confidence;
use forest::{
    confidence_threshold, ConfidenceSplit, Dataset, PartitionedPredictions, RandomForest,
};

/// Rows per parallel work unit — large enough to amortize dispatch,
/// small enough to balance across workers on modest batches.
const CHUNK_ROWS: usize = 64;

/// One scored example.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredRow {
    /// Row index in the scored dataset.
    pub index: usize,
    /// Averaged per-class probabilities from the forest.
    pub probabilities: Vec<f64>,
    /// Probability of the positive class (class 1).
    pub positive: f64,
    /// Predicted class under the paper's `p > 0.5` rule.
    pub predicted: usize,
    /// Confident or uncertain under `t = max(q, 1 − q)`.
    pub split: ConfidenceSplit,
}

/// The result of scoring a dataset: rows in dataset order plus the
/// threshold context they were classified under.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredBatch {
    /// Training positive fraction the threshold derives from.
    pub positive_fraction: f64,
    /// The §5.3 threshold `max(q, 1 − q)`.
    pub threshold: f64,
    /// Scored rows, index `i` at position `i`.
    pub rows: Vec<ScoredRow>,
}

impl ScoredBatch {
    /// Positive-class probabilities in row order.
    pub fn positives(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.positive).collect()
    }

    /// The batch as a [`PartitionedPredictions`] — exactly what
    /// `PartitionedPredictions::partition` over [`ScoredBatch::positives`]
    /// produces, so persisted-and-rescored output can be compared
    /// directly against the in-memory pipeline.
    pub fn partition(&self) -> PartitionedPredictions {
        PartitionedPredictions::partition(&self.positives(), self.positive_fraction)
    }

    /// Deterministic count aggregates for reports and artifacts.
    pub fn summary(&self) -> ScoreSummary {
        let mut summary = ScoreSummary {
            rows: self.rows.len(),
            confident: 0,
            uncertain: 0,
            predicted_positive: 0,
            predicted_negative: 0,
            confident_positive: 0,
            confident_negative: 0,
            positive_fraction: self.positive_fraction,
            threshold: self.threshold,
            mean_positive: 0.0,
            histogram: [0; 10],
        };
        let mut sum = 0.0;
        for row in &self.rows {
            sum += row.positive;
            summary.histogram[histogram_bucket(row.positive)] += 1;
            if row.predicted == 1 {
                summary.predicted_positive += 1;
            } else {
                summary.predicted_negative += 1;
            }
            match row.split {
                ConfidenceSplit::Confident => {
                    summary.confident += 1;
                    if row.predicted == 1 {
                        summary.confident_positive += 1;
                    } else {
                        summary.confident_negative += 1;
                    }
                }
                ConfidenceSplit::Uncertain => summary.uncertain += 1,
            }
        }
        if !self.rows.is_empty() {
            summary.mean_positive = sum / self.rows.len() as f64;
        }
        summary
    }
}

/// Count aggregates of a scored batch. Every field is a deterministic
/// function of `(model, dataset, q)` — thread count never shows up.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreSummary {
    /// Rows scored.
    pub rows: usize,
    /// Rows with `p >= t` or `p <= 1 − t`.
    pub confident: usize,
    /// Rows strictly inside `(1 − t, t)`.
    pub uncertain: usize,
    /// Rows predicted positive (`p > 0.5`).
    pub predicted_positive: usize,
    /// Rows predicted negative.
    pub predicted_negative: usize,
    /// Confident rows predicted positive.
    pub confident_positive: usize,
    /// Confident rows predicted negative.
    pub confident_negative: usize,
    /// Training positive fraction `q`.
    pub positive_fraction: f64,
    /// `max(q, 1 − q)`.
    pub threshold: f64,
    /// Mean positive-class probability (0 when the batch is empty).
    pub mean_positive: f64,
    /// Positive-probability histogram: bucket `b` counts rows with
    /// `p` in `[b/10, (b+1)/10)` (the last bucket includes 1.0).
    pub histogram: [u64; 10],
}

/// The [`ScoreSummary::histogram`] bucket for a positive-class
/// probability.
///
/// Buckets follow a half-open convention: bucket `b` covers
/// `[b/10, (b+1)/10)`, except the last bucket, which closes at 1.0.
/// Boundary probabilities therefore land deterministically in the
/// *upper* bucket — 0.1 is bucket 1, 0.5 is bucket 5 — and exactly
/// 1.0 folds into bucket 9 rather than a phantom bucket 10. Every
/// artifact and report that renders the histogram shares this one
/// definition.
pub fn histogram_bucket(positive: f64) -> usize {
    ((positive * 10.0).floor() as usize).min(9)
}

/// Scores raw feature rows (no labels) — the serving path's entry
/// point. Equivalent to building a dataset from `rows` and calling
/// [`score_batch`]; each row's probabilities are an independent
/// sequential tree walk, so scoring a concatenation of requests is
/// bitwise identical to scoring each request alone (the micro-batcher
/// relies on this).
///
/// # Panics
///
/// Panics (via `Dataset::push`) if any row has the wrong feature count
/// or a non-finite value — callers validate at the protocol boundary.
pub fn score_rows(model: &RandomForest, rows: &[Vec<f64>], positive_fraction: f64) -> ScoredBatch {
    let mut data = Dataset::new(model.feature_names().to_vec(), 2);
    for row in rows {
        data.push(row.clone(), 0);
    }
    score_batch(model, &data, positive_fraction)
}

/// Scores every row of `data` with `model`, partitioning by the
/// threshold derived from `positive_fraction`.
///
/// Deterministic: output rows are in dataset order and bitwise
/// identical across thread counts — chunks are index-slotted work
/// units, and each row's probabilities come from the same sequential
/// tree walk regardless of which worker ran it.
///
/// # Panics
///
/// Panics if `positive_fraction` is outside `[0, 1]`.
pub fn score_batch(model: &RandomForest, data: &Dataset, positive_fraction: f64) -> ScoredBatch {
    let _span = obs::span!("score_batch");
    let threshold = confidence_threshold(positive_fraction);
    let n = data.len();
    let chunks = n.div_ceil(CHUNK_ROWS);
    let scored: Vec<Vec<ScoredRow>> = forest::parallel::run_units(chunks, |c| {
        let lo = c * CHUNK_ROWS;
        let hi = (lo + CHUNK_ROWS).min(n);
        let mut out = Vec::with_capacity(hi - lo);
        for index in lo..hi {
            let probabilities = model.predict_proba_row(data, index);
            let positive = probabilities[1];
            out.push(ScoredRow {
                index,
                positive,
                predicted: (positive > 0.5) as usize,
                split: classify_confidence(positive, threshold),
                probabilities,
            });
        }
        out
    });
    let rows: Vec<ScoredRow> = scored.into_iter().flatten().collect();
    let confident = rows
        .iter()
        .filter(|r| r.split == ConfidenceSplit::Confident)
        .count();
    obs::count("serve.rows_scored", rows.len() as u64);
    obs::count("serve.score_chunks", chunks as u64);
    obs::count("serve.rows_confident", confident as u64);
    obs::count("serve.rows_uncertain", (rows.len() - confident) as u64);
    ScoredBatch {
        positive_fraction,
        threshold,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest::{set_thread_limit, RandomForestParams};

    fn fixture() -> (Dataset, RandomForest, f64) {
        // Big enough to span several chunks, with some noise so the
        // probability spectrum is not degenerate.
        let mut d = Dataset::new(vec!["x0".into(), "x1".into(), "n0".into()], 2);
        for i in 0..300 {
            let x0 = i as f64 / 300.0;
            let x1 = ((i * 53) % 300) as f64 / 300.0;
            let n0 = ((i * 17) % 300) as f64 / 300.0;
            d.push(vec![x0, x1, n0], (x0 + 0.3 * x1 > 0.6) as usize);
        }
        let params = RandomForestParams {
            n_trees: 12,
            ..RandomForestParams::default()
        };
        let model = RandomForest::fit(&d, &params, 7);
        let q = d.class_fraction(1);
        (d, model, q)
    }

    #[test]
    fn matches_sequential_scoring() {
        let (data, model, q) = fixture();
        let batch = score_batch(&model, &data, q);
        assert_eq!(batch.rows.len(), data.len());
        for (i, row) in batch.rows.iter().enumerate() {
            assert_eq!(row.index, i);
            assert_eq!(row.probabilities, model.predict_proba_row(&data, i));
            assert_eq!(row.positive, row.probabilities[1]);
        }
        // The partition is exactly the in-memory pipeline's partition.
        assert_eq!(
            batch.partition(),
            PartitionedPredictions::partition(&batch.positives(), q)
        );
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let (data, model, q) = fixture();
        set_thread_limit(Some(1));
        let serial = score_batch(&model, &data, q);
        set_thread_limit(Some(8));
        let parallel = score_batch(&model, &data, q);
        set_thread_limit(None);
        assert_eq!(serial, parallel);
        assert_eq!(serial.summary(), parallel.summary());
    }

    #[test]
    fn summary_invariants() {
        let (data, model, q) = fixture();
        let summary = score_batch(&model, &data, q).summary();
        assert_eq!(summary.rows, data.len());
        assert_eq!(summary.confident + summary.uncertain, summary.rows);
        assert_eq!(
            summary.predicted_positive + summary.predicted_negative,
            summary.rows
        );
        assert_eq!(
            summary.confident_positive + summary.confident_negative,
            summary.confident
        );
        assert_eq!(summary.histogram.iter().sum::<u64>(), summary.rows as u64);
        assert!((0.0..=1.0).contains(&summary.mean_positive));
        assert_eq!(summary.threshold, confidence_threshold(q));
    }

    #[test]
    fn histogram_buckets_are_half_open_and_boundary_stable() {
        // Each decade boundary k/10 lands in bucket k (half-open
        // convention), and 1.0 folds into the last bucket instead of
        // indexing out of range. Pinned so a refactor of the bucket
        // arithmetic cannot silently shift boundary probabilities.
        for k in 0..10usize {
            assert_eq!(histogram_bucket(k as f64 / 10.0), k, "boundary {k}/10");
        }
        assert_eq!(histogram_bucket(0.1), 1);
        assert_eq!(histogram_bucket(0.5), 5);
        assert_eq!(histogram_bucket(1.0), 9);
        // Interior values stay in their decade.
        assert_eq!(histogram_bucket(0.099999999), 0);
        assert_eq!(histogram_bucket(0.49999999999), 4);
        assert_eq!(histogram_bucket(0.999999), 9);
    }

    #[test]
    fn score_rows_matches_score_batch() {
        let (data, model, q) = fixture();
        let rows: Vec<Vec<f64>> = (0..data.len()).map(|i| data.row(i)).collect();
        let via_rows = score_rows(&model, &rows, q);
        let via_dataset = score_batch(&model, &data, q);
        assert_eq!(via_rows, via_dataset);
    }

    #[test]
    fn empty_dataset_scores_empty() {
        let (_, model, q) = fixture();
        let empty = Dataset::new(vec!["x0".into(), "x1".into(), "n0".into()], 2);
        let batch = score_batch(&model, &empty, q);
        assert!(batch.rows.is_empty());
        let summary = batch.summary();
        assert_eq!(summary.rows, 0);
        assert_eq!(summary.mean_positive, 0.0);
    }
}
