//! Batched parallel scoring with thread-count-invariant output.
//!
//! The default path runs the branchless cache-blocked
//! [`forest::flatkernel`] kernel: [`score_batch`] gathers contiguous
//! row chunks, dispatches them through
//! `forest::parallel::run_units_scratch` (tile/cursor/accumulator
//! buffers are per-worker scratch — the hot loop allocates nothing
//! per row), and each chunk traverses the linearized forest one row
//! tile at a time. Results come back index-slotted, so concatenating
//! them yields rows in dataset order no matter how many worker
//! threads ran. Per row it emits the full class-probability vector,
//! the positive-class probability, the paper's decision rule
//! (`p > 0.5`), and the §5.3 confident/uncertain split under
//! `t = max(q, 1 − q)`.
//!
//! The pre-kernel recursive walk survives as
//! [`score_batch_recursive`] — the frozen reference the kernel is
//! cross-checked against bitwise (`bench::legacy` discipline): same
//! rows, same probabilities, same bits.

use forest::confidence::classify_confidence;
use forest::flatkernel::{ForestKernel, KernelScratch, KernelStats, ROW_TILE};
use forest::{
    confidence_threshold, ConfidenceSplit, Dataset, PartitionedPredictions, RandomForest,
};

/// Rows per parallel work unit — large enough to amortize dispatch,
/// small enough to balance across workers on modest batches. Equals
/// `forest::flatkernel::ROW_TILE`, so one chunk is one kernel tile.
const CHUNK_ROWS: usize = 64;

/// One scored example.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredRow {
    /// Row index in the scored dataset.
    pub index: usize,
    /// Averaged per-class probabilities from the forest.
    pub probabilities: Vec<f64>,
    /// Probability of the positive class (class 1).
    pub positive: f64,
    /// Predicted class under the paper's `p > 0.5` rule.
    pub predicted: usize,
    /// Confident or uncertain under `t = max(q, 1 − q)`.
    pub split: ConfidenceSplit,
}

/// The result of scoring a dataset: rows in dataset order plus the
/// threshold context they were classified under.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredBatch {
    /// Training positive fraction the threshold derives from.
    pub positive_fraction: f64,
    /// The §5.3 threshold `max(q, 1 − q)`.
    pub threshold: f64,
    /// Scored rows, index `i` at position `i`.
    pub rows: Vec<ScoredRow>,
}

/// The slice of a [`ScoredRow`] the provisioning policy layer
/// consumes: the positive-class probability, the paper's `p > 0.5`
/// decision, and the §5.3 confident/uncertain split. Probabilities
/// for other classes, row indices, and threshold context are
/// deliberately absent — a policy decision must be a pure function of
/// these facts (plus the subgroup and the spec), which the policy
/// crate's proptests pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreFacts {
    /// Probability of the positive (long-lived) class.
    pub positive: f64,
    /// Predicted class under `p > 0.5`.
    pub predicted: usize,
    /// Confident or uncertain under `t = max(q, 1 − q)`.
    pub split: ConfidenceSplit,
}

impl From<&ScoredRow> for ScoreFacts {
    fn from(row: &ScoredRow) -> ScoreFacts {
        ScoreFacts {
            positive: row.positive,
            predicted: row.predicted,
            split: row.split,
        }
    }
}

impl ScoredBatch {
    /// Positive-class probabilities in row order.
    pub fn positives(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.positive).collect()
    }

    /// The batch reduced to policy inputs, row order preserved — the
    /// scored-batch → decision-layer adapter.
    pub fn facts(&self) -> Vec<ScoreFacts> {
        self.rows.iter().map(ScoreFacts::from).collect()
    }

    /// The batch as a [`PartitionedPredictions`] — exactly what
    /// `PartitionedPredictions::partition` over [`ScoredBatch::positives`]
    /// produces, so persisted-and-rescored output can be compared
    /// directly against the in-memory pipeline.
    pub fn partition(&self) -> PartitionedPredictions {
        PartitionedPredictions::partition(&self.positives(), self.positive_fraction)
    }

    /// Deterministic count aggregates for reports and artifacts.
    pub fn summary(&self) -> ScoreSummary {
        let mut summary = ScoreSummary {
            rows: self.rows.len(),
            confident: 0,
            uncertain: 0,
            predicted_positive: 0,
            predicted_negative: 0,
            confident_positive: 0,
            confident_negative: 0,
            positive_fraction: self.positive_fraction,
            threshold: self.threshold,
            mean_positive: 0.0,
            histogram: [0; 10],
        };
        let mut sum = 0.0;
        for row in &self.rows {
            sum += row.positive;
            summary.histogram[histogram_bucket(row.positive)] += 1;
            if row.predicted == 1 {
                summary.predicted_positive += 1;
            } else {
                summary.predicted_negative += 1;
            }
            match row.split {
                ConfidenceSplit::Confident => {
                    summary.confident += 1;
                    if row.predicted == 1 {
                        summary.confident_positive += 1;
                    } else {
                        summary.confident_negative += 1;
                    }
                }
                ConfidenceSplit::Uncertain => summary.uncertain += 1,
            }
        }
        if !self.rows.is_empty() {
            summary.mean_positive = sum / self.rows.len() as f64;
        }
        summary
    }
}

/// Count aggregates of a scored batch. Every field is a deterministic
/// function of `(model, dataset, q)` — thread count never shows up.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreSummary {
    /// Rows scored.
    pub rows: usize,
    /// Rows with `p >= t` or `p <= 1 − t`.
    pub confident: usize,
    /// Rows strictly inside `(1 − t, t)`.
    pub uncertain: usize,
    /// Rows predicted positive (`p > 0.5`).
    pub predicted_positive: usize,
    /// Rows predicted negative.
    pub predicted_negative: usize,
    /// Confident rows predicted positive.
    pub confident_positive: usize,
    /// Confident rows predicted negative.
    pub confident_negative: usize,
    /// Training positive fraction `q`.
    pub positive_fraction: f64,
    /// `max(q, 1 − q)`.
    pub threshold: f64,
    /// Mean positive-class probability (0 when the batch is empty).
    pub mean_positive: f64,
    /// Positive-probability histogram: bucket `b` counts rows with
    /// `p` in `[b/10, (b+1)/10)` (the last bucket includes 1.0).
    pub histogram: [u64; 10],
}

/// The [`ScoreSummary::histogram`] bucket for a positive-class
/// probability.
///
/// Buckets follow a half-open convention: bucket `b` covers
/// `[b/10, (b+1)/10)`, except the last bucket, which closes at 1.0.
/// Boundary probabilities therefore land deterministically in the
/// *upper* bucket — 0.1 is bucket 1, 0.5 is bucket 5 — and exactly
/// 1.0 folds into bucket 9 rather than a phantom bucket 10. Every
/// artifact and report that renders the histogram shares this one
/// definition — [`obs::drift::score_bucket`], which the serving
/// drift monitor also uses, so training-time and live histograms are
/// bucket-compatible by construction.
pub fn histogram_bucket(positive: f64) -> usize {
    obs::drift::score_bucket(positive)
}

/// Where a scoring call reads its feature rows from: the columnar
/// dataset path or the serving path's raw request rows. Both gather
/// straight into the kernel's feature-major tile layout, so no
/// transpose sits between the gather and the traversal.
enum RowSource<'a> {
    Data(&'a Dataset),
    Rows(&'a [Vec<f64>]),
}

impl RowSource<'_> {
    fn len(&self) -> usize {
        match self {
            RowSource::Data(data) => data.len(),
            RowSource::Rows(rows) => rows.len(),
        }
    }

    /// Gathers rows `lo..lo + len` into `tile` feature-major with
    /// stride [`ROW_TILE`] (`tile[f * ROW_TILE + r]`) — the layout
    /// [`ForestKernel::score_tile_into`] consumes directly. The
    /// columnar dataset path is one contiguous memcpy per feature;
    /// only the serving path's row-major request rows pay a scatter.
    fn fill_tile(&self, lo: usize, len: usize, feature_count: usize, tile: &mut [f64]) {
        match self {
            RowSource::Data(data) => {
                for f in 0..feature_count {
                    tile[f * ROW_TILE..f * ROW_TILE + len]
                        .copy_from_slice(&data.column(f)[lo..lo + len]);
                }
            }
            RowSource::Rows(rows) => {
                for (r, row) in rows[lo..lo + len].iter().enumerate() {
                    for (f, &v) in row.iter().enumerate() {
                        tile[f * ROW_TILE + r] = v;
                    }
                }
            }
        }
    }
}

/// Per-worker scoring scratch: one gathered feature-major tile, one
/// probability accumulator, and the kernel's traversal cursors.
/// Allocated once per participating thread by `run_units_scratch`,
/// reused across chunks.
struct ScoreScratch {
    tile: Vec<f64>,
    probs: Vec<f64>,
    kernel: KernelScratch,
}

/// The kernel-backed chunked scoring driver shared by every entry
/// point. `chunk_rows` is fixed at [`CHUNK_ROWS`] in production;
/// tests vary it to pin chunking-seam invariance.
fn score_chunks(
    kernel: &ForestKernel,
    source: &RowSource<'_>,
    positive_fraction: f64,
    chunk_rows: usize,
) -> ScoredBatch {
    let _span = obs::span!("score_batch");
    let threshold = confidence_threshold(positive_fraction);
    let n = source.len();
    let nf = kernel.feature_count();
    let cc = kernel.class_count();
    let chunks = n.div_ceil(chunk_rows);
    let scored: Vec<(Vec<ScoredRow>, KernelStats)> = forest::parallel::run_units_scratch(
        chunks,
        || ScoreScratch {
            tile: vec![0.0; nf * ROW_TILE],
            probs: vec![0.0; chunk_rows * cc],
            kernel: KernelScratch::new(),
        },
        |scratch, c| {
            let lo = c * chunk_rows;
            let len = chunk_rows.min(n - lo);
            // One kernel tile at a time: gather feature-major, then
            // traverse in place. Production chunks equal ROW_TILE, so
            // this loop runs once; the oversized-chunk test hook
            // walks multiple tiles.
            let mut stats = KernelStats::default();
            let mut done = 0usize;
            while done < len {
                let tile_len = ROW_TILE.min(len - done);
                source.fill_tile(lo + done, tile_len, nf, &mut scratch.tile);
                stats.merge(kernel.score_tile_into(
                    &scratch.tile,
                    tile_len,
                    &mut scratch.kernel,
                    &mut scratch.probs[done * cc..(done + tile_len) * cc],
                ));
                done += tile_len;
            }
            let mut out = Vec::with_capacity(len);
            for r in 0..len {
                let probabilities = scratch.probs[r * cc..(r + 1) * cc].to_vec();
                let positive = probabilities[1];
                out.push(ScoredRow {
                    index: lo + r,
                    positive,
                    predicted: (positive > 0.5) as usize,
                    split: classify_confidence(positive, threshold),
                    probabilities,
                });
            }
            (out, stats)
        },
    );
    let mut stats = KernelStats::default();
    let mut rows: Vec<ScoredRow> = Vec::with_capacity(n);
    for (chunk, chunk_stats) in scored {
        stats.merge(chunk_stats);
        rows.extend(chunk);
    }
    let confident = rows
        .iter()
        .filter(|r| r.split == ConfidenceSplit::Confident)
        .count();
    if obs::enabled() {
        obs::count_many(&[
            ("serve.rows_scored", rows.len() as u64),
            ("serve.score_chunks", chunks as u64),
            ("serve.rows_confident", confident as u64),
            ("serve.rows_uncertain", (rows.len() - confident) as u64),
            ("serve.kernel.node_steps", stats.node_steps),
            ("serve.kernel.row_tiles", stats.row_tiles),
        ]);
    }
    ScoredBatch {
        positive_fraction,
        threshold,
        rows,
    }
}

/// Scores raw feature rows (no labels) — the serving path's entry
/// point. Builds the kernel layout from `model` first; when the
/// caller already holds a prepared kernel (the daemon builds one per
/// model generation at load/swap time), use [`score_rows_with`].
///
/// # Panics
///
/// Panics if any row has the wrong feature count — callers validate
/// at the protocol boundary.
pub fn score_rows(model: &RandomForest, rows: &[Vec<f64>], positive_fraction: f64) -> ScoredBatch {
    let kernel = ForestKernel::from_forest(model);
    score_rows_with(&kernel, rows, positive_fraction)
}

/// Scores raw feature rows with a prepared kernel. Each row's
/// probabilities are an independent traversal, so scoring a
/// concatenation of requests is bitwise identical to scoring each
/// request alone (the micro-batcher relies on this). `NaN` features
/// are defined input — missing values take each node's default
/// direction, exactly like the recursive walk.
///
/// # Panics
///
/// Panics if any row's length differs from the kernel's feature
/// count.
pub fn score_rows_with(
    kernel: &ForestKernel,
    rows: &[Vec<f64>],
    positive_fraction: f64,
) -> ScoredBatch {
    score_rows_chunked(kernel, rows, positive_fraction, CHUNK_ROWS)
}

/// [`score_rows_with`] with an explicit chunk size — the test hook
/// that pins chunking-seam invariance (chunk sizes 1/7/64 must score
/// bitwise identically).
#[doc(hidden)]
pub fn score_rows_chunked(
    kernel: &ForestKernel,
    rows: &[Vec<f64>],
    positive_fraction: f64,
    chunk_rows: usize,
) -> ScoredBatch {
    assert!(chunk_rows > 0, "chunk size must be positive");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row.len(),
            kernel.feature_count(),
            "row {i} has {} features, the kernel expects {}",
            row.len(),
            kernel.feature_count()
        );
    }
    score_chunks(
        kernel,
        &RowSource::Rows(rows),
        positive_fraction,
        chunk_rows,
    )
}

/// Scores every row of `data` with `model`, partitioning by the
/// threshold derived from `positive_fraction`. Builds the kernel
/// layout once for the call; callers scoring the same model
/// repeatedly should build a [`ForestKernel`] (or use
/// `SavedModel::kernel`) and call [`score_batch_with`].
///
/// Deterministic: output rows are in dataset order and bitwise
/// identical across thread counts *and* bitwise identical to the
/// recursive reference path [`score_batch_recursive`].
///
/// # Panics
///
/// Panics if `positive_fraction` is outside `[0, 1]`.
pub fn score_batch(model: &RandomForest, data: &Dataset, positive_fraction: f64) -> ScoredBatch {
    let kernel = ForestKernel::from_forest(model);
    score_batch_with(&kernel, data, positive_fraction)
}

/// [`score_batch`] over a prepared kernel.
///
/// # Panics
///
/// Panics if `data`'s feature count differs from the kernel's, or if
/// `positive_fraction` is outside `[0, 1]`.
pub fn score_batch_with(
    kernel: &ForestKernel,
    data: &Dataset,
    positive_fraction: f64,
) -> ScoredBatch {
    assert_eq!(
        data.feature_count(),
        kernel.feature_count(),
        "dataset feature count mismatch"
    );
    score_chunks(
        kernel,
        &RowSource::Data(data),
        positive_fraction,
        CHUNK_ROWS,
    )
}

/// The frozen pre-kernel reference: recursive pointer-chasing tree
/// walks through `RandomForest::predict_proba_row`, chunked over
/// `run_units`. Kept verbatim so the kernel's bitwise-parity checks
/// (unit tests, `kernel_props`, the `scored` binary, CI's
/// kernel-parity step) compare against the real historical path, not
/// a reimplementation.
pub fn score_batch_recursive(
    model: &RandomForest,
    data: &Dataset,
    positive_fraction: f64,
) -> ScoredBatch {
    let _span = obs::span!("score_batch_recursive");
    let threshold = confidence_threshold(positive_fraction);
    let n = data.len();
    let chunks = n.div_ceil(CHUNK_ROWS);
    let scored: Vec<Vec<ScoredRow>> = forest::parallel::run_units(chunks, |c| {
        let lo = c * CHUNK_ROWS;
        let hi = (lo + CHUNK_ROWS).min(n);
        let mut out = Vec::with_capacity(hi - lo);
        for index in lo..hi {
            let probabilities = model.predict_proba_row(data, index);
            let positive = probabilities[1];
            out.push(ScoredRow {
                index,
                positive,
                predicted: (positive > 0.5) as usize,
                split: classify_confidence(positive, threshold),
                probabilities,
            });
        }
        out
    });
    let rows: Vec<ScoredRow> = scored.into_iter().flatten().collect();
    ScoredBatch {
        positive_fraction,
        threshold,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest::{set_thread_limit, RandomForestParams};

    fn fixture() -> (Dataset, RandomForest, f64) {
        // Big enough to span several chunks, with some noise so the
        // probability spectrum is not degenerate.
        let mut d = Dataset::new(vec!["x0".into(), "x1".into(), "n0".into()], 2);
        for i in 0..300 {
            let x0 = i as f64 / 300.0;
            let x1 = ((i * 53) % 300) as f64 / 300.0;
            let n0 = ((i * 17) % 300) as f64 / 300.0;
            d.push(vec![x0, x1, n0], (x0 + 0.3 * x1 > 0.6) as usize);
        }
        let params = RandomForestParams {
            n_trees: 12,
            ..RandomForestParams::default()
        };
        let model = RandomForest::fit(&d, &params, 7);
        let q = d.class_fraction(1);
        (d, model, q)
    }

    #[test]
    fn matches_sequential_scoring() {
        let (data, model, q) = fixture();
        let batch = score_batch(&model, &data, q);
        assert_eq!(batch.rows.len(), data.len());
        for (i, row) in batch.rows.iter().enumerate() {
            assert_eq!(row.index, i);
            assert_eq!(row.probabilities, model.predict_proba_row(&data, i));
            assert_eq!(row.positive, row.probabilities[1]);
        }
        // The partition is exactly the in-memory pipeline's partition.
        assert_eq!(
            batch.partition(),
            PartitionedPredictions::partition(&batch.positives(), q)
        );
    }

    #[test]
    fn kernel_path_matches_recursive_reference_bitwise() {
        let (data, model, q) = fixture();
        let kernel = score_batch(&model, &data, q);
        let recursive = score_batch_recursive(&model, &data, q);
        assert_eq!(kernel, recursive);
        assert_eq!(kernel.summary(), recursive.summary());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let (data, model, q) = fixture();
        set_thread_limit(Some(1));
        let serial = score_batch(&model, &data, q);
        set_thread_limit(Some(8));
        let parallel = score_batch(&model, &data, q);
        set_thread_limit(None);
        assert_eq!(serial, parallel);
        assert_eq!(serial.summary(), parallel.summary());
    }

    #[test]
    fn chunk_size_does_not_change_output() {
        let (data, model, q) = fixture();
        let kernel = ForestKernel::from_forest(&model);
        let rows: Vec<Vec<f64>> = (0..data.len()).map(|i| data.row(i)).collect();
        let reference = score_rows_with(&kernel, &rows, q);
        for chunk_rows in [1usize, 7, 64, 300] {
            let chunked = score_rows_chunked(&kernel, &rows, q, chunk_rows);
            assert_eq!(chunked, reference, "chunk size {chunk_rows}");
        }
    }

    #[test]
    fn summary_invariants() {
        let (data, model, q) = fixture();
        let summary = score_batch(&model, &data, q).summary();
        assert_eq!(summary.rows, data.len());
        assert_eq!(summary.confident + summary.uncertain, summary.rows);
        assert_eq!(
            summary.predicted_positive + summary.predicted_negative,
            summary.rows
        );
        assert_eq!(
            summary.confident_positive + summary.confident_negative,
            summary.confident
        );
        assert_eq!(summary.histogram.iter().sum::<u64>(), summary.rows as u64);
        assert!((0.0..=1.0).contains(&summary.mean_positive));
        assert_eq!(summary.threshold, confidence_threshold(q));
    }

    #[test]
    fn histogram_buckets_are_half_open_and_boundary_stable() {
        // Each decade boundary k/10 lands in bucket k (half-open
        // convention), and 1.0 folds into the last bucket instead of
        // indexing out of range. Pinned so a refactor of the bucket
        // arithmetic cannot silently shift boundary probabilities.
        for k in 0..10usize {
            assert_eq!(histogram_bucket(k as f64 / 10.0), k, "boundary {k}/10");
        }
        assert_eq!(histogram_bucket(0.1), 1);
        assert_eq!(histogram_bucket(0.5), 5);
        assert_eq!(histogram_bucket(1.0), 9);
        // Interior values stay in their decade.
        assert_eq!(histogram_bucket(0.099999999), 0);
        assert_eq!(histogram_bucket(0.49999999999), 4);
        assert_eq!(histogram_bucket(0.999999), 9);
    }

    #[test]
    fn facts_mirror_rows() {
        let (data, model, q) = fixture();
        let batch = score_batch(&model, &data, q);
        let facts = batch.facts();
        assert_eq!(facts.len(), batch.rows.len());
        for (fact, row) in facts.iter().zip(&batch.rows) {
            assert_eq!(fact.positive, row.positive);
            assert_eq!(fact.predicted, row.predicted);
            assert_eq!(fact.split, row.split);
        }
    }

    #[test]
    fn score_rows_matches_score_batch() {
        let (data, model, q) = fixture();
        let rows: Vec<Vec<f64>> = (0..data.len()).map(|i| data.row(i)).collect();
        let via_rows = score_rows(&model, &rows, q);
        let via_dataset = score_batch(&model, &data, q);
        assert_eq!(via_rows, via_dataset);
    }

    #[test]
    fn empty_dataset_scores_empty() {
        let (_, model, q) = fixture();
        let empty = Dataset::new(vec!["x0".into(), "x1".into(), "n0".into()], 2);
        let batch = score_batch(&model, &empty, q);
        assert!(batch.rows.is_empty());
        let summary = batch.summary();
        assert_eq!(summary.rows, 0);
        assert_eq!(summary.mean_positive, 0.0);
    }
}
