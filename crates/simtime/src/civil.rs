//! Proleptic-Gregorian civil dates.
//!
//! Conversions between `(year, month, day)` and a day serial number use
//! Howard Hinnant's era-based algorithms, which are exact over the whole
//! `i32` year range and branch-light.

/// Day of the week. Discriminants follow the paper's 1–7 convention
/// (Monday = 1 … Sunday = 7), which the feature pipeline emits directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Weekday {
    /// Monday (1).
    Monday = 1,
    /// Tuesday (2).
    Tuesday = 2,
    /// Wednesday (3).
    Wednesday = 3,
    /// Thursday (4).
    Thursday = 4,
    /// Friday (5).
    Friday = 5,
    /// Saturday (6).
    Saturday = 6,
    /// Sunday (7).
    Sunday = 7,
}

impl Weekday {
    /// Weekday from its 1–7 number.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 7`.
    pub fn from_number(n: u8) -> Weekday {
        match n {
            1 => Weekday::Monday,
            2 => Weekday::Tuesday,
            3 => Weekday::Wednesday,
            4 => Weekday::Thursday,
            5 => Weekday::Friday,
            6 => Weekday::Saturday,
            7 => Weekday::Sunday,
            _ => panic!("weekday number must be 1-7, got {n}"),
        }
    }

    /// The 1–7 number of this weekday (Monday = 1).
    pub fn number(self) -> u8 {
        self as u8
    }

    /// True on Saturday and Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

/// A calendar date in the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CivilDate {
    year: i32,
    month: u8,
    day: u8,
}

impl CivilDate {
    /// Creates a date, validating the day against the month length.
    ///
    /// # Panics
    ///
    /// Panics on an invalid month or day.
    pub fn new(year: i32, month: u8, day: u8) -> CivilDate {
        assert!((1..=12).contains(&month), "month must be 1-12, got {month}");
        let max = days_in_month(year, month);
        assert!(
            day >= 1 && day <= max,
            "day must be 1-{max} for {year}-{month:02}, got {day}"
        );
        CivilDate { year, month, day }
    }

    /// Year.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Month, 1–12.
    pub fn month(&self) -> u8 {
        self.month
    }

    /// Day of month, 1–31.
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Days since the Unix epoch (1970-01-01 is day 0; earlier dates are
    /// negative). Hinnant's `days_from_civil`.
    pub fn to_epoch_days(&self) -> i64 {
        let y = if self.month <= 2 {
            self.year as i64 - 1
        } else {
            self.year as i64
        };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Date from days since the Unix epoch. Hinnant's `civil_from_days`.
    pub fn from_epoch_days(days: i64) -> CivilDate {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        let year = (if m <= 2 { y + 1 } else { y }) as i32;
        CivilDate {
            year,
            month: m,
            day: d,
        }
    }

    /// Day of the week.
    pub fn weekday(&self) -> Weekday {
        // 1970-01-01 was a Thursday (ISO number 4).
        let days = self.to_epoch_days();
        let dow = (days + 3).rem_euclid(7) + 1; // Monday = 1
        Weekday::from_number(dow as u8)
    }

    /// Day of the year, 1-based (1–366).
    pub fn day_of_year(&self) -> u16 {
        let jan1 = CivilDate::new(self.year, 1, 1);
        (self.to_epoch_days() - jan1.to_epoch_days() + 1) as u16
    }

    /// ISO-8601 week of the year, 1–53 (the paper's "week of the year
    /// (1-52)" feature; ISO weeks occasionally number 53).
    pub fn iso_week(&self) -> u8 {
        // ISO week: the week containing the year's first Thursday is
        // week 1; weeks start on Monday.
        let doy = self.day_of_year() as i64;
        let dow = self.weekday().number() as i64;
        let week = (doy - dow + 10) / 7;
        if week < 1 {
            // Belongs to the last week of the previous year.
            CivilDate::new(self.year - 1, 12, 31).iso_week()
        } else if week > 52 {
            // Week 53 exists only in "long" ISO years: those starting on
            // a Thursday, or leap years starting on a Wednesday.
            let jan1 = CivilDate::new(self.year, 1, 1).weekday();
            let long_year = jan1 == Weekday::Thursday
                || (is_leap_year(self.year) && jan1 == Weekday::Wednesday);
            if long_year {
                53
            } else {
                1
            }
        } else {
            week as u8
        }
    }

    /// The date `n` days later (or earlier for negative `n`).
    pub fn plus_days(&self, n: i64) -> CivilDate {
        CivilDate::from_epoch_days(self.to_epoch_days() + n)
    }
}

impl std::fmt::Display for CivilDate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// True for Gregorian leap years.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in a month.
///
/// # Panics
///
/// Panics on an invalid month.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month must be 1-12, got {month}"),
    }
}

/// A civil date with a time of day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CivilDateTime {
    /// The calendar date.
    pub date: CivilDate,
    /// Hour, 0–23.
    pub hour: u8,
    /// Minute, 0–59.
    pub minute: u8,
    /// Second, 0–59.
    pub second: u8,
}

impl CivilDateTime {
    /// Creates a date-time.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range time components.
    pub fn new(date: CivilDate, hour: u8, minute: u8, second: u8) -> CivilDateTime {
        assert!(hour < 24, "hour must be 0-23, got {hour}");
        assert!(minute < 60, "minute must be 0-59, got {minute}");
        assert!(second < 60, "second must be 0-59, got {second}");
        CivilDateTime {
            date,
            hour,
            minute,
            second,
        }
    }
}

impl std::fmt::Display for CivilDateTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {:02}:{:02}:{:02}",
            self.date, self.hour, self.minute, self.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(CivilDate::new(1970, 1, 1).to_epoch_days(), 0);
        assert_eq!(CivilDate::from_epoch_days(0), CivilDate::new(1970, 1, 1));
    }

    #[test]
    fn known_serials() {
        // 2000-03-01 is day 11017 (post-leap-day of a century leap year).
        assert_eq!(CivilDate::new(2000, 3, 1).to_epoch_days(), 11_017);
        assert_eq!(CivilDate::new(2017, 1, 1).to_epoch_days(), 17_167);
    }

    #[test]
    fn known_weekdays() {
        assert_eq!(CivilDate::new(1970, 1, 1).weekday(), Weekday::Thursday);
        assert_eq!(CivilDate::new(2017, 6, 1).weekday(), Weekday::Thursday);
        assert_eq!(CivilDate::new(2018, 6, 10).weekday(), Weekday::Sunday); // SIGMOD'18 start
        assert_eq!(CivilDate::new(2000, 2, 29).weekday(), Weekday::Tuesday);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2016));
        assert!(!is_leap_year(2017));
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2017, 2), 28);
    }

    #[test]
    fn day_of_year_boundaries() {
        assert_eq!(CivilDate::new(2017, 1, 1).day_of_year(), 1);
        assert_eq!(CivilDate::new(2017, 12, 31).day_of_year(), 365);
        assert_eq!(CivilDate::new(2016, 12, 31).day_of_year(), 366);
    }

    #[test]
    fn iso_week_reference_dates() {
        // 2017-01-01 was a Sunday — ISO week 52 of 2016.
        assert_eq!(CivilDate::new(2017, 1, 1).iso_week(), 52);
        // 2017-01-02 (Monday) starts ISO week 1.
        assert_eq!(CivilDate::new(2017, 1, 2).iso_week(), 1);
        // 2015-12-31 (Thursday) is in ISO week 53.
        assert_eq!(CivilDate::new(2015, 12, 31).iso_week(), 53);
        // 2018-12-31 (Monday) is ISO week 1 of 2019.
        assert_eq!(CivilDate::new(2018, 12, 31).iso_week(), 1);
        // Mid-year sanity: 2017-06-15 is week 24.
        assert_eq!(CivilDate::new(2017, 6, 15).iso_week(), 24);
    }

    #[test]
    fn plus_days_crosses_boundaries() {
        let d = CivilDate::new(2016, 12, 30).plus_days(3);
        assert_eq!(d, CivilDate::new(2017, 1, 2));
        let e = CivilDate::new(2016, 3, 1).plus_days(-1);
        assert_eq!(e, CivilDate::new(2016, 2, 29));
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_day() {
        CivilDate::new(2017, 2, 29);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CivilDate::new(2017, 6, 1).to_string(), "2017-06-01");
        let dt = CivilDateTime::new(CivilDate::new(2017, 6, 1), 9, 5, 0);
        assert_eq!(dt.to_string(), "2017-06-01 09:05:00");
    }

    proptest! {
        #[test]
        fn prop_roundtrip_days(days in -300_000_i64..300_000) {
            let date = CivilDate::from_epoch_days(days);
            prop_assert_eq!(date.to_epoch_days(), days);
        }

        #[test]
        fn prop_roundtrip_ymd(year in 1600_i32..2400, month in 1_u8..=12, day_seed in 0_u8..31) {
            let day = day_seed % days_in_month(year, month) + 1;
            let date = CivilDate::new(year, month, day);
            let back = CivilDate::from_epoch_days(date.to_epoch_days());
            prop_assert_eq!(date, back);
        }

        #[test]
        fn prop_weekday_advances_by_one(days in -300_000_i64..300_000) {
            let today = CivilDate::from_epoch_days(days).weekday().number();
            let tomorrow = CivilDate::from_epoch_days(days + 1).weekday().number();
            prop_assert_eq!(tomorrow, today % 7 + 1);
        }

        #[test]
        fn prop_iso_week_in_range(days in -300_000_i64..300_000) {
            let w = CivilDate::from_epoch_days(days).iso_week();
            prop_assert!((1..=53).contains(&w));
        }
    }
}
