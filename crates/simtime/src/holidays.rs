//! Regional holiday calendars.
//!
//! The paper (§5.4) observes that databases created during regional
//! holidays are more likely to be automated creations; the fleet
//! simulator uses these calendars to suppress human activity on
//! holidays, and the feature pipeline can ask "was the creation date a
//! holiday in its region".

use crate::civil::{CivilDate, Weekday};

/// A rule generating one holiday occurrence per year.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HolidayRule {
    /// The same month/day every year (e.g. January 1).
    FixedDate {
        /// Month, 1–12.
        month: u8,
        /// Day of month.
        day: u8,
    },
    /// The nth (1-based) given weekday of a month (e.g. 4th Thursday of
    /// November).
    NthWeekday {
        /// Month, 1–12.
        month: u8,
        /// Which weekday.
        weekday: Weekday,
        /// 1-based ordinal within the month.
        nth: u8,
    },
    /// The last given weekday of a month (e.g. last Monday of May).
    LastWeekday {
        /// Month, 1–12.
        month: u8,
        /// Which weekday.
        weekday: Weekday,
    },
}

impl HolidayRule {
    /// The holiday's date in a given year.
    pub fn date_in(&self, year: i32) -> CivilDate {
        match *self {
            HolidayRule::FixedDate { month, day } => CivilDate::new(year, month, day),
            HolidayRule::NthWeekday {
                month,
                weekday,
                nth,
            } => {
                assert!((1..=5).contains(&nth), "nth must be 1-5, got {nth}");
                let first = CivilDate::new(year, month, 1);
                let offset =
                    (weekday.number() as i64 - first.weekday().number() as i64).rem_euclid(7);
                let date = first.plus_days(offset + 7 * (nth as i64 - 1));
                assert_eq!(
                    date.month(),
                    month,
                    "{year}-{month} has no {nth}th {weekday:?}"
                );
                date
            }
            HolidayRule::LastWeekday { month, weekday } => {
                let last_day = crate::civil::days_in_month(year, month);
                let last = CivilDate::new(year, month, last_day);
                let offset =
                    (last.weekday().number() as i64 - weekday.number() as i64).rem_euclid(7);
                last.plus_days(-offset)
            }
        }
    }
}

/// A named calendar of holiday rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HolidayCalendar {
    name: String,
    rules: Vec<HolidayRule>,
}

impl HolidayCalendar {
    /// Creates a calendar from rules.
    pub fn new(name: impl Into<String>, rules: Vec<HolidayRule>) -> HolidayCalendar {
        HolidayCalendar {
            name: name.into(),
            rules,
        }
    }

    /// Calendar name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True if `date` is a holiday under this calendar.
    pub fn is_holiday(&self, date: CivilDate) -> bool {
        self.rules.iter().any(|r| r.date_in(date.year()) == date)
    }

    /// All holiday dates within `[start, end]` inclusive.
    pub fn holidays_between(&self, start: CivilDate, end: CivilDate) -> Vec<CivilDate> {
        let mut out = Vec::new();
        for year in start.year()..=end.year() {
            for rule in &self.rules {
                let d = rule.date_in(year);
                if d >= start && d <= end {
                    out.push(d);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// A US-like calendar (used for the simulated "Region-1").
    pub fn us_like() -> HolidayCalendar {
        HolidayCalendar::new(
            "us-like",
            vec![
                HolidayRule::FixedDate { month: 1, day: 1 },
                HolidayRule::NthWeekday {
                    month: 1,
                    weekday: Weekday::Monday,
                    nth: 3,
                }, // MLK-like
                HolidayRule::LastWeekday {
                    month: 5,
                    weekday: Weekday::Monday,
                }, // Memorial-like
                HolidayRule::FixedDate { month: 7, day: 4 },
                HolidayRule::NthWeekday {
                    month: 9,
                    weekday: Weekday::Monday,
                    nth: 1,
                }, // Labor-like
                HolidayRule::NthWeekday {
                    month: 11,
                    weekday: Weekday::Thursday,
                    nth: 4,
                }, // Thanksgiving-like
                HolidayRule::FixedDate { month: 12, day: 25 },
            ],
        )
    }

    /// A European-like calendar (simulated "Region-2").
    pub fn europe_like() -> HolidayCalendar {
        HolidayCalendar::new(
            "europe-like",
            vec![
                HolidayRule::FixedDate { month: 1, day: 1 },
                HolidayRule::FixedDate { month: 5, day: 1 },
                HolidayRule::FixedDate { month: 8, day: 15 },
                HolidayRule::FixedDate { month: 11, day: 1 },
                HolidayRule::FixedDate { month: 12, day: 25 },
                HolidayRule::FixedDate { month: 12, day: 26 },
            ],
        )
    }

    /// An Asia-Pacific-like calendar (simulated "Region-3").
    pub fn apac_like() -> HolidayCalendar {
        HolidayCalendar::new(
            "apac-like",
            vec![
                HolidayRule::FixedDate { month: 1, day: 1 },
                HolidayRule::FixedDate { month: 1, day: 26 },
                HolidayRule::NthWeekday {
                    month: 6,
                    weekday: Weekday::Monday,
                    nth: 2,
                },
                HolidayRule::FixedDate { month: 10, day: 2 },
                HolidayRule::FixedDate { month: 12, day: 25 },
                HolidayRule::FixedDate { month: 12, day: 26 },
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_date_rule() {
        let rule = HolidayRule::FixedDate { month: 7, day: 4 };
        assert_eq!(rule.date_in(2017), CivilDate::new(2017, 7, 4));
    }

    #[test]
    fn nth_weekday_rule() {
        // Thanksgiving 2017: 4th Thursday of November = Nov 23.
        let rule = HolidayRule::NthWeekday {
            month: 11,
            weekday: Weekday::Thursday,
            nth: 4,
        };
        assert_eq!(rule.date_in(2017), CivilDate::new(2017, 11, 23));
        // MLK 2018: 3rd Monday of January = Jan 15.
        let mlk = HolidayRule::NthWeekday {
            month: 1,
            weekday: Weekday::Monday,
            nth: 3,
        };
        assert_eq!(mlk.date_in(2018), CivilDate::new(2018, 1, 15));
    }

    #[test]
    fn last_weekday_rule() {
        // Memorial Day 2017: last Monday of May = May 29.
        let rule = HolidayRule::LastWeekday {
            month: 5,
            weekday: Weekday::Monday,
        };
        assert_eq!(rule.date_in(2017), CivilDate::new(2017, 5, 29));
        // Last Sunday of Feb 2016 (leap): Feb 28.
        let feb = HolidayRule::LastWeekday {
            month: 2,
            weekday: Weekday::Sunday,
        };
        assert_eq!(feb.date_in(2016), CivilDate::new(2016, 2, 28));
    }

    #[test]
    fn calendar_membership() {
        let cal = HolidayCalendar::us_like();
        assert!(cal.is_holiday(CivilDate::new(2017, 7, 4)));
        assert!(cal.is_holiday(CivilDate::new(2017, 11, 23)));
        assert!(!cal.is_holiday(CivilDate::new(2017, 7, 5)));
    }

    #[test]
    fn holidays_between_window() {
        let cal = HolidayCalendar::us_like();
        let hs = cal.holidays_between(CivilDate::new(2017, 5, 1), CivilDate::new(2017, 9, 30));
        assert_eq!(
            hs,
            vec![
                CivilDate::new(2017, 5, 29),
                CivilDate::new(2017, 7, 4),
                CivilDate::new(2017, 9, 4),
            ]
        );
    }

    #[test]
    fn regional_calendars_differ() {
        let d = CivilDate::new(2017, 5, 1);
        assert!(HolidayCalendar::europe_like().is_holiday(d));
        assert!(!HolidayCalendar::us_like().is_holiday(d));
    }
}
