//! Civil time substrate for the survivability study.
//!
//! The fleet simulator and the feature pipeline need deterministic,
//! timezone-localized calendar arithmetic: day-of-week, day-of-month,
//! ISO week-of-year, hour-of-day, and regional holiday calendars
//! (paper §4.2, "Creation time" features; §5.4 notes holiday-time
//! creation correlates with automation). The needs are small and must be
//! bit-for-bit reproducible, so we implement them here rather than pull
//! in a calendar dependency.
//!
//! * [`Timestamp`] — seconds since the Unix epoch, with [`Duration`]
//!   arithmetic.
//! * [`CivilDate`] / [`CivilDateTime`] — proleptic-Gregorian calendar
//!   conversions (Howard Hinnant's `days_from_civil` algorithms).
//! * [`holidays`] — per-region holiday calendars built from fixed-date
//!   and nth-weekday rules.
//!
//! # Example
//!
//! ```
//! use simtime::{Timestamp, Duration, HolidayCalendar};
//!
//! let created = Timestamp::from_ymd_hms(2017, 7, 4, 9, 30, 0);
//! let date = created.date();
//! assert_eq!(date.weekday().number(), 2); // Tuesday
//! assert!(HolidayCalendar::us_like().is_holiday(date));
//! let prediction_at = created + Duration::days(2);
//! assert_eq!(prediction_at.to_string(), "2017-07-06 09:30:00");
//! ```

pub mod civil;
pub mod holidays;
pub mod timestamp;

pub use civil::{CivilDate, CivilDateTime, Weekday};
pub use holidays::{HolidayCalendar, HolidayRule};
pub use timestamp::{Duration, Timestamp};
