//! Timestamps and durations with second resolution.

use crate::civil::{CivilDate, CivilDateTime};
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A signed span of time with second resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Duration {
    seconds: i64,
}

impl Duration {
    /// Span of `n` seconds.
    pub const fn seconds(n: i64) -> Duration {
        Duration { seconds: n }
    }

    /// Span of `n` minutes.
    pub const fn minutes(n: i64) -> Duration {
        Duration::seconds(n * 60)
    }

    /// Span of `n` hours.
    pub const fn hours(n: i64) -> Duration {
        Duration::seconds(n * 3600)
    }

    /// Span of `n` days.
    pub const fn days(n: i64) -> Duration {
        Duration::seconds(n * 86_400)
    }

    /// Fractional days (rounded to the nearest second). The simulator
    /// draws lifespans in fractional days from continuous distributions.
    pub fn days_f64(days: f64) -> Duration {
        assert!(days.is_finite(), "non-finite day count");
        Duration::seconds((days * 86_400.0).round() as i64)
    }

    /// Total seconds in this span.
    pub const fn as_seconds(self) -> i64 {
        self.seconds
    }

    /// This span in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.seconds as f64 / 86_400.0
    }

    /// This span in whole days, truncated toward zero.
    pub const fn whole_days(self) -> i64 {
        self.seconds / 86_400
    }

    /// True for spans of zero or negative length.
    pub const fn is_non_positive(self) -> bool {
        self.seconds <= 0
    }
}

/// An instant in time: seconds since the Unix epoch (UTC-like; the
/// simulator treats each region's clock as already localized, so no
/// timezone offsets appear anywhere downstream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp {
    seconds: i64,
}

impl Timestamp {
    /// Timestamp from raw epoch seconds.
    pub const fn from_epoch_seconds(seconds: i64) -> Timestamp {
        Timestamp { seconds }
    }

    /// Raw epoch seconds.
    pub const fn epoch_seconds(self) -> i64 {
        self.seconds
    }

    /// Timestamp at midnight of a civil date.
    pub fn from_date(date: CivilDate) -> Timestamp {
        Timestamp {
            seconds: date.to_epoch_days() * 86_400,
        }
    }

    /// Timestamp from date and time-of-day components.
    pub fn from_ymd_hms(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
        second: u8,
    ) -> Timestamp {
        let dt = CivilDateTime::new(CivilDate::new(year, month, day), hour, minute, second);
        Timestamp::from_datetime(dt)
    }

    /// Timestamp from a [`CivilDateTime`].
    pub fn from_datetime(dt: CivilDateTime) -> Timestamp {
        Timestamp {
            seconds: dt.date.to_epoch_days() * 86_400
                + dt.hour as i64 * 3600
                + dt.minute as i64 * 60
                + dt.second as i64,
        }
    }

    /// The civil date containing this instant.
    pub fn date(self) -> CivilDate {
        CivilDate::from_epoch_days(self.seconds.div_euclid(86_400))
    }

    /// Full civil decomposition of this instant.
    pub fn datetime(self) -> CivilDateTime {
        let date = self.date();
        let tod = self.seconds.rem_euclid(86_400);
        CivilDateTime::new(
            date,
            (tod / 3600) as u8,
            ((tod % 3600) / 60) as u8,
            (tod % 60) as u8,
        )
    }

    /// Hour of the day, 0–23.
    pub fn hour(self) -> u8 {
        self.datetime().hour
    }

    /// Elapsed time from `earlier` to `self`.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration::seconds(self.seconds - earlier.seconds)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, d: Duration) -> Timestamp {
        Timestamp {
            seconds: self.seconds + d.seconds,
        }
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, d: Duration) {
        self.seconds += d.seconds;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, d: Duration) -> Timestamp {
        Timestamp {
            seconds: self.seconds - d.seconds,
        }
    }
}

impl SubAssign<Duration> for Timestamp {
    fn sub_assign(&mut self, d: Duration) {
        self.seconds -= d.seconds;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, other: Timestamp) -> Duration {
        self.since(other)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration::seconds(self.seconds + other.seconds)
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, other: Duration) -> Duration {
        Duration::seconds(self.seconds - other.seconds)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.datetime())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_roundtrip() {
        let t = Timestamp::from_ymd_hms(1970, 1, 1, 0, 0, 0);
        assert_eq!(t.epoch_seconds(), 0);
        assert_eq!(t.datetime().to_string(), "1970-01-01 00:00:00");
    }

    #[test]
    fn paper_example_timeline() {
        // Figure 4: created June 1 10:00, prediction June 3 10:00 (2
        // days), boundary July 1 10:00 (30 days).
        let created = Timestamp::from_ymd_hms(2017, 6, 1, 10, 0, 0);
        let prediction = created + Duration::days(2);
        assert_eq!(prediction.datetime().to_string(), "2017-06-03 10:00:00");
        let boundary = created + Duration::days(30);
        assert_eq!(boundary.datetime().to_string(), "2017-07-01 10:00:00");
        assert_eq!((boundary - created).whole_days(), 30);
    }

    #[test]
    fn negative_timestamps_decompose() {
        let t = Timestamp::from_epoch_seconds(-1);
        assert_eq!(t.datetime().to_string(), "1969-12-31 23:59:59");
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(Duration::days(2).as_seconds(), 172_800);
        assert_eq!(Duration::hours(3).as_seconds(), 10_800);
        assert!((Duration::days_f64(1.5).as_days_f64() - 1.5).abs() < 1e-9);
        assert_eq!(Duration::days_f64(2.999).whole_days(), 2);
        assert!(Duration::seconds(0).is_non_positive());
        assert!(!Duration::seconds(1).is_non_positive());
    }

    #[test]
    fn arithmetic_identities() {
        let t = Timestamp::from_ymd_hms(2017, 3, 15, 12, 30, 45);
        let d = Duration::hours(36);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        let mut m = t;
        m += d;
        m -= d;
        assert_eq!(m, t);
    }

    proptest! {
        #[test]
        fn prop_datetime_roundtrip(secs in -20_000_000_000_i64..20_000_000_000) {
            let t = Timestamp::from_epoch_seconds(secs);
            let back = Timestamp::from_datetime(t.datetime());
            prop_assert_eq!(t, back);
        }

        #[test]
        fn prop_add_sub_inverse(secs in -1_000_000_000_i64..1_000_000_000, d in -10_000_000_i64..10_000_000) {
            let t = Timestamp::from_epoch_seconds(secs);
            let dur = Duration::seconds(d);
            prop_assert_eq!((t + dur) - dur, t);
        }

        #[test]
        fn prop_hour_in_range(secs in -20_000_000_000_i64..20_000_000_000) {
            prop_assert!(Timestamp::from_epoch_seconds(secs).hour() < 24);
        }
    }
}
