//! Numerically stable descriptive statistics, quantiles, and histograms.

/// A one-pass summary of a numeric sample, computed with Welford's
/// algorithm so that the variance is numerically stable even for large
/// samples with a big mean (e.g. database sizes in megabytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary; statistics of an empty sample are defined as 0
    /// (a deliberate choice matching the paper's feature pipeline, where
    /// "no prior databases" must yield usable feature values).
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty sample).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for samples of size < 2).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (0 for samples of size < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (0 for an empty sample).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum (0 for an empty sample).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

/// Linear-interpolation quantile (type 7, the R/NumPy default) of an
/// **unsorted** sample. `q` must be in `[0, 1]`.
///
/// Returns `None` for an empty sample.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile requires 0 <= q <= 1");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// Same as [`quantile`] but assumes `sorted` is already ascending.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A fixed-width histogram over `[lo, hi)` with values outside the range
/// clamped into the first/last bin.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram needs hi > lo");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation, clamping out-of-range values into the edge
    /// bins.
    pub fn push(&mut self, v: f64) {
        let bins = self.counts.len();
        let idx = if v < self.lo {
            0
        } else if v >= self.hi {
            bins - 1
        } else {
            (((v - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(bin_center, fraction)` pairs; fractions sum to 1 when non-empty.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + (i as f64 + 0.5) * width;
                let frac = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                };
                (center, frac)
            })
            .collect()
    }
}

/// Convenience: histogram of a slice.
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Histogram {
    let mut h = Histogram::new(lo, hi, bins);
    for &v in values {
        h.push(v);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_zeros() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_bulk() {
        let a = [1.0, 2.0, 3.5, -1.0];
        let b = [10.0, 0.25];
        let mut left = Summary::of(&a);
        let right = Summary::of(&b);
        left.merge(&right);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let bulk = Summary::of(&all);
        assert!((left.mean() - bulk.mean()).abs() < 1e-12);
        assert!((left.variance() - bulk.variance()).abs() < 1e-12);
        assert_eq!(left.count(), bulk.count());
    }

    #[test]
    fn quantile_median_and_edges() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.5), Some(2.0));
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(3.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_interpolates() {
        // numpy.quantile([1,2,3,4], 0.25) == 1.75
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let h = histogram(&[-5.0, 0.0, 0.5, 0.99, 1.0, 99.0], 0.0, 1.0, 2);
        // -5 clamps to bin 0; 0.5 and 0.99 land in bin 1; 1.0 and 99.0
        // clamp into bin 1.
        assert_eq!(h.counts(), &[2, 4]);
        assert_eq!(h.total(), 6);
        let norm = h.normalized();
        let total: f64 = norm.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_welford_matches_naive(values in prop::collection::vec(-1e6..1e6_f64, 1..200)) {
            let s = Summary::of(&values);
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        }

        #[test]
        fn prop_quantile_monotone(
            values in prop::collection::vec(-1e6..1e6_f64, 1..100),
            q1 in 0.0..1.0_f64,
            q2 in 0.0..1.0_f64,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let a = quantile(&values, lo).unwrap();
            let b = quantile(&values, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
        }

        #[test]
        fn prop_quantile_within_range(values in prop::collection::vec(-1e6..1e6_f64, 1..100), q in 0.0..1.0_f64) {
            let v = quantile(&values, q).unwrap();
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }

        #[test]
        fn prop_histogram_total(values in prop::collection::vec(-10.0..10.0_f64, 0..100)) {
            let h = histogram(&values, -5.0, 5.0, 7);
            prop_assert_eq!(h.total() as usize, values.len());
            prop_assert_eq!(h.counts().iter().sum::<u64>() as usize, values.len());
        }
    }
}
