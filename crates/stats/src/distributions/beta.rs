//! Beta distribution.

use super::{ContinuousDistribution, Normal};
use crate::special::{incomplete_beta, ln_gamma};
use rand::Rng;

/// Beta distribution on `[0, 1]` with shapes `alpha`, `beta` — the
/// natural model for latent per-customer propensities (the simulator's
/// longevity traits are power-transformed uniforms, which are Beta
/// special cases: `u^k ~ Beta(1/k, 1)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Creates a Beta distribution.
    ///
    /// # Panics
    ///
    /// Panics if either shape is non-positive or non-finite.
    pub fn new(alpha: f64, beta: f64) -> Beta {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "alpha must be positive, got {alpha}"
        );
        assert!(
            beta.is_finite() && beta > 0.0,
            "beta must be positive, got {beta}"
        );
        Beta { alpha, beta }
    }

    /// Shape α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Shape β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Samples a Gamma(shape, 1) variate via Marsaglia–Tsang (with the
    /// Johnk-style boost for shape < 1).
    fn sample_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
            let u: f64 = 1.0 - rng.gen::<f64>();
            return Self::sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let std = Normal::standard();
        loop {
            let x = std.sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u: f64 = 1.0 - rng.gen::<f64>();
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

impl ContinuousDistribution for Beta {
    fn pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        if x == 0.0 {
            return match self.alpha.partial_cmp(&1.0).unwrap() {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => self.beta,
                std::cmp::Ordering::Greater => 0.0,
            };
        }
        if x == 1.0 {
            return match self.beta.partial_cmp(&1.0).unwrap() {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => self.alpha,
                std::cmp::Ordering::Greater => 0.0,
            };
        }
        let ln_b = ln_gamma(self.alpha + self.beta) - ln_gamma(self.alpha) - ln_gamma(self.beta);
        (ln_b + (self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln()).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            incomplete_beta(self.alpha, self.beta, x)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        // Bisection on the CDF over [0, 1].
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-14 {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = Self::sample_gamma(self.alpha, rng);
        let y = Self::sample_gamma(self.beta, rng);
        x / (x + y)
    }

    fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{check_quantile_roundtrip, check_sampler};
    use super::*;

    #[test]
    fn uniform_special_case() {
        let b = Beta::new(1.0, 1.0);
        for &x in &[0.1, 0.5, 0.9] {
            assert!((b.cdf(x) - x).abs() < 1e-12);
            assert!((b.pdf(x) - 1.0).abs() < 1e-10);
        }
        assert!((b.mean() - 0.5).abs() < 1e-12);
        assert!((b.variance() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn power_of_uniform_special_case() {
        // u² ~ Beta(1/2, 1): cdf(x) = sqrt(x).
        let b = Beta::new(0.5, 1.0);
        for &x in &[0.04, 0.25, 0.81] {
            assert!((b.cdf(x) - x.sqrt()).abs() < 1e-9, "cdf({x})");
        }
    }

    #[test]
    fn moments_closed_form() {
        let b = Beta::new(2.0, 5.0);
        assert!((b.mean() - 2.0 / 7.0).abs() < 1e-12);
        assert!((b.variance() - 10.0 / (49.0 * 8.0)).abs() < 1e-12);
    }

    #[test]
    fn quantile_roundtrip() {
        check_quantile_roundtrip(&Beta::new(2.0, 5.0), 1e-9);
        check_quantile_roundtrip(&Beta::new(0.5, 0.5), 1e-9);
    }

    #[test]
    fn sampler_matches_cdf() {
        check_sampler(&Beta::new(2.0, 5.0), 31, 0.03);
        check_sampler(&Beta::new(0.7, 1.3), 32, 0.03);
        check_sampler(&Beta::new(4.0, 4.0), 33, 0.03);
    }

    #[test]
    fn pdf_boundaries() {
        assert_eq!(Beta::new(0.5, 2.0).pdf(0.0), f64::INFINITY);
        assert_eq!(Beta::new(2.0, 2.0).pdf(0.0), 0.0);
        assert_eq!(Beta::new(2.0, 2.0).pdf(1.0), 0.0);
        assert_eq!(Beta::new(2.0, 2.0).pdf(-0.1), 0.0);
        assert_eq!(Beta::new(2.0, 2.0).pdf(1.1), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_shape() {
        Beta::new(0.0, 1.0);
    }
}
