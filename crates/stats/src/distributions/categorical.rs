//! Categorical (finite discrete) distribution.

use super::DiscreteDistribution;
use rand::Rng;

/// A categorical distribution over `0..weights.len()`.
///
/// Weights need not be normalized. Sampling is by linear scan over the
/// cumulative weights — the archetype and edition tables this models
/// have < 20 categories, so a scan beats an alias table in both code
/// size and real cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
    probs: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            total += w;
        }
        assert!(total > 0.0, "weights must not all be zero");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall at the top.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        let probs = weights.iter().map(|&w| w / total).collect();
        Categorical { cumulative, probs }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True if there is exactly one category (never truly empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Normalized probability of each category.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }
}

impl DiscreteDistribution for Categorical {
    fn pmf(&self, x: usize) -> f64 {
        self.probs.get(x).copied().unwrap_or(0.0)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_weights() {
        let c = Categorical::new(&[1.0, 3.0]);
        assert!((c.pmf(0) - 0.25).abs() < 1e-12);
        assert!((c.pmf(1) - 0.75).abs() < 1e-12);
        assert_eq!(c.pmf(2), 0.0);
    }

    #[test]
    fn sampling_frequencies_converge() {
        let c = Categorical::new(&[0.2, 0.5, 0.3]);
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 30_000;
        let mut counts = [0_u64; 3];
        for _ in 0..n {
            counts[c.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            assert!(
                (freq - c.pmf(i)).abs() < 0.01,
                "category {i}: {freq} vs {}",
                c.pmf(i)
            );
        }
    }

    #[test]
    fn zero_weight_category_never_sampled() {
        let c = Categorical::new(&[1.0, 0.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_ne!(c.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn rejects_negative() {
        Categorical::new(&[0.5, -0.1]);
    }
}
