//! Chi-squared distribution.

use super::{ContinuousDistribution, Normal};
use crate::special::{gamma_p, gamma_q, ln_gamma};
use rand::Rng;

/// Chi-squared distribution with `k` degrees of freedom.
///
/// Its survival function turns log-rank statistics into p-values. The
/// sampler sums squared standard normals (exact, and `k` is small in all
/// our uses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates a chi-squared distribution with `k > 0` degrees of
    /// freedom (fractional degrees are allowed for pdf/cdf, but sampling
    /// requires an integer `k`).
    pub fn new(k: f64) -> Self {
        assert!(
            k.is_finite() && k > 0.0,
            "degrees of freedom must be positive, got {k}"
        );
        ChiSquared { k }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.k
    }
}

impl ContinuousDistribution for ChiSquared {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return if self.k < 2.0 {
                f64::INFINITY
            } else if self.k == 2.0 {
                0.5
            } else {
                0.0
            };
        }
        let half_k = self.k / 2.0;
        ((half_k - 1.0) * x.ln() - x / 2.0 - half_k * std::f64::consts::LN_2 - ln_gamma(half_k))
            .exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.k / 2.0, x / 2.0)
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            gamma_q(self.k / 2.0, x / 2.0)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        // Bisection on the CDF: robust and plenty fast for our use.
        let (mut lo, mut hi) = (0.0, self.k.max(1.0));
        while self.cdf(hi) < p {
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + hi) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let k = self.k.round() as u64;
        assert!(
            (self.k - k as f64).abs() < 1e-9 && k >= 1,
            "sampling requires integer degrees of freedom, got {}",
            self.k
        );
        let std = Normal::standard();
        (0..k)
            .map(|_| {
                let z = std.sample(rng);
                z * z
            })
            .sum()
    }

    fn mean(&self) -> f64 {
        self.k
    }

    fn variance(&self) -> f64 {
        2.0 * self.k
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::check_sampler;
    use super::*;

    #[test]
    fn cdf_known_values() {
        // chi2(1) at 3.841458... is 0.95 (the classic 5% critical value).
        let c = ChiSquared::new(1.0);
        assert!((c.cdf(3.841_458_820_694_124) - 0.95).abs() < 1e-9);
        // chi2(2) is exponential with mean 2.
        let c2 = ChiSquared::new(2.0);
        assert!((c2.cdf(2.0) - (1.0 - (-1.0_f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let c = ChiSquared::new(5.0);
        for &p in &[0.01, 0.5, 0.95, 0.999] {
            let x = c.quantile(p);
            assert!((c.cdf(x) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn sf_tail_accuracy() {
        let c = ChiSquared::new(1.0);
        // sf(30) ≈ 4.32e-8; must be positive and in the right ballpark.
        let s = c.sf(30.0);
        assert!(s > 1e-9 && s < 1e-7, "sf = {s}");
    }

    #[test]
    fn sampler_matches_cdf() {
        check_sampler(&ChiSquared::new(3.0), 5, 0.035);
    }
}
