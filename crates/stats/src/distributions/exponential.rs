//! Exponential distribution.

use super::ContinuousDistribution;
use rand::Rng;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// The exponential is the constant-hazard lifetime model; the survival
/// crate's parametric fitter uses it as the simplest censored-MLE
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0` or non-finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive, got {rate}"
        );
        Exponential { rate }
    }

    /// Creates an exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        Exponential { rate: 1.0 / mean }
    }

    /// Rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDistribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x < 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        -(-p).ln_1p() / self.rate
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform on (0, 1]; 1 - gen::<f64>() avoids ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{check_quantile_roundtrip, check_sampler};
    use super::*;

    #[test]
    fn cdf_and_sf_sum_to_one() {
        let e = Exponential::new(0.3);
        for &x in &[0.0, 0.5, 2.0, 10.0] {
            assert!((e.cdf(x) + e.sf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn median_is_ln2_over_rate() {
        let e = Exponential::new(2.0);
        assert!((e.quantile(0.5) - std::f64::consts::LN_2 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn with_mean_matches() {
        let e = Exponential::with_mean(5.0);
        assert!((e.mean() - 5.0).abs() < 1e-12);
        assert!((e.variance() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_roundtrip() {
        check_quantile_roundtrip(&Exponential::new(0.7), 1e-10);
    }

    #[test]
    fn sampler_matches_cdf() {
        check_sampler(&Exponential::new(1.3), 7, 0.03);
    }

    #[test]
    fn negative_x_has_zero_mass() {
        let e = Exponential::new(1.0);
        assert_eq!(e.pdf(-1.0), 0.0);
        assert_eq!(e.cdf(-1.0), 0.0);
        assert_eq!(e.sf(-1.0), 1.0);
    }
}
