//! Log-normal distribution.

use super::{ContinuousDistribution, Normal};
use rand::Rng;

/// Log-normal distribution: `ln X ~ N(mu, sigma²)`.
///
/// Mid-life database populations (small production apps, startups) have
/// heavy-tailed lifespans that straddle the paper's 30-day boundary; the
/// simulator models them log-normally, which is what makes databases
/// "near day 30" genuinely hard to classify (paper §5.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal with log-mean `mu` and log-std `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            mu,
            sigma,
            norm: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal from its **median** and log-std. The median
    /// of a log-normal is `exp(mu)`, so this is the natural way to say
    /// "half of these databases live longer than `median` days".
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive, got {median}");
        LogNormal::new(median.ln(), sigma)
    }

    /// Log-scale mean μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-scale standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDistribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.norm.pdf(x.ln()) / x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.norm.cdf(x.ln())
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        self.norm.quantile(p).exp()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{check_quantile_roundtrip, check_sampler};
    use super::*;

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(2.0, 0.7);
        assert!((d.quantile(0.5) - 2.0_f64.exp()).abs() < 1e-9);
        let m = LogNormal::with_median(30.0, 1.0);
        assert!((m.quantile(0.5) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn moments_match_closed_form() {
        let d = LogNormal::new(0.5, 0.25);
        assert!((d.mean() - (0.5 + 0.03125_f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn zero_and_negative_have_no_mass() {
        let d = LogNormal::new(0.0, 1.0);
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.cdf(-3.0), 0.0);
    }

    #[test]
    fn quantile_roundtrip() {
        check_quantile_roundtrip(&LogNormal::new(3.0, 1.2), 1e-9);
    }

    #[test]
    fn sampler_matches_cdf() {
        check_sampler(&LogNormal::new(1.0, 0.5), 19, 0.03);
    }
}
