//! Finite mixtures of heterogeneous continuous distributions.

use super::{
    Categorical, ChiSquared, ContinuousDistribution, DiscreteDistribution, Exponential, LogNormal,
    Normal, Uniform, Weibull,
};
use rand::Rng;

/// A closed set of mixture components.
///
/// An enum (rather than `Box<dyn ContinuousDistribution>`) keeps mixtures
/// `Copy`-free but `Clone`, comparable, and dispatch-cheap; the simulator
/// builds thousands of these per fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Component {
    /// Normal component.
    Normal(Normal),
    /// Exponential component.
    Exponential(Exponential),
    /// Weibull component.
    Weibull(Weibull),
    /// Log-normal component.
    LogNormal(LogNormal),
    /// Uniform component.
    Uniform(Uniform),
    /// Chi-squared component.
    ChiSquared(ChiSquared),
}

macro_rules! dispatch {
    ($self:expr, $d:ident => $body:expr) => {
        match $self {
            Component::Normal($d) => $body,
            Component::Exponential($d) => $body,
            Component::Weibull($d) => $body,
            Component::LogNormal($d) => $body,
            Component::Uniform($d) => $body,
            Component::ChiSquared($d) => $body,
        }
    };
}

impl ContinuousDistribution for Component {
    fn pdf(&self, x: f64) -> f64 {
        dispatch!(self, d => d.pdf(x))
    }
    fn cdf(&self, x: f64) -> f64 {
        dispatch!(self, d => d.cdf(x))
    }
    fn sf(&self, x: f64) -> f64 {
        dispatch!(self, d => d.sf(x))
    }
    fn quantile(&self, p: f64) -> f64 {
        dispatch!(self, d => d.quantile(p))
    }
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        dispatch!(self, d => d.sample(rng))
    }
    fn mean(&self) -> f64 {
        dispatch!(self, d => d.mean())
    }
    fn variance(&self) -> f64 {
        dispatch!(self, d => d.variance())
    }
}

impl From<Normal> for Component {
    fn from(d: Normal) -> Self {
        Component::Normal(d)
    }
}
impl From<Exponential> for Component {
    fn from(d: Exponential) -> Self {
        Component::Exponential(d)
    }
}
impl From<Weibull> for Component {
    fn from(d: Weibull) -> Self {
        Component::Weibull(d)
    }
}
impl From<LogNormal> for Component {
    fn from(d: LogNormal) -> Self {
        Component::LogNormal(d)
    }
}
impl From<Uniform> for Component {
    fn from(d: Uniform) -> Self {
        Component::Uniform(d)
    }
}
impl From<ChiSquared> for Component {
    fn from(d: ChiSquared) -> Self {
        Component::ChiSquared(d)
    }
}

/// A finite mixture distribution: pick a component by weight, then draw
/// from it. The pdf/cdf are the weight-convex combinations of the
/// component pdf/cdfs.
#[derive(Debug, Clone, PartialEq)]
pub struct Mixture {
    selector: Categorical,
    components: Vec<Component>,
}

impl Mixture {
    /// Creates a mixture from `(weight, component)` pairs.
    ///
    /// # Panics
    ///
    /// Panics under the same weight conditions as [`Categorical::new`],
    /// or if `parts` is empty.
    pub fn new(parts: Vec<(f64, Component)>) -> Self {
        let weights: Vec<f64> = parts.iter().map(|(w, _)| *w).collect();
        let components = parts.into_iter().map(|(_, c)| c).collect();
        Mixture {
            selector: Categorical::new(&weights),
            components,
        }
    }

    /// The mixture's components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The normalized component weights.
    pub fn weights(&self) -> &[f64] {
        self.selector.probs()
    }
}

impl ContinuousDistribution for Mixture {
    fn pdf(&self, x: f64) -> f64 {
        self.weights()
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.pdf(x))
            .sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.weights()
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.cdf(x))
            .sum()
    }

    fn sf(&self, x: f64) -> f64 {
        self.weights()
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.sf(x))
            .sum()
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        // Bracket using component quantiles, then bisect the mixture CDF.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in &self.components {
            lo = lo.min(c.quantile(p.min(0.5) * 0.5));
            hi = hi.max(c.quantile(0.5 + p.max(0.5) * 0.499_999));
        }
        // Widen until the bracket certainly contains the quantile.
        while self.cdf(lo) > p {
            lo -= (hi - lo).abs().max(1.0);
        }
        while self.cdf(hi) < p {
            hi += (hi - lo).abs().max(1.0);
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-10 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let idx = self.selector.sample(rng);
        self.components[idx].sample(rng)
    }

    fn mean(&self) -> f64 {
        self.weights()
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.mean())
            .sum()
    }

    fn variance(&self) -> f64 {
        // Law of total variance.
        let mean = self.mean();
        self.weights()
            .iter()
            .zip(&self.components)
            .map(|(w, c)| {
                let d = c.mean() - mean;
                w * (c.variance() + d * d)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{check_quantile_roundtrip, check_sampler};
    use super::*;

    fn bimodal() -> Mixture {
        Mixture::new(vec![
            (0.3, Normal::new(-5.0, 1.0).into()),
            (0.7, Normal::new(5.0, 2.0).into()),
        ])
    }

    #[test]
    fn mean_is_weighted() {
        let m = bimodal();
        assert!((m.mean() - (0.3 * -5.0 + 0.7 * 5.0)).abs() < 1e-12);
    }

    #[test]
    fn variance_law_of_total_variance() {
        let m = bimodal();
        // Var = E[Var] + Var[E] = (0.3·1 + 0.7·4) + (0.3·(−5−2)² + 0.7·(5−2)²)
        let expected = (0.3 + 2.8) + (0.3 * 49.0 + 0.7 * 9.0);
        assert!((m.variance() - expected).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_convex_combination() {
        let m = bimodal();
        let a = Normal::new(-5.0, 1.0);
        let b = Normal::new(5.0, 2.0);
        for &x in &[-7.0, -5.0, 0.0, 4.0, 10.0] {
            let expected = 0.3 * a.cdf(x) + 0.7 * b.cdf(x);
            assert!((m.cdf(x) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_roundtrip() {
        check_quantile_roundtrip(&bimodal(), 1e-7);
    }

    #[test]
    fn heterogeneous_mixture_samples() {
        let m = Mixture::new(vec![
            (0.5, Weibull::new(0.7, 10.0).into()),
            (0.3, LogNormal::new(3.0, 0.5).into()),
            (0.2, Normal::new(120.0, 5.0).into()),
        ]);
        check_sampler(&m, 23, 0.035);
    }
}
