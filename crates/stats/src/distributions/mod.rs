//! Probability distributions with pdf/cdf/quantile/sampling.
//!
//! The fleet simulator samples database lifespans, sizes, and
//! inter-arrival times from these distributions; the survival crate uses
//! their CDFs as analytic oracles in tests. Sampling goes through
//! inverse-transform or standard exact methods so that a seeded
//! [`rand::Rng`] yields fully reproducible fleets.

mod beta;
mod categorical;
mod chi_squared;
mod exponential;
mod lognormal;
mod mixture;
mod normal;
mod uniform;
mod weibull;

pub use beta::Beta;
pub use categorical::Categorical;
pub use chi_squared::ChiSquared;
pub use exponential::Exponential;
pub use lognormal::LogNormal;
pub use mixture::Mixture;
pub use normal::Normal;
pub use uniform::Uniform;
pub use weibull::Weibull;

use rand::Rng;

/// A continuous univariate distribution.
pub trait ContinuousDistribution {
    /// Probability density function at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile (inverse CDF) at probability `p`, `0 < p < 1`.
    fn quantile(&self, p: f64) -> f64;

    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Distribution mean.
    fn mean(&self) -> f64;

    /// Distribution variance.
    fn variance(&self) -> f64;

    /// Survival function `P(X > x)`; overridable when a tail-accurate
    /// form exists.
    fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
}

/// A discrete distribution over `0..k`.
pub trait DiscreteDistribution {
    /// Probability mass at `x`.
    fn pmf(&self, x: usize) -> f64;

    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize;
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::ContinuousDistribution;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Empirically checks that `dist.sample` agrees with `dist.cdf` via a
    /// one-sample Kolmogorov–Smirnov-style bound on a few thousand draws.
    pub fn check_sampler<D: ContinuousDistribution>(dist: &D, seed: u64, tol: f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 4000;
        let mut xs: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut max_gap = 0.0_f64;
        for (i, &x) in xs.iter().enumerate() {
            let emp = (i as f64 + 0.5) / n as f64;
            let gap = (emp - dist.cdf(x)).abs();
            if gap > max_gap {
                max_gap = gap;
            }
        }
        assert!(max_gap < tol, "KS gap {max_gap} exceeds tolerance {tol}");
    }

    /// Checks quantile/cdf are mutual inverses on a probability grid.
    pub fn check_quantile_roundtrip<D: ContinuousDistribution>(dist: &D, tol: f64) {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = dist.quantile(p);
            let back = dist.cdf(x);
            assert!(
                (back - p).abs() < tol,
                "cdf(quantile({p})) = {back}, expected {p}"
            );
        }
    }
}
