//! Normal (Gaussian) distribution.

use super::ContinuousDistribution;
use crate::special::{std_normal_cdf, std_normal_quantile};
use rand::Rng;

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev <= 0` or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite(),
            "non-finite parameter"
        );
        assert!(std_dev > 0.0, "std_dev must be positive, got {std_dev}");
        Normal { mean, std_dev }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal::new(0.0, 1.0)
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.std_dev)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mean + self.std_dev * std_normal_quantile(p)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method: exact, no trig, two uniforms per pair.
        // We draw pairs until one is accepted and discard the spare for
        // statelessness (the cost is irrelevant at our scales).
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{check_quantile_roundtrip, check_sampler};
    use super::*;

    #[test]
    fn pdf_peak_and_symmetry() {
        let n = Normal::new(2.0, 3.0);
        let peak = n.pdf(2.0);
        assert!((peak - 1.0 / (3.0 * (2.0 * std::f64::consts::PI).sqrt())).abs() < 1e-12);
        assert!((n.pdf(2.0 + 1.7) - n.pdf(2.0 - 1.7)).abs() < 1e-12);
    }

    #[test]
    fn cdf_known_points() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn quantile_roundtrip() {
        check_quantile_roundtrip(&Normal::new(-4.0, 0.5), 1e-9);
    }

    #[test]
    fn sampler_matches_cdf() {
        check_sampler(&Normal::new(10.0, 2.0), 42, 0.03);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_std() {
        Normal::new(0.0, 0.0);
    }
}
