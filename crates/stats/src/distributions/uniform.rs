//! Continuous uniform distribution.

use super::ContinuousDistribution;
use rand::Rng;

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "non-finite bound");
        assert!(hi > lo, "uniform requires hi > lo, got [{lo}, {hi})");
        Uniform { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl ContinuousDistribution for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x >= self.hi {
            0.0
        } else {
            1.0 / (self.hi - self.lo)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / (self.hi - self.lo)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        self.lo + p * (self.hi - self.lo)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }

    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{check_quantile_roundtrip, check_sampler};
    use super::*;

    #[test]
    fn cdf_is_linear() {
        let u = Uniform::new(2.0, 6.0);
        assert_eq!(u.cdf(1.0), 0.0);
        assert_eq!(u.cdf(4.0), 0.5);
        assert_eq!(u.cdf(7.0), 1.0);
        assert!((u.mean() - 4.0).abs() < 1e-12);
        assert!((u.variance() - 16.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_roundtrip() {
        check_quantile_roundtrip(&Uniform::new(-1.0, 9.0), 1e-12);
    }

    #[test]
    fn sampler_matches_cdf() {
        check_sampler(&Uniform::new(0.0, 5.0), 3, 0.03);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_interval() {
        Uniform::new(1.0, 1.0);
    }
}
