//! Weibull distribution.

use super::ContinuousDistribution;
use crate::special::ln_gamma;
use rand::Rng;

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// The Weibull is the workhorse lifetime model: `k < 1` gives a
/// decreasing hazard (infant mortality — most cloud databases that die,
/// die young), `k = 1` is exponential, `k > 1` gives wear-out. The fleet
/// simulator composes Weibull components into per-archetype lifespan
/// mixtures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive or non-finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0,
            "shape must be positive, got {shape}"
        );
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be positive, got {scale}"
        );
        Weibull { shape, scale }
    }

    /// Shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter λ.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDistribution for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Limit depends on shape; return the correct boundary value.
            return match self.shape.partial_cmp(&1.0).unwrap() {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => 1.0 / self.scale,
                std::cmp::Ordering::Greater => 0.0,
            };
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        self.scale * (-(-p).ln_1p()).powf(1.0 / self.shape)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = (ln_gamma(1.0 + 1.0 / self.shape)).exp();
        let g2 = (ln_gamma(1.0 + 2.0 / self.shape)).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{check_quantile_roundtrip, check_sampler};
    use super::*;

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(1.0, 2.0);
        for &x in &[0.1, 1.0, 3.0] {
            let expected = 1.0 - (-x / 2.0_f64).exp();
            assert!((w.cdf(x) - expected).abs() < 1e-12);
        }
        assert!((w.mean() - 2.0).abs() < 1e-10);
        assert!((w.variance() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rayleigh_mean() {
        // k = 2 (Rayleigh): mean = λ √π / 2.
        let w = Weibull::new(2.0, 3.0);
        let expected = 3.0 * std::f64::consts::PI.sqrt() / 2.0;
        assert!((w.mean() - expected).abs() < 1e-9);
    }

    #[test]
    fn quantile_roundtrip() {
        check_quantile_roundtrip(&Weibull::new(0.6, 40.0), 1e-10);
        check_quantile_roundtrip(&Weibull::new(3.0, 1.0), 1e-10);
    }

    #[test]
    fn sampler_matches_cdf() {
        check_sampler(&Weibull::new(0.8, 25.0), 11, 0.03);
    }

    #[test]
    fn pdf_boundary_values() {
        assert_eq!(Weibull::new(0.5, 1.0).pdf(0.0), f64::INFINITY);
        assert!((Weibull::new(1.0, 4.0).pdf(0.0) - 0.25).abs() < 1e-12);
        assert_eq!(Weibull::new(2.0, 1.0).pdf(0.0), 0.0);
    }
}
